# Developer entry points.  `make check` is the pre-merge gate: the full
# tier-1 test suite plus the observability overhead guard (which fails if
# disabled instrumentation slows ingestion by more than its budget).
# `make lint` needs ruff (`pip install -e .[lint]`) and `make coverage`
# needs pytest-cov (`pip install -e .[coverage]`); both degrade to a
# no-op with a notice where the tool is not installed (CI installs them).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test overhead-guard lint coverage check bench bench-smoke bench-parallel bench-wire bench-soa service-smoke rest-smoke scenario-smoke scenario-full load-slo validate-bench

# Line-coverage floor enforced by `make coverage` (and the CI coverage job).
COV_FAIL_UNDER ?= 85

test:
	$(PYTHON) -m pytest -x -q

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=src/repro --cov-report=term-missing:skip-covered \
			--cov-fail-under=$(COV_FAIL_UNDER); \
	else \
		echo "pytest-cov not installed; skipping coverage (pip install -e .[coverage])"; \
	fi

overhead-guard:
	$(PYTHON) benchmarks/bench_observability_overhead.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks && \
		ruff format --check src tests benchmarks && \
		ruff check --select ANN --ignore ANN401 src/repro/service/types.py; \
	else \
		echo "ruff not installed; skipping lint (pip install -e .[lint])"; \
	fi

check: lint test overhead-guard

bench:
	$(PYTHON) -m pytest benchmarks -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_throughput.py -q
	$(PYTHON) benchmarks/bench_batch_ingest.py --smoke \
		--json BENCH_PR.json --min-speedup 2.0
	$(PYTHON) benchmarks/bench_parallel_ingest.py --quick \
		--json BENCH_PARALLEL.json --min-speedup 1.3
	$(PYTHON) benchmarks/bench_soa.py --smoke \
		--json BENCH_SOA.json --min-speedup 2.0
	$(PYTHON) benchmarks/validate_bench_json.py \
		BENCH_PR.json BENCH_PARALLEL.json BENCH_SOA.json

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_ingest.py \
		--json BENCH_PARALLEL.json --min-speedup 1.3

# Wire codec + hotspot before/after micro-profiles (JSON vs binary
# serialization, FINDMIN heap churn, hull add).
bench-wire:
	$(PYTHON) benchmarks/bench_wire.py --json BENCH_WIRE.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_WIRE.json

# SoA vs object maintenance-kernel gate at the paper's n = 1e6
# (acceptance target >= 5x on the scalar path; CI smoke gates a shorter
# stream at >= 2x inside bench-smoke).
bench-soa:
	$(PYTHON) benchmarks/bench_soa.py --json BENCH_SOA.json --min-speedup 5.0
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_SOA.json

# End-to-end service gate: boot the TCP server, stream 100k values over
# the wire, diff the served histograms against one-shot summarize(),
# and require the binary transport to beat JSON by >= 3x on appends.
service-smoke:
	$(PYTHON) benchmarks/bench_service_smoke.py --items 100000 \
		--wire-min-speedup 3.0 --json BENCH_SERVICE.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_SERVICE.json

# REST facade gate (the CI `rest-smoke` job): boot one engine behind
# both the TCP server and the HTTP facade, stream the same dataset
# through each, require bit-identical histograms, and keep the REST
# append p50 within 5x of the binary transport (see docs/REST.md).
rest-smoke:
	$(PYTHON) benchmarks/bench_rest_smoke.py --items 60000 \
		--max-ratio 5.0 --json BENCH_REST.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_REST.json

# Scenario-suite gate (the CI `scenario-smoke` job): simulate bundled
# YAML workloads through the scenario runner, verify realized error
# against the offline-optimal oracle, and require every differential
# conformance cell (object/soa x serial/parallel x scalar/batched) to
# be bit-identical.  `scenario-full` is the nightly configuration: all
# bundled scenarios plus the full matrix.
scenario-smoke:
	$(PYTHON) benchmarks/bench_scenarios.py --smoke --json BENCH_SCENARIO.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_SCENARIO.json

scenario-full:
	$(PYTHON) benchmarks/bench_scenarios.py --json BENCH_SCENARIO.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_SCENARIO.json

# Cluster load-SLO gate (the CI `load-slo` job): boot a sharded router
# with LOAD_WORKERS worker processes, drive LOAD_CLIENTS concurrent
# mixed append/query clients over both transports, SIGKILL one worker
# mid-load, and fail unless (a) a survivor adopts its streams with zero
# acknowledged appends lost, (b) every stream's served histogram is
# bit-identical to one-shot summarize(), and (c) p50/p99 latencies meet
# the LOAD_SLO_* thresholds (milliseconds; calibrated with generous
# headroom for shared runners -- override per-run as needed).
LOAD_WORKERS ?= 3
LOAD_CLIENTS ?= 200
LOAD_BATCHES ?= 10
LOAD_BATCH_SIZE ?= 100
LOAD_SLO_APPEND_P50 ?= 1000
LOAD_SLO_APPEND_P99 ?= 5000
LOAD_SLO_QUERY_P50 ?= 1000
LOAD_SLO_QUERY_P99 ?= 5000
load-slo:
	$(PYTHON) benchmarks/bench_load.py \
		--cluster-workers $(LOAD_WORKERS) --clients $(LOAD_CLIENTS) \
		--batches $(LOAD_BATCHES) --batch-size $(LOAD_BATCH_SIZE) \
		--kill-worker \
		--slo-append-p50-ms $(LOAD_SLO_APPEND_P50) \
		--slo-append-p99-ms $(LOAD_SLO_APPEND_P99) \
		--slo-query-p50-ms $(LOAD_SLO_QUERY_P50) \
		--slo-query-p99-ms $(LOAD_SLO_QUERY_P99) \
		--json BENCH_LOAD.json
	$(PYTHON) benchmarks/validate_bench_json.py BENCH_LOAD.json

# Sanity-check whatever benchmark artifacts exist in the worktree.
validate-bench:
	$(PYTHON) benchmarks/validate_bench_json.py --allow-missing \
		BENCH_PR.json BENCH_PARALLEL.json BENCH_WIRE.json \
		BENCH_SOA.json BENCH_SERVICE.json BENCH_LOAD.json \
		BENCH_SCENARIO.json BENCH_REST.json
