# Developer entry points.  `make check` is the pre-merge gate: the full
# tier-1 test suite plus the observability overhead guard (which fails if
# disabled instrumentation slows ingestion by more than its budget).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test overhead-guard check bench

test:
	$(PYTHON) -m pytest -x -q

overhead-guard:
	$(PYTHON) benchmarks/bench_observability_overhead.py

check: test overhead-guard

bench:
	$(PYTHON) -m pytest benchmarks -q
