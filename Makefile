# Developer entry points.  `make check` is the pre-merge gate: the full
# tier-1 test suite plus the observability overhead guard (which fails if
# disabled instrumentation slows ingestion by more than its budget).
# `make lint` needs ruff (`pip install -e .[lint]`) and `make coverage`
# needs pytest-cov (`pip install -e .[coverage]`); both degrade to a
# no-op with a notice where the tool is not installed (CI installs them).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test overhead-guard lint coverage check bench bench-smoke bench-parallel bench-wire service-smoke

# Line-coverage floor enforced by `make coverage` (and the CI coverage job).
COV_FAIL_UNDER ?= 85

test:
	$(PYTHON) -m pytest -x -q

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=src/repro --cov-report=term-missing:skip-covered \
			--cov-fail-under=$(COV_FAIL_UNDER); \
	else \
		echo "pytest-cov not installed; skipping coverage (pip install -e .[coverage])"; \
	fi

overhead-guard:
	$(PYTHON) benchmarks/bench_observability_overhead.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks && \
		ruff format --check src tests benchmarks && \
		ruff check --select ANN --ignore ANN401 src/repro/service/types.py; \
	else \
		echo "ruff not installed; skipping lint (pip install -e .[lint])"; \
	fi

check: lint test overhead-guard

bench:
	$(PYTHON) -m pytest benchmarks -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_throughput.py -q
	$(PYTHON) benchmarks/bench_batch_ingest.py --smoke \
		--json BENCH_PR.json --min-speedup 2.0
	$(PYTHON) benchmarks/bench_parallel_ingest.py --quick \
		--json BENCH_PARALLEL.json --min-speedup 1.3

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_ingest.py \
		--json BENCH_PARALLEL.json --min-speedup 1.3

# Wire codec + hotspot before/after micro-profiles (JSON vs binary
# serialization, FINDMIN heap churn, hull add).
bench-wire:
	$(PYTHON) benchmarks/bench_wire.py --json BENCH_WIRE.json

# End-to-end service gate: boot the TCP server, stream 100k values over
# the wire, diff the served histograms against one-shot summarize(),
# and require the binary transport to beat JSON by >= 3x on appends.
service-smoke:
	$(PYTHON) benchmarks/bench_service_smoke.py --items 100000 \
		--wire-min-speedup 3.0 --json BENCH_SERVICE.json
