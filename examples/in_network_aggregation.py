"""In-network aggregation: merging sensor summaries up a collection tree.

The paper's sensor-network pitch, end to end: eight motes each summarize
their own window of a shared phenomenon with MIN-MERGE in O(B) memory;
relay nodes merge pairs of child summaries; the base station merges the
relays.  No raw data ever travels -- only bucket lists -- and the final
summary still satisfies Theorem 1's guarantee **against the optimal
histogram of the entire concatenated stream** (the module docs of
``repro.core.aggregation`` carry the proof sketch).

Run with::

    python examples/in_network_aggregation.py
"""

import numpy as np

from repro import MinMergeHistogram, optimal_error
from repro.core.aggregation import merge_min_merge_summaries
from repro.data import quantize_to_universe

UNIVERSE = 1 << 15
READINGS_PER_NODE = 2048
NODES = 8
BUCKETS = 16


def phenomenon(seed: int = 31) -> list[int]:
    """One physical signal, observed in consecutive windows by 8 motes."""
    rng = np.random.default_rng(seed)
    n = READINGS_PER_NODE * NODES
    t = np.arange(n)
    signal = (
        40.0 * np.sin(2 * np.pi * t / 3000.0)
        + np.cumsum(rng.normal(0, 0.4, n))
        + rng.normal(0, 1.0, n)
    )
    # A couple of sharp events the summary must not lose.
    for pos in (5_000, 11_111):
        signal[pos:pos + 5] += 300.0
    return quantize_to_universe(signal, UNIVERSE)


def main() -> None:
    stream = phenomenon()

    # Leaf tier: each mote summarizes its own window of the stream.
    leaves = []
    for node in range(NODES):
        beg = node * READINGS_PER_NODE
        summary = MinMergeHistogram(buckets=BUCKETS)
        summary._n = beg  # motes share the deployment's global tick counter
        summary.extend(stream[beg:beg + READINGS_PER_NODE])
        leaves.append(summary)
    leaf_bytes = sum(s.memory_bytes() for s in leaves)
    print(
        f"{NODES} motes x {READINGS_PER_NODE:,} readings, "
        f"B={BUCKETS}: {leaf_bytes:,} bytes of summaries total "
        f"(raw data: {len(stream) * 4:,} bytes)"
    )

    # Relay tier: merge pairs; base station: merge the relays.
    relays = [
        merge_min_merge_summaries(leaves[i:i + 2])
        for i in range(0, NODES, 2)
    ]
    base = merge_min_merge_summaries(relays)
    print(
        f"base-station summary: {base.bucket_count} buckets, "
        f"{base.memory_bytes():,} bytes, error {base.error:g}"
    )

    # The guarantee held through two merge tiers.
    best = optimal_error(stream, BUCKETS)
    print(f"optimal {BUCKETS}-bucket error of the full stream: {best:g}")
    assert base.error <= best, "Theorem 1 must survive aggregation"

    # The events are still visible at the base station.
    hist = base.histogram()
    for pos in (5_000, 11_111):
        low, high = hist.range_max_bounds(pos - 50, pos + 50)
        background = hist.value_at(pos - 500)
        print(
            f"event near tick {pos:,}: max in window provably >= {low:,.0f} "
            f"(background ~{background:,.0f})"
        )
        assert low > background + 1000

    print("in-network aggregation preserved both the bound and the events")


if __name__ == "__main__":
    main()
