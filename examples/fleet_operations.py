"""Operating a fleet of stream summaries: ingest, query, checkpoint, restore.

This example plays out a day in the life of a monitoring service built on
this library (the StatStream scenario at operational scale):

1. a :class:`repro.fleet.StreamFleet` summarizes a group of correlated
   sensor feeds in lockstep;
2. similarity queries run from summaries alone, with guaranteed bounds;
3. the whole service checkpoints to JSON, "crashes", restores, and keeps
   ingesting -- demonstrating that summaries survive process restarts;
4. an ASCII chart shows what a summary actually stored.

Run with::

    python examples/fleet_operations.py
"""

import numpy as np

from repro import MinMergeHistogram
from repro.checkpoint import from_json, to_json
from repro.data import quantize_to_universe
from repro.fleet import StreamFleet
from repro.harness.ascii_plot import ascii_chart

UNIVERSE = 1 << 15
TICKS = 6_000


def make_feeds(seed: int = 21) -> dict[str, list[int]]:
    """Five correlated sensor feeds plus one that drifts away mid-day."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0, 1.0, TICKS))
    feeds = {
        "plant-a": base + rng.normal(0, 0.5, TICKS),
        "plant-b": base + rng.normal(0, 0.5, TICKS),
        "plant-c": base + rng.normal(0, 4.0, TICKS),
        "offsite": np.cumsum(rng.normal(0, 1.0, TICKS)),
    }
    # "drifter" follows the plants, then breaks away at half-day.
    drifter = base.copy()
    drifter[TICKS // 2:] += np.cumsum(rng.normal(0.05, 0.8, TICKS // 2))
    feeds["drifter"] = drifter
    lo = min(float(np.min(s)) for s in feeds.values())
    hi = max(float(np.max(s)) for s in feeds.values())
    return {
        name: quantize_to_universe(np.concatenate([[lo, hi], s]), UNIVERSE)[2:]
        for name, s in feeds.items()
    }


def main() -> None:
    feeds = make_feeds()
    fleet = StreamFleet(buckets=32)

    # Morning: ingest the first half of the day in lockstep.
    half = TICKS // 2
    for t in range(half):
        fleet.insert_row({name: series[t] for name, series in feeds.items()})

    print(f"fleet of {len(fleet)} streams, {half:,} ticks each")
    print(f"summary memory: {fleet.total_memory_bytes():,} bytes total")
    ranked = fleet.nearest("plant-a", k=4)
    print("\nnearest to plant-a at midday (bounds from summaries only):")
    for stream_id, low, high in ranked:
        print(f"  {stream_id:<10} distance in [{low:>8,.0f}, {high:>8,.0f}]")

    # Checkpoint one summary to JSON (each node would persist its own).
    # The fleet's per-stream summaries are plain library objects, so the
    # checkpoint module applies directly.
    plant_a = fleet.summary("plant-a")
    payload = to_json(plant_a)
    print(f"\ncheckpoint of plant-a: {len(payload):,} JSON bytes")

    # "Crash": rebuild plant-a's summary from the checkpoint, then keep
    # feeding it the afternoon data -- no re-reading the morning stream.
    restored = from_json(payload)
    assert isinstance(restored, MinMergeHistogram)
    for t in range(half, TICKS):
        restored.insert(feeds["plant-a"][t])
    full_day = restored.histogram()
    print(
        f"restored plant-a resumed cleanly: covers [{full_day.beg}, "
        f"{full_day.end}], error {full_day.error:g}"
    )
    assert full_day.end == TICKS - 1

    # Afternoon for the rest of the fleet; the drifter should fall away.
    for t in range(half, TICKS):
        fleet.insert_row({name: series[t] for name, series in feeds.items()})
    print("\nnearest to plant-a at end of day:")
    for stream_id, low, high in fleet.nearest("plant-a", k=4):
        print(f"  {stream_id:<10} distance in [{low:>8,.0f}, {high:>8,.0f}]")

    # What did the summary actually keep?  Eyeball it.
    print()
    print(
        ascii_chart(
            feeds["plant-a"],
            full_day.reconstruct(),
            width=68,
            height=12,
            title="plant-a: day of data (.) vs 64-bucket summary (#/@)",
        )
    )


if __name__ == "__main__":
    main()
