"""Piecewise-linear histograms on trending data (Section 3 / Figure 9).

Financial and environmental series exhibit rising and falling *trends*; a
piecewise-constant bucket must pay for the whole rise, while a
piecewise-linear bucket follows it for free.  This script compares serial
and PWL MIN-MERGE on the Dow-Jones proxy and prints the error ratio the
paper reports as "about 30%-40% better ... for the same number of
buckets", plus the bucket count each needs to reach a common error target.

Run with::

    python examples/trend_compression_pwl.py
"""

from repro import (
    MinMergeHistogram,
    PwlMinMergeHistogram,
    min_buckets_for_error,
    min_pwl_buckets_for_error,
)
from repro.data import dow_jones


def main() -> None:
    stream = dow_jones(4096)

    print("error at equal bucket count (MIN-MERGE, serial vs PWL)")
    print(f"{'B':>4}  {'serial':>10}  {'pwl':>10}  {'improvement':>11}")
    for buckets in (16, 24, 32, 48, 64):
        serial = MinMergeHistogram(buckets=buckets)
        serial.extend(stream)
        pwl = PwlMinMergeHistogram(buckets=buckets, hull_epsilon=0.1)
        pwl.extend(stream)
        gain = 1.0 - pwl.error / serial.error
        print(
            f"{buckets:>4}  {serial.error:>10,.0f}  {pwl.error:>10,.0f}"
            f"  {gain:>10.0%}"
        )

    # The dual view: how many buckets does each representation need to hit
    # a fixed error target?  (Offline greedy, Lemma 2 / its PWL analogue.)
    target = 1200.0
    serial_buckets = min_buckets_for_error(stream, target)
    pwl_buckets = min_pwl_buckets_for_error(stream, target)
    print(f"\nbuckets needed for error <= {target:g}:")
    print(f"  serial histogram : {serial_buckets}")
    print(f"  PWL histogram    : {pwl_buckets}")

    # Show one PWL bucket following a trend: the longest segment and its
    # slope, i.e. the trend it captured for the price of one bucket.
    pwl = PwlMinMergeHistogram(buckets=32, hull_epsilon=0.1)
    pwl.extend(stream)
    longest = max(pwl.histogram(), key=lambda seg: seg.count)
    print(
        f"\nlongest PWL bucket covers {longest.count:,} points "
        f"[{longest.beg}, {longest.end}] with slope {longest.slope:+.2f} "
        f"per step"
    )


if __name__ == "__main__":
    main()
