"""Side-by-side comparison of every algorithm in the library.

Streams one dataset through MIN-MERGE, MIN-INCREMENT (plain and batched),
REHIST, and the PWL variants; prints error, memory, bucket count, and
throughput next to the exact offline optimum.  This is the library's
"executive summary" of the paper's Section 5 in one table.

Run with::

    python examples/compare_algorithms.py [dataset] [points]
"""

import sys

from repro import optimal_error
from repro.data import dataset_by_name
from repro.harness.runner import make_algorithm, run_stream

BUCKETS = 32
EPSILON = 0.2

ALGORITHMS = (
    "min-merge",
    "min-increment",
    "min-increment-batched",
    "rehist",
    "pwl-min-merge",
    "pwl-min-increment",
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "merced"
    points = int(sys.argv[2]) if len(sys.argv) > 2 else 8192
    values = dataset_by_name(dataset).loader(points)
    best = optimal_error(values, BUCKETS)

    print(
        f"dataset={dataset}, n={points:,}, B={BUCKETS}, eps={EPSILON}; "
        f"optimal-{BUCKETS} error = {best:g}\n"
    )
    header = (
        f"{'algorithm':<24}{'error':>10}{'vs opt':>9}{'buckets':>9}"
        f"{'memory(B)':>11}{'items/s':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in ALGORITHMS:
        algo = make_algorithm(name, buckets=BUCKETS, epsilon=EPSILON)
        result = run_stream(algo, values, name=name)
        ratio = result.error / best if best else float("inf")
        print(
            f"{name:<24}{result.error:>10,.0f}{ratio:>8.2f}x"
            f"{result.buckets:>9}{result.memory_bytes:>11,}"
            f"{result.items_per_second:>12,.0f}"
        )

    print(
        "\nNotes: min-merge holds 2B buckets, hence its sub-optimal error;"
        "\nPWL errors are not directly comparable to the serial optimum"
        "\n(they solve an easier fitting problem, so they can beat it)."
    )


if __name__ == "__main__":
    main()
