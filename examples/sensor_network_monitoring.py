"""Sensor-network monitoring with a sliding-window histogram.

The paper's first motivating scenario (Section 1): sensor nodes with a few
KBytes of RAM must summarize their readings for in-network aggregation,
and sudden spikes -- the interesting events -- must stay visible, which is
why the *maximum* error metric is the right one.

This script simulates a temperature sensor with occasional anomalous
spikes and maintains a :class:`SlidingWindowMinIncrement` summary over the
last 24 hours of readings.  It shows

* that the summary's memory stays within a sensor-class budget (a few KB)
  regardless of how long the node runs,
* that every injected spike is still visible in the window histogram
  (an L2 summary of the same size would happily smooth it away), and
* a simple online anomaly rule built from the histogram itself.

Run with::

    python examples/sensor_network_monitoring.py
"""

import numpy as np

from repro import SlidingWindowMinIncrement
from repro.data import quantize_to_universe

UNIVERSE = 1 << 15
READINGS_PER_DAY = 24 * 60  # one reading per minute
DAYS = 10


def simulated_sensor(seed: int = 5) -> tuple[list[int], list[int]]:
    """Minute-resolution temperature readings with injected anomalies.

    Returns ``(readings, spike_positions)``.
    """
    rng = np.random.default_rng(seed)
    n = READINGS_PER_DAY * DAYS
    minutes = np.arange(n)
    # Diurnal cycle around 20 C with slow weather drift and sensor noise.
    diurnal = 6.0 * np.sin(2 * np.pi * minutes / READINGS_PER_DAY)
    weather = np.cumsum(rng.normal(0, 0.01, n))
    noise = rng.normal(0, 0.3, n)
    series = 20.0 + diurnal + weather + noise
    # Inject rare spikes (a door left open, direct sunlight, a fault).
    spike_positions = sorted(rng.choice(n, size=8, replace=False).tolist())
    for pos in spike_positions:
        series[pos:pos + 3] += rng.uniform(15.0, 25.0)
    return quantize_to_universe(series, UNIVERSE), spike_positions


def main() -> None:
    readings, spikes = simulated_sensor()
    window = READINGS_PER_DAY  # summarize the last 24 hours
    # Sensor-class parameters: the sliding-window summary keeps every
    # error level of the ladder alive (Theorem 5's O(eps^-1 B log U)), so
    # a real mote trades a coarser eps and fewer buckets for KB-scale RAM.
    summary = SlidingWindowMinIncrement(
        buckets=8, epsilon=0.5, universe=UNIVERSE, window=window
    )

    peak_memory = 0
    alerts: list[int] = []
    for i, value in enumerate(readings):
        summary.insert(value)
        peak_memory = max(peak_memory, summary.memory_bytes())
        # Online anomaly rule: once a day, flag windows whose histogram
        # contains a bucket far above the window's typical level.
        if i % READINGS_PER_DAY == READINGS_PER_DAY - 1:
            hist = summary.histogram()
            levels = [seg.left for seg in hist]
            typical = sorted(levels)[len(levels) // 2]
            spread = max(levels) - typical
            # The diurnal swing spans roughly a quarter of the quantized
            # range; anything well beyond that is a genuine outlier.
            if spread > UNIVERSE // 4:
                alerts.append(i // READINGS_PER_DAY)

    hist = summary.histogram()
    print(f"readings processed : {summary.items_seen:,}")
    print(f"window length      : {window:,} readings (24 h)")
    print(f"peak summary memory: {peak_memory:,} bytes (sensor budget: KBytes)")
    print(f"final window error : {hist.error:g} (universe {UNIVERSE:,})")
    print(f"final window bucket: {len(hist)} (at most B + 1 = 9)")
    assert len(hist) <= 9
    assert peak_memory < 8192, "summary must fit a sensor-class memory budget"

    # Spikes inside the final window must survive summarization: the
    # histogram's estimate at a spike minute stays far above the baseline.
    window_start = summary.window_start
    visible = [p for p in spikes if p >= window_start]
    for pos in visible:
        estimate = hist.value_at(pos)
        baseline = hist.value_at(max(window_start, pos - 30))
        print(
            f"spike at minute {pos}: histogram estimate {estimate:,.0f} "
            f"vs baseline {baseline:,.0f}"
        )
    days_with_spikes = sorted({p // READINGS_PER_DAY for p in spikes})
    print(f"days with injected spikes: {days_with_spikes}")
    print(f"days alerted             : {alerts}")


if __name__ == "__main__":
    main()
