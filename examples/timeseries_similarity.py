"""StatStream-style similarity search over many concurrent streams.

The paper's second motivating scenario (Section 1): a data-stream system
monitoring thousands of time series answers similarity queries from
*compressed* representations, so the per-stream summary must be tiny.
This script maintains one MIN-MERGE histogram per stream and answers
"which series is closest to a query series under the L-infinity
distance?" using only the summaries -- with provable lower/upper bounds on
every reported distance (``series_linf_distance``).

Run with::

    python examples/timeseries_similarity.py
"""

import numpy as np

from repro import MinMergeHistogram, linf_error, series_linf_distance
from repro.data import quantize_to_universe

UNIVERSE = 1 << 15
LENGTH = 4096
BUCKETS = 48


def make_fleet(seed: int = 11) -> dict[str, list[int]]:
    """A small fleet of correlated and uncorrelated series."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0, 1.0, LENGTH))
    fleet = {
        "base": base,
        # Followers: the base plus small independent noise -- near matches.
        "follower-tight": base + rng.normal(0, 0.4, LENGTH),
        "follower-loose": base + rng.normal(0, 3.0, LENGTH),
        # A laggard: the base shifted in time -- locally similar shape, but
        # pointwise distance grows with volatility.
        "laggard": np.concatenate([base[:64], base[:-64]]),
        # Independent walks -- far away.
        "independent-1": np.cumsum(rng.normal(0, 1.0, LENGTH)),
        "independent-2": np.cumsum(rng.normal(0, 1.0, LENGTH)),
    }
    # Quantize the whole fleet with a *shared* affine map so pointwise
    # distances remain comparable across series.
    lo = min(float(np.min(s)) for s in fleet.values())
    hi = max(float(np.max(s)) for s in fleet.values())
    return {
        name: quantize_to_universe(
            np.concatenate([[lo, hi], series]), UNIVERSE
        )[2:]
        for name, series in fleet.items()
    }


def main() -> None:
    fleet = make_fleet()
    summaries = {}
    total_memory = 0
    for name, series in fleet.items():
        summary = MinMergeHistogram(buckets=BUCKETS)
        summary.extend(series)
        summaries[name] = summary.histogram()
        total_memory += summary.memory_bytes()

    raw_bytes = LENGTH * 4 * len(fleet)
    print(f"fleet              : {len(fleet)} series x {LENGTH:,} points")
    print(
        f"summary memory     : {total_memory:,} bytes total "
        f"(raw data: {raw_bytes:,} bytes, "
        f"{raw_bytes / total_memory:,.0f}x compression)"
    )

    query = "base"
    print(f"\nnearest neighbours of {query!r} by L-infinity distance:")
    print(f"{'series':<16}{'bound-low':>12}{'bound-high':>12}{'true':>10}")
    ranked = []
    for name, hist in summaries.items():
        if name == query:
            continue
        low, high = series_linf_distance(summaries[query], hist)
        true = linf_error(fleet[query], fleet[name])
        assert low - 1e-9 <= true <= high + 1e-9, (name, low, true, high)
        ranked.append((high, low, true, name))
        print(f"{name:<16}{low:>12,.0f}{high:>12,.0f}{true:>10,.0f}")

    ranked.sort()
    print(f"\nbest candidate by summary bound : {ranked[0][-1]}")
    truth = min(
        (linf_error(fleet[query], fleet[name]), name)
        for name in fleet if name != query
    )
    print(f"true nearest neighbour          : {truth[1]}")


if __name__ == "__main__":
    main()
