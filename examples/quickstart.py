"""Quickstart: build a maximum-error histogram of a stream in a few lines.

Run with::

    python examples/quickstart.py

The script streams a random walk through MIN-MERGE (the paper's simplest
algorithm: O(B) memory, error never worse than the optimal B-bucket
histogram) and prints the resulting summary next to the exact offline
optimum, then repeats the run with instrumentation enabled to show the
observability layer (docs/OBSERVABILITY.md).
"""

from repro import MinIncrementHistogram, MinMergeHistogram, optimal_error
from repro.data import brownian


def main() -> None:
    # A quantized random walk: 10k integers in [0, 2^15).
    stream = brownian(10_000)

    # The summary never holds more than 2 * 32 buckets, no matter how long
    # the stream gets.
    summary = MinMergeHistogram(buckets=32)
    for value in stream:
        summary.insert(value)

    histogram = summary.histogram()
    print(f"stream length    : {summary.items_seen:,}")
    print(f"summary buckets  : {len(histogram)}")
    print(f"summary memory   : {summary.memory_bytes():,} bytes")
    print(f"max error        : {histogram.error:g}")

    # Theorem 1's guarantee: our 64-bucket summary is at least as accurate
    # as the *optimal* 32-bucket histogram.
    best_possible = optimal_error(stream, 32)
    print(f"optimal-32 error : {best_possible:g}")
    assert histogram.error <= best_possible

    # The histogram reconstructs an approximation of the full stream.
    approx = histogram.reconstruct()
    worst = max(abs(a - b) for a, b in zip(stream, approx))
    print(f"measured error   : {worst:g} (equals the reported error)")

    # -- observability: the same ingest, instrumented ---------------------
    # metrics=True attaches a private registry; every summary accepts it.
    # Counters track lifecycle events (inserts, merges, ladder promotions),
    # gauges read live state, and the insert-latency profile is kept in the
    # library's own L-infinity histogram (see docs/OBSERVABILITY.md).
    instrumented = MinIncrementHistogram(
        buckets=32, epsilon=0.1, universe=1 << 15, metrics=True
    )
    instrumented.extend(stream)
    snap = instrumented.metrics.snapshot()
    print(f"\nlifecycle counts : {snap['counters']}")
    print(f"live gauges      : {snap['gauges']}")
    latency = snap["latencies"]["insert_latency"]
    print(
        f"insert latency   : mean {latency['mean_us']:.2f} us, "
        f"p99 ~{latency['p99_us']:.2f} us "
        f"(+/- {latency['timeline_max_error_us']:.2f} us)"
    )


if __name__ == "__main__":
    main()
