"""Quickstart: build a maximum-error histogram of a stream in a few lines.

Run with::

    python examples/quickstart.py

The script streams a random walk through MIN-MERGE (the paper's simplest
algorithm: O(B) memory, error never worse than the optimal B-bucket
histogram) and prints the resulting summary next to the exact offline
optimum.
"""

from repro import MinMergeHistogram, optimal_error
from repro.data import brownian


def main() -> None:
    # A quantized random walk: 10k integers in [0, 2^15).
    stream = brownian(10_000)

    # The summary never holds more than 2 * 32 buckets, no matter how long
    # the stream gets.
    summary = MinMergeHistogram(buckets=32)
    for value in stream:
        summary.insert(value)

    histogram = summary.histogram()
    print(f"stream length    : {summary.items_seen:,}")
    print(f"summary buckets  : {len(histogram)}")
    print(f"summary memory   : {summary.memory_bytes():,} bytes")
    print(f"max error        : {histogram.error:g}")

    # Theorem 1's guarantee: our 64-bucket summary is at least as accurate
    # as the *optimal* 32-bucket histogram.
    best_possible = optimal_error(stream, 32)
    print(f"optimal-32 error : {best_possible:g}")
    assert histogram.error <= best_possible

    # The histogram reconstructs an approximation of the full stream.
    approx = histogram.reconstruct()
    worst = max(abs(a - b) for a, b in zip(stream, approx))
    print(f"measured error   : {worst:g} (equals the reported error)")


if __name__ == "__main__":
    main()
