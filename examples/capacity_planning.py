"""Capacity planning: size a deployment before shipping it.

Before flashing a fleet of motes you want numbers: to stay within a given
maximum error on data like ours, how many buckets does each representation
need, which algorithm fits the RAM budget, and what does the error buy as
the budget grows?  This script runs the planner on a day of river-gauge
style data and prints the decision table, then sanity-checks the
recommendation by deploying it on the sample.

Run with::

    python examples/capacity_planning.py
"""

from repro import MinMergeHistogram, compression_profile, plan_summary
from repro.data import merced

TARGET_ERROR = 1500.0


def main() -> None:
    sample = merced(8192)

    plan = plan_summary(sample, TARGET_ERROR, epsilon=0.2)
    print(f"sample: {plan.sample_size:,} river-gauge readings")
    print(f"target maximum error: {plan.target_error:g}\n")
    print(
        f"buckets needed (exact offline duals): "
        f"serial {plan.serial_buckets_needed}, "
        f"PWL {plan.pwl_buckets_needed}\n"
    )
    print(f"{'algorithm':<20}{'B':>6}{'memory(B)':>12}")
    for option in plan.options:
        print(
            f"{option.algorithm:<20}{option.buckets:>6}"
            f"{option.projected_memory_bytes:>12,}"
        )
    best = plan.best()
    print(
        f"\nrecommended: {best.algorithm} with B={best.buckets} "
        f"(~{best.projected_memory_bytes:,} bytes)\n"
    )

    # Deploy the recommendation on the sample and verify the promise.
    summary = MinMergeHistogram(buckets=plan.serial_buckets_needed)
    summary.extend(sample)
    print(
        f"deployed min-merge B={plan.serial_buckets_needed}: "
        f"error {summary.error:g} (target {TARGET_ERROR:g}), "
        f"memory {summary.memory_bytes():,} bytes"
    )
    assert summary.error <= TARGET_ERROR

    # The wider picture: what does each extra bucket buy?
    print("\nerror vs bucket budget (exact optima on the sample):")
    print(f"{'B':>5}{'serial':>10}{'pwl':>10}{'pwl/serial':>12}")
    for row in compression_profile(sample, [16, 32, 64, 128, 256]):
        print(
            f"{row['buckets']:>5}{row['serial-error']:>10,.0f}"
            f"{row['pwl-error']:>10,.0f}{row['pwl-ratio']:>12.2f}"
        )


if __name__ == "__main__":
    main()
