"""Tests for in-network summary aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    merge_min_merge_summaries,
    merge_pwl_summaries,
)
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.offline.optimal import optimal_error
from repro.offline.optimal_pwl import optimal_pwl_error

streams = st.lists(st.integers(0, 500), min_size=2, max_size=300)


def _split(values, pieces):
    """Split a list into ``pieces`` non-empty consecutive chunks."""
    n = len(values)
    pieces = min(pieces, n)
    bounds = [i * n // pieces for i in range(pieces + 1)]
    return [values[a:b] for a, b in zip(bounds, bounds[1:])]


def _child(values, start, buckets=4):
    summary = MinMergeHistogram(buckets=buckets)
    summary._n = start  # children share the global index space
    summary.extend(values)
    return summary


class TestValidation:
    def test_needs_two_summaries(self):
        child = _child([1, 2, 3], 0)
        with pytest.raises(InvalidParameterError):
            merge_min_merge_summaries([child])

    def test_empty_child_rejected(self):
        full = _child([1, 2], 0)
        empty = MinMergeHistogram(buckets=4)
        with pytest.raises(EmptySummaryError):
            merge_min_merge_summaries([full, empty])

    def test_non_contiguous_rejected(self):
        left = _child([1, 2, 3], 0)
        gap = _child([4, 5], 10)
        with pytest.raises(InvalidParameterError):
            merge_min_merge_summaries([left, gap])

    def test_reindex_accepts_zero_based_children(self):
        left = _child([1, 2, 3], 0)
        right = _child([9, 9], 0)  # also indexed from zero
        merged = merge_min_merge_summaries([left, right], reindex=True)
        hist = merged.histogram()
        assert hist.beg == 0
        assert hist.end == 4


class TestGuaranteePreserved:
    @settings(max_examples=40)
    @given(streams, st.integers(2, 5), st.integers(1, 5))
    def test_merged_error_at_most_global_optimum(self, values, pieces, buckets):
        """The module-level theorem: (1, 2) survives aggregation."""
        chunks = _split(values, pieces)
        start = 0
        children = []
        for chunk in chunks:
            children.append(_child(chunk, start, buckets=buckets))
            start += len(chunk)
        merged = merge_min_merge_summaries(children, buckets=buckets)
        assert merged.items_seen == len(values)
        assert merged.bucket_count <= 2 * buckets
        assert merged.error <= optimal_error(values, buckets) + 1e-12
        hist = merged.histogram()
        assert hist.beg == 0
        assert hist.end == len(values) - 1
        assert hist.max_error_against(values) == pytest.approx(hist.error)

    @settings(max_examples=15)
    @given(st.lists(st.integers(0, 500), min_size=8, max_size=300))
    def test_tree_merge_matches_flat_merge_guarantee(self, values):
        """Hierarchical (tree) aggregation keeps the same bound."""
        chunks = _split(values, 4)
        start = 0
        children = []
        for chunk in chunks:
            children.append(_child(chunk, start, buckets=3))
            start += len(chunk)
        left = merge_min_merge_summaries(children[:2], buckets=3)
        right = merge_min_merge_summaries(children[2:], buckets=3)
        root = merge_min_merge_summaries([left, right], buckets=3)
        assert root.error <= optimal_error(values, 3) + 1e-12

    def test_default_buckets_is_smallest_child(self):
        left = _child(list(range(50)), 0, buckets=8)
        right = _child(list(range(50, 80)), 50, buckets=4)
        merged = merge_min_merge_summaries([left, right])
        assert merged.target_buckets == 4


class TestItemsSeenAccounting:
    def test_items_seen_is_sum_of_covered_spans(self):
        """Regression: merged ``_n`` used to be set to ``end + 1`` of the
        last bucket, overcounting when the first child's range starts past
        zero (e.g. merging summaries of a stream's later segments)."""
        left = _child([7, 7, 7, 1, 1], 100)  # covers indices [100, 104]
        right = _child([9, 2, 9], 105)  # covers [105, 107]
        merged = merge_min_merge_summaries([left, right])
        assert merged.items_seen == 8  # not 108
        hist = merged.histogram()
        assert hist.beg == 100
        assert hist.end == 107

    def test_items_seen_matches_children_sum(self):
        chunks = _split(list(range(60)), 3)
        start = 10
        children = []
        for chunk in chunks:
            children.append(_child(chunk, start))
            start += len(chunk)
        merged = merge_min_merge_summaries(children)
        assert merged.items_seen == 60

    def test_pwl_items_seen_from_spans(self):
        left = PwlMinMergeHistogram(buckets=3, hull_epsilon=None)
        left._n = 50
        left.extend([1, 2, 3, 4])
        right = PwlMinMergeHistogram(buckets=3, hull_epsilon=None)
        right._n = 54
        right.extend([5, 6])
        merged = merge_pwl_summaries([left, right])
        assert merged.items_seen == 6


class TestMergeMetrics:
    def test_child_counters_aggregate_into_merged_facade(self):
        left = MinMergeHistogram(buckets=4, metrics=True)
        left.extend(list(range(40)))
        right = MinMergeHistogram(buckets=4, metrics=True)
        right._n = 40
        right.extend([3, 1, 4, 1, 5] * 8)
        merged = merge_min_merge_summaries([left, right])
        assert merged.metrics is not None
        totals = merged.metrics.counter_totals()
        assert totals["inserts"] == 80
        child_merges = (
            left.metrics.counter_totals()["merges"]
            + right.metrics.counter_totals()["merges"]
        )
        # The reduction tree's own merges are counted on top of the
        # children's: the summaries arrive with at most 8 working buckets
        # each, and compaction back to <= 8 costs at least one merge.
        assert totals["merges"] > child_merges

    def test_uninstrumented_children_stay_uninstrumented(self):
        left = _child(list(range(30)), 0)
        right = _child(list(range(30)), 30)
        merged = merge_min_merge_summaries([left, right])
        assert merged.metrics is None

    def test_explicit_metrics_argument_wins(self):
        left = _child(list(range(30)), 0)
        right = _child(list(range(30)), 30)
        merged = merge_min_merge_summaries([left, right], metrics=True)
        assert merged.metrics is not None
        # No instrumented children: only the reduction merges register.
        totals = merged.metrics.counter_totals()
        assert totals["inserts"] == 0


class TestPwlAggregation:
    @staticmethod
    def _pwl_child(values, start, buckets=3):
        summary = PwlMinMergeHistogram(buckets=buckets, hull_epsilon=None)
        summary._n = start
        summary.extend(values)
        return summary

    @settings(max_examples=15)
    @given(st.lists(st.integers(0, 100), min_size=4, max_size=80))
    def test_pwl_merge_guarantee(self, values):
        chunks = _split(values, 2)
        left = self._pwl_child(chunks[0], 0)
        right = self._pwl_child(chunks[1], len(chunks[0]))
        merged = merge_pwl_summaries([left, right], buckets=3)
        best = optimal_pwl_error(values, 3, tol=1e-4)
        assert merged.error <= best + 1e-3
        hist = merged.histogram()
        assert hist.max_error_against(values) <= merged.error + 1e-9

    def test_pwl_reindex(self):
        left = self._pwl_child([2 * i for i in range(20)], 0)
        right = self._pwl_child([2 * i for i in range(20)], 0)
        merged = merge_pwl_summaries([left, right], reindex=True)
        hist = merged.histogram()
        assert hist.end == 39

    def test_capped_hulls_supported(self):
        left = PwlMinMergeHistogram(buckets=3, hull_epsilon=0.2)
        left.extend([i * i % 500 for i in range(300)])
        right = PwlMinMergeHistogram(buckets=3, hull_epsilon=0.2)
        right._n = 300
        right.extend([i * 3 % 500 for i in range(300)])
        merged = merge_pwl_summaries([left, right], buckets=3)
        assert merged.items_seen == 600
        assert merged.bucket_count <= 6
