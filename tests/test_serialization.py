"""Tests for the histogram wire format (to_dict / to_json round-trips)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import Histogram, Segment
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import InvalidParameterError


class TestDictRoundTrip:
    def test_simple_round_trip(self):
        hist = Histogram(
            [Segment(0, 4, 1.0, 1.0), Segment(5, 9, 2.0, 6.0)], 1.5
        )
        rebuilt = Histogram.from_dict(hist.to_dict())
        assert rebuilt.segments == hist.segments
        assert rebuilt.error == hist.error

    def test_malformed_payloads(self):
        with pytest.raises(InvalidParameterError):
            Histogram.from_dict({})
        with pytest.raises(InvalidParameterError):
            Histogram.from_dict({"error": 0.0, "segments": [[0, 1]]})
        with pytest.raises(InvalidParameterError):
            Histogram.from_dict({"error": 0.0, "segments": "oops"})

    def test_invalid_segments_still_validated(self):
        payload = {"error": 0.0, "segments": [[5, 4, 0.0, 0.0]]}
        with pytest.raises(InvalidParameterError):
            Histogram.from_dict(payload)

    def test_gap_rejected_on_rebuild(self):
        payload = {
            "error": 0.0,
            "segments": [[0, 1, 0.0, 0.0], [3, 4, 0.0, 0.0]],
        }
        with pytest.raises(InvalidParameterError):
            Histogram.from_dict(payload)


class TestJsonRoundTrip:
    def test_json_round_trip(self):
        hist = Histogram([Segment(2, 7, 3.5, 9.0)], 2.25)
        rebuilt = Histogram.from_json(hist.to_json())
        assert rebuilt.segments == hist.segments
        assert rebuilt.error == hist.error

    def test_json_is_compact(self):
        hist = Histogram([Segment(0, 1, 0.0, 0.0)], 0.0)
        assert " " not in hist.to_json()

    def test_invalid_json(self):
        with pytest.raises(InvalidParameterError):
            Histogram.from_json("{not json")

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    def test_summary_histogram_survives_the_wire(self, values):
        summary = MinMergeHistogram(buckets=4)
        summary.extend(values)
        hist = summary.histogram()
        rebuilt = Histogram.from_json(hist.to_json())
        assert rebuilt.max_error_against(values) == hist.max_error_against(
            values
        )

    def test_pwl_histogram_survives_the_wire(self):
        summary = PwlMinMergeHistogram(buckets=4, hull_epsilon=None)
        values = [((i * 13) % 97) for i in range(200)]
        summary.extend(values)
        hist = summary.histogram()
        rebuilt = Histogram.from_json(hist.to_json())
        assert rebuilt.reconstruct() == pytest.approx(hist.reconstruct())
