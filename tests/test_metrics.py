"""Tests for error metrics and the histogram-based series distance."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.min_merge import MinMergeHistogram
from repro.exceptions import InvalidParameterError
from repro.metrics.errors import (
    l2_error,
    linf_error,
    mean_absolute_error,
    series_linf_distance,
)


class TestBasicMetrics:
    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            linf_error([1], [1, 2])

    def test_empty_sequences(self):
        with pytest.raises(InvalidParameterError):
            linf_error([], [])

    def test_identical_sequences(self):
        values = [1.0, 2.0, 3.0]
        assert linf_error(values, values) == 0.0
        assert l2_error(values, values) == 0.0
        assert mean_absolute_error(values, values) == 0.0

    def test_known_values(self):
        a = [0.0, 0.0, 0.0]
        b = [3.0, -4.0, 0.0]
        assert linf_error(a, b) == 4.0
        assert l2_error(a, b) == 5.0
        assert mean_absolute_error(a, b) == pytest.approx(7.0 / 3.0)

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50)
    )
    def test_norm_inequalities(self, values):
        zeros = [0.0] * len(values)
        linf = linf_error(values, zeros)
        l2 = l2_error(values, zeros)
        mae = mean_absolute_error(values, zeros)
        assert linf <= l2 + 1e-9
        assert mae <= linf + 1e-9
        assert l2 <= math.sqrt(len(values)) * linf + 1e-6


class TestSeriesDistance:
    @staticmethod
    def _histogram_of(values, buckets=8):
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        return summary.histogram()

    def test_range_mismatch_raises(self):
        first = self._histogram_of([1, 2, 3])
        second = self._histogram_of([1, 2, 3, 4])
        with pytest.raises(InvalidParameterError):
            series_linf_distance(first, second)

    def test_identical_series_bounds_include_zero(self):
        values = [((i * 17) % 31) for i in range(100)]
        hist = self._histogram_of(values)
        low, high = series_linf_distance(hist, hist)
        assert low == 0.0
        assert high >= 0.0

    @given(
        st.lists(st.integers(0, 200), min_size=2, max_size=120),
        st.lists(st.integers(0, 200), min_size=2, max_size=120),
    )
    def test_bounds_contain_true_distance(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        first = self._histogram_of(a, buckets=4)
        second = self._histogram_of(b, buckets=4)
        low, high = series_linf_distance(first, second)
        true = linf_error(a, b)
        assert low - 1e-9 <= true <= high + 1e-9

    def test_distant_series_have_positive_lower_bound(self):
        a = [0] * 100
        b = [1000] * 100
        low, _high = series_linf_distance(
            self._histogram_of(a), self._histogram_of(b)
        )
        assert low == pytest.approx(1000.0)
