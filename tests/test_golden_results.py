"""Golden regression tests: exact values on the seeded datasets.

The datasets are seeded with numpy's Generator API (whose bit streams are
stability-guaranteed across numpy versions), and the core algorithms are
deterministic, so these exact numbers must never change.  If one does, an
algorithm's behaviour changed -- intentionally or not -- and the figure
tables in EXPERIMENTS.md are stale.

(The values were produced by the code itself; what the test pins is
*stability*, not first-principles correctness -- the property suites do
that.)
"""

from __future__ import annotations

import pytest

from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.data import brownian, dow_jones, merced
from repro.offline.optimal import optimal_error

N = 2048
UNIVERSE = 1 << 15

GOLDEN = {
    # dataset: (first five values, optimal_error(16), min-merge error,
    #           min-merge bytes, min-increment error, min-increment bytes)
    "dow-jones": (
        [18164, 17040, 17001, 17101, 16299],
        3501.0, 2464.5, 760, 3647.0, 912,
    ),
    "merced": (
        [58, 41, 42, 50, 70],
        1034.0, 643.5, 760, 1224.0, 1568,
    ),
    "brownian": (
        [31357, 31073, 31278, 31534, 31002],
        2209.5, 1527.5, 760, 2528.5, 832,
    ),
}

LOADERS = {"dow-jones": dow_jones, "merced": merced, "brownian": brownian}


@pytest.mark.parametrize("dataset", sorted(GOLDEN))
class TestGolden:
    def test_dataset_head(self, dataset):
        head, *_ = GOLDEN[dataset]
        assert LOADERS[dataset](N)[:5] == head

    def test_optimal_error(self, dataset):
        _head, optimal, *_ = GOLDEN[dataset]
        assert optimal_error(LOADERS[dataset](N), 16) == optimal

    def test_min_merge(self, dataset):
        _h, _o, mm_error, mm_bytes, *_ = GOLDEN[dataset]
        summary = MinMergeHistogram(buckets=16)
        summary.extend(LOADERS[dataset](N))
        assert summary.error == mm_error
        assert summary.memory_bytes() == mm_bytes

    def test_min_increment(self, dataset):
        *_, mi_error, mi_bytes = GOLDEN[dataset]
        summary = MinIncrementHistogram(
            buckets=16, epsilon=0.2, universe=UNIVERSE
        )
        summary.extend(LOADERS[dataset](N))
        assert summary.error == mi_error
        assert summary.memory_bytes() == mi_bytes
