"""Tests for static and streaming convex hulls."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull, convex_hull
from repro.geometry.point import cross

# x-sorted point streams with strictly increasing integer x.
def xy_streams(max_size=80, value_range=200):
    return st.lists(
        st.integers(-value_range, value_range), min_size=1, max_size=max_size
    ).map(lambda ys: [(i, y) for i, y in enumerate(ys)])


class TestStaticHull:
    def test_empty(self):
        assert convex_hull([]) == []

    def test_single_point(self):
        assert convex_hull([(1, 2)]) == [(1, 2)]

    def test_two_points(self):
        assert convex_hull([(0, 0), (1, 1)]) == [(0, 0), (1, 1)]

    def test_collinear_points_reduce_to_endpoints(self):
        pts = [(i, 2 * i) for i in range(5)]
        assert convex_hull(pts) == [(0, 0), (4, 8)]

    def test_square(self):
        pts = [(0, 0), (0, 1), (1, 0), (1, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert (0.5, 0.5) not in hull

    def test_duplicates_ignored(self):
        pts = [(0, 0), (0, 0), (1, 1), (1, 1)]
        assert convex_hull(pts) == [(0, 0), (1, 1)]

    def test_ccw_orientation(self):
        pts = [(0, 0), (4, 0), (4, 3), (0, 3), (2, 1)]
        hull = convex_hull(pts)
        n = len(hull)
        for i in range(n):
            assert cross(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]) > 0


class TestStreamingHull:
    def test_empty_hull_is_falsy(self):
        hull = StreamingHull()
        assert not hull
        assert hull.vertex_count == 0
        assert hull.vertices() == []

    def test_single_point(self):
        hull = StreamingHull.from_points([(0, 5)])
        assert hull.vertex_count == 1
        assert hull.vertices() == [(0, 5)]

    def test_non_increasing_x_rejected(self):
        hull = StreamingHull.from_points([(0, 0), (1, 1)])
        with pytest.raises(InvalidParameterError):
            hull.add(1, 5)
        with pytest.raises(InvalidParameterError):
            hull.add(0, 5)

    def test_point_count_vs_vertex_count(self):
        # Interior points disappear from the hull but count as seen.
        hull = StreamingHull.from_points([(0, 0), (1, 0), (2, 0), (3, 5)])
        assert hull.point_count == 4
        assert hull.vertex_count == 3  # (0,0), (3,5), and one of the bottom

    @given(xy_streams())
    def test_matches_static_hull(self, points):
        hull = StreamingHull.from_points(points)
        hull.check_invariant()
        assert sorted(hull.vertices()) == sorted(convex_hull(points))

    @given(xy_streams(max_size=40))
    def test_vertices_ccw(self, points):
        hull = StreamingHull.from_points(points)
        verts = hull.vertices()
        if len(verts) < 3:
            return
        n = len(verts)
        for i in range(n):
            assert cross(verts[i], verts[(i + 1) % n], verts[(i + 2) % n]) >= 0


class TestUndo:
    def test_undo_without_add_raises(self):
        with pytest.raises(InvalidParameterError):
            StreamingHull().undo_last_add()

    def test_double_undo_raises(self):
        hull = StreamingHull.from_points([(0, 0), (1, 1)])
        hull.undo_last_add()
        with pytest.raises(InvalidParameterError):
            hull.undo_last_add()

    @given(xy_streams(max_size=60))
    def test_undo_restores_exact_state(self, points):
        if len(points) < 2:
            return
        hull = StreamingHull.from_points(points[:-1])
        before = (list(hull.lower), list(hull.upper), hull.point_count)
        hull.add(*points[-1])
        hull.undo_last_add()
        assert (hull.lower, hull.upper, hull.point_count) == before

    def test_add_after_undo_works(self):
        hull = StreamingHull.from_points([(0, 0), (1, 10)])
        hull.undo_last_add()
        hull.add(1, -3)
        assert sorted(hull.vertices()) == [(0, 0), (1, -3)]


class TestUnion:
    def test_union_requires_disjoint_x(self):
        left = StreamingHull.from_points([(0, 0), (5, 1)])
        right = StreamingHull.from_points([(3, 0), (8, 1)])
        with pytest.raises(InvalidParameterError):
            left.union(right)

    @given(xy_streams(max_size=40), xy_streams(max_size=40))
    def test_union_equals_hull_of_all_points(self, left_pts, right_pts):
        offset = len(left_pts)
        right_pts = [(x + offset, y) for x, y in right_pts]
        left = StreamingHull.from_points(left_pts)
        right = StreamingHull.from_points(right_pts)
        merged = left.union(right)
        merged.check_invariant()
        assert sorted(merged.vertices()) == sorted(
            convex_hull(left_pts + right_pts)
        )
        assert merged.point_count == len(left_pts) + len(right_pts)

    def test_union_with_empty(self):
        left = StreamingHull()
        right = StreamingHull.from_points([(0, 0), (1, 1)])
        merged = left.union(right)
        assert sorted(merged.vertices()) == [(0, 0), (1, 1)]
