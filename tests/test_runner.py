"""Tests for the harness runner and the algorithm factory."""

from __future__ import annotations

import pytest

from repro.core.min_merge import MinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.exceptions import InvalidParameterError
from repro.harness.runner import ALGORITHM_NAMES, make_algorithm, run_stream


class TestMakeAlgorithm:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_every_registry_name_constructs(self, name):
        algo = make_algorithm(name, buckets=4, window=16)
        assert algo is not None

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_algorithm("quantile-sketch", buckets=4)

    def test_sliding_window_requires_window(self):
        with pytest.raises(InvalidParameterError):
            make_algorithm("sliding-window", buckets=4)

    def test_sliding_window_passes_window(self):
        algo = make_algorithm("sliding-window", buckets=4, window=37)
        assert isinstance(algo, SlidingWindowMinIncrement)
        assert algo.window == 37


class TestRunStream:
    def test_measures_min_merge(self):
        values = [((i * 7) % 100) for i in range(500)]
        result = run_stream(MinMergeHistogram(buckets=8), values)
        assert result.items == 500
        assert result.seconds >= 0.0
        assert result.buckets <= 16
        assert result.memory_bytes > 0
        assert result.algorithm == "MinMergeHistogram"
        assert result.items_per_second > 0

    def test_custom_label(self):
        result = run_stream(MinMergeHistogram(buckets=2), [1, 2], name="mm")
        assert result.algorithm == "mm"

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_runs_every_algorithm(self, name):
        values = [((i * 13) % 256) for i in range(300)]
        algo = make_algorithm(name, buckets=4, universe=256, window=64)
        result = run_stream(algo, values, name=name)
        assert result.items == 300
        assert result.error >= 0.0
        assert result.buckets is not None

    def test_rehist_bucket_count_via_values(self):
        values = [((i * 31) % 256) for i in range(200)]
        algo = make_algorithm("rehist", buckets=4, universe=256)
        result = run_stream(algo, values)
        assert result.buckets <= 4
