"""Cross-algorithm integration tests on shared realistic streams.

These tie the whole system together: every algorithm sees the same data
and the results must be mutually consistent with the theory -- the
optimal below everything (at equal buckets), MIN-MERGE below the optimal
(it holds double the buckets), approximation factors within guarantee,
and every histogram's *measured* error consistent with what it reports.
"""

from __future__ import annotations

import pytest

from repro import (
    MinIncrementHistogram,
    MinMergeHistogram,
    PwlMinIncrementHistogram,
    PwlMinMergeHistogram,
    RehistHistogram,
    SlidingWindowMinIncrement,
    optimal_error,
    optimal_histogram,
    optimal_pwl_error,
)
from repro.data import brownian, dow_jones, merced

pytestmark = pytest.mark.slow

UNIVERSE = 1 << 15
EPSILON = 0.2
BUCKETS = 16


@pytest.fixture(
    scope="module",
    params=["dow-jones", "merced", "brownian"],
)
def stream(request):
    loader = {"dow-jones": dow_jones, "merced": merced, "brownian": brownian}
    return loader[request.param](2000)


class TestSerialConsistency:
    def test_full_ordering(self, stream):
        best = optimal_error(stream, BUCKETS)

        mm = MinMergeHistogram(buckets=BUCKETS)
        mm.extend(stream)
        mi = MinIncrementHistogram(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE
        )
        mi.extend(stream)
        rh = RehistHistogram(buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE)
        rh.extend(stream)

        # Theorem 1: 2B-bucket MIN-MERGE beats the optimal B-bucket error.
        assert mm.error <= best
        # Theorem 2 and REHIST: B buckets within (1 + eps).
        assert best - 1e-9 <= mi.error <= (1 + EPSILON) * best + 1e-9
        assert best - 1e-9 <= rh.error <= (1 + EPSILON) * best + 1e-9

    def test_reported_equals_measured(self, stream):
        for summary in (
            MinMergeHistogram(buckets=BUCKETS),
            MinIncrementHistogram(
                buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE
            ),
        ):
            summary.extend(stream)
            hist = summary.histogram()
            assert hist.max_error_against(stream) == pytest.approx(hist.error)

    def test_optimal_histogram_is_the_floor(self, stream):
        hist = optimal_histogram(stream, BUCKETS)
        assert hist.max_error_against(stream) == optimal_error(stream, BUCKETS)


class TestPwlConsistency:
    def test_pwl_never_worse_than_serial_optimum(self, stream):
        pwl_best = optimal_pwl_error(stream, BUCKETS, tol=1.0)
        serial_best = optimal_error(stream, BUCKETS)
        assert pwl_best <= serial_best + 1e-9

    def test_pwl_streaming_within_guarantees(self, stream):
        pwl_best = optimal_pwl_error(stream, BUCKETS, tol=0.5)
        pm = PwlMinMergeHistogram(buckets=BUCKETS, hull_epsilon=0.1)
        pm.extend(stream)
        pi = PwlMinIncrementHistogram(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE
        )
        pi.extend(stream)
        # MIN-MERGE with 2B buckets: within hull slack of the B-bucket opt.
        assert pm.error <= (pwl_best + 0.5) / 0.9 + 1e-9
        # MIN-INCREMENT: (1 + eps) with B buckets (+ ladder granularity).
        assert pi.error <= max(
            (1 + EPSILON) * (pwl_best + 0.5), 0.5
        ) + 1e-9
        assert len(pi.histogram()) <= BUCKETS

    def test_pwl_histograms_reconstruct_consistently(self, stream):
        pm = PwlMinMergeHistogram(buckets=BUCKETS, hull_epsilon=None)
        pm.extend(stream)
        hist = pm.histogram()
        measured = hist.max_error_against(stream)
        assert measured <= hist.error + 1e-6


class TestSlidingWindowConsistency:
    def test_final_window_against_offline_optimal(self, stream):
        window = 500
        sw = SlidingWindowMinIncrement(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE, window=window
        )
        sw.extend(stream)
        hist = sw.histogram()
        tail = stream[-window:]
        best = optimal_error(tail, BUCKETS)
        assert len(hist) <= BUCKETS + 1
        assert hist.max_error_against(tail) <= (1 + EPSILON) * best + 1e-9

    def test_matches_full_stream_when_window_covers_it(self, stream):
        sw = SlidingWindowMinIncrement(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE,
            window=len(stream),
        )
        mi = MinIncrementHistogram(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE
        )
        sw.extend(stream)
        mi.extend(stream)
        # Same ladder, same greedy: the window answer may use one extra
        # bucket but must be at least as accurate as the full-stream one.
        assert sw.histogram().error <= mi.error + 1e-9


class TestMemoryStory:
    def test_paper_headline_two_orders_of_magnitude(self):
        """Abstract: 'two or more orders of magnitude less memory'.

        At the paper's full scale (B = 128, n = 16384) the measured ratio
        is ~112x (recorded in EXPERIMENTS.md via the fig5 benchmark); this
        quick test runs a quarter of the stream, where REHIST has realized
        fewer breakpoints, and still demands most of the gap.
        """
        stream = brownian(4000)
        mm = MinMergeHistogram(buckets=128)
        mm.extend(stream)
        rh = RehistHistogram(buckets=128, epsilon=EPSILON, universe=UNIVERSE)
        rh.extend(stream)
        assert rh.memory_bytes() >= 50 * mm.memory_bytes()
