"""Tests for the Greenwald-Khanna quantile sketch baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gk_quantile import GKQuantileSketch
from repro.exceptions import EmptySummaryError, InvalidParameterError


def true_rank(values: list, answer) -> tuple[int, int]:
    """(min_rank, max_rank) of ``answer`` in the sorted multiset (1-based)."""
    sorted_values = sorted(values)
    lo = 1 + sum(1 for v in sorted_values if v < answer)
    hi = sum(1 for v in sorted_values if v <= answer)
    return lo, max(lo, hi)


class TestValidation:
    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            GKQuantileSketch(0.0)
        with pytest.raises(InvalidParameterError):
            GKQuantileSketch(1.0)

    def test_empty_query(self):
        with pytest.raises(EmptySummaryError):
            GKQuantileSketch(0.1).quantile(0.5)

    def test_invalid_quantile(self):
        sketch = GKQuantileSketch(0.1)
        sketch.insert(1)
        with pytest.raises(InvalidParameterError):
            sketch.quantile(1.5)


class TestExactSmallCases:
    def test_single_value(self):
        sketch = GKQuantileSketch(0.1)
        sketch.insert(42)
        assert sketch.quantile(0.0) == 42
        assert sketch.quantile(0.5) == 42
        assert sketch.quantile(1.0) == 42

    def test_extremes_are_exact(self):
        sketch = GKQuantileSketch(0.05)
        values = [random.Random(1).randint(0, 1000) for _ in range(5000)]
        sketch.extend(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)


class TestRankAccuracy:
    @pytest.mark.parametrize("epsilon", [0.01, 0.05, 0.1])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_rank_error_within_bound(self, epsilon, seed):
        rng = random.Random(seed)
        values = [rng.randint(0, 100_000) for _ in range(8000)]
        sketch = GKQuantileSketch(epsilon)
        sketch.extend(values)
        sketch.check_invariant()
        n = len(values)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            answer = sketch.quantile(q)
            lo, hi = true_rank(values, answer)
            target = q * n
            # The answer's true rank interval must come within eps*n of
            # the target (2x slack for the query-side tolerance).
            assert lo - 2 * epsilon * n <= target <= hi + 2 * epsilon * n

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=400))
    def test_invariants_on_arbitrary_streams(self, values):
        sketch = GKQuantileSketch(0.1)
        sketch.extend(values)
        sketch.check_invariant()
        answer = sketch.quantile(0.5)
        assert min(values) <= answer <= max(values)

    def test_sorted_and_reversed_streams(self):
        for stream in (list(range(5000)), list(range(5000, 0, -1))):
            sketch = GKQuantileSketch(0.05)
            sketch.extend(stream)
            sketch.check_invariant()
            answer = sketch.quantile(0.5)
            assert abs(answer - 2500) <= 0.11 * 5000


class TestSpace:
    def test_sublinear_space(self):
        rng = random.Random(3)
        sketch = GKQuantileSketch(0.05)
        for _ in range(50_000):
            sketch.insert(rng.randint(0, 1 << 30))
        # O(eps^-1 log(eps n)): far below n.
        assert sketch.entry_count < 2000
        assert sketch.memory_bytes() == 12 * sketch.entry_count

    def test_space_shrinks_with_coarser_epsilon(self):
        rng = random.Random(4)
        values = [rng.randint(0, 10_000) for _ in range(20_000)]
        fine = GKQuantileSketch(0.01)
        coarse = GKQuantileSketch(0.1)
        fine.extend(values)
        coarse.extend(values)
        assert coarse.entry_count < fine.entry_count


class TestContrastWithHistogram:
    def test_quantiles_cannot_answer_point_in_time_queries(self):
        """The complementarity story: GK erases temporal structure."""
        from repro.core.min_merge import MinMergeHistogram
        from repro.metrics.errors import linf_error

        # First half low, second half high: time matters.
        values = [100] * 2000 + [900] * 2000
        sketch = GKQuantileSketch(0.05)
        sketch.extend(values)
        summary = MinMergeHistogram(buckets=8)
        summary.extend(values)

        # GK nails the distribution...
        assert sketch.quantile(0.25) == 100
        assert sketch.quantile(0.75) == 900
        # ...but its best series "reconstruction" (each index gets the
        # overall median-ish value) is terrible, while the histogram's
        # reconstruction is exact.
        flat = [sketch.quantile(0.5)] * len(values)
        hist = summary.histogram().reconstruct()
        assert linf_error(values, hist) == 0.0
        assert linf_error(values, flat) >= 400.0
