"""Tests for the explicit memory cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.memory.model import (
    BYTES_PER_WORD,
    DEFAULT_MODEL,
    MemoryModel,
    MemoryReport,
)


class TestMemoryModel:
    def test_invalid_word_size(self):
        with pytest.raises(InvalidParameterError):
            MemoryModel(0)

    def test_default_word_size_matches_paper(self):
        assert BYTES_PER_WORD == 4
        assert DEFAULT_MODEL.words(1) == 4

    def test_structure_costs(self):
        model = MemoryModel()
        assert model.buckets(3) == 3 * 4 * 4
        assert model.heap_entries(5) == 5 * 2 * 4
        assert model.ladder_entries(7) == 7 * 4
        assert model.open_buckets(2) == 2 * 3 * 4
        assert model.hull_vertices(4) == 4 * 2 * 4
        assert model.pwl_headers(3) == 3 * 2 * 4
        assert model.breakpoints(2) == 2 * 4 * 4
        assert model.stack_entries(6) == 6 * 2 * 4

    def test_wider_words_scale_costs(self):
        wide = MemoryModel(bytes_per_word=8)
        assert wide.buckets(1) == 2 * DEFAULT_MODEL.buckets(1)


class TestMemoryReport:
    def test_total(self):
        report = MemoryReport({"buckets": 128, "heap": 64})
        assert report.total_bytes == 192

    def test_addition_merges_components(self):
        a = MemoryReport({"buckets": 100})
        b = MemoryReport({"buckets": 20, "heap": 8})
        merged = a + b
        assert merged.components == {"buckets": 120, "heap": 8}

    def test_sum_builtin(self):
        reports = [MemoryReport({"x": 1}), MemoryReport({"x": 2})]
        assert sum(reports).components == {"x": 3}

    def test_empty_report(self):
        assert MemoryReport().total_bytes == 0
