"""Cross-backend equivalence: ``backend="soa"`` vs ``backend="object"``.

The structure-of-arrays kernels (``repro.core.soa``) promise *bit-identical*
MIN-MERGE maintenance -- same buckets, same error, same tie-breaks -- while
replacing the object backend's per-bucket allocation and addressable heap
with flat columns and a lazy-deletion ``heapq``.  These tests sweep both
backends over seeded randomized and adversarial streams and require exact
state equality at every interface: scalar ``insert``, batched ``extend``,
``insert_run``, ``adopt_buckets``/``compact``, checkpoint round trips
across backends (both directions), parallel tree-reduce merges, the
``api.summarize``/service plumbing, and the engine's epoch-keyed query
cache that rides on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import checkpoint
from repro.api import build_summary, summarize
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import InvalidParameterError
from repro.observability.metrics import MetricsRegistry
from repro.parallel import ParallelSummarizer
from repro.service import StreamEngine


def _dataset(name: str, n: int, seed: int = 0) -> list:
    """Seeded stream families, including the adversarial orderings."""
    rng = np.random.default_rng(seed)
    if name == "uniform":
        return rng.integers(0, 1 << 14, n).tolist()
    if name == "duplicates":
        return rng.integers(0, 7, n).tolist()
    if name == "rough":
        return [(37 * i + (i * i) % 89) % 1024 for i in range(n)]
    if name == "sorted":
        return sorted(rng.integers(0, 1 << 14, n).tolist())
    if name == "sawtooth":
        return [i % 97 for i in range(n)]
    if name == "constant":
        return [42] * n
    if name == "extremes":
        return [0 if i % 2 else 10_000 for i in range(n)]
    if name == "floats":
        return (rng.random(n) * 1000).tolist()
    raise AssertionError(name)


DATASETS = (
    "uniform",
    "duplicates",
    "rough",
    "sorted",
    "sawtooth",
    "constant",
    "extremes",
    "floats",
)


def _state(summary) -> tuple:
    return (
        summary.items_seen,
        [repr(b) for b in summary.buckets_snapshot()],
        summary.error,
    )


def _pair(cls, buckets, **kwargs):
    return (
        cls(buckets=buckets, backend="object", **kwargs),
        cls(buckets=buckets, backend="soa", **kwargs),
    )


class TestConstruction:
    def test_invalid_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=4, backend="nope")
        with pytest.raises(InvalidParameterError):
            PwlMinMergeHistogram(buckets=4, backend="nope")

    def test_soa_requires_heap_findmin(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=4, backend="soa", findmin="linear")

    def test_backend_attribute(self):
        assert MinMergeHistogram(buckets=4).backend == "object"
        assert MinMergeHistogram(buckets=4, backend="soa").backend == "soa"

    def test_build_summary_rejects_backend_for_other_methods(self):
        with pytest.raises(InvalidParameterError):
            build_summary("min-increment", buckets=4, backend="soa")


class TestScalarEquivalence:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("buckets", [1, 2, 3, 8, 32])
    def test_insert_bit_identical(self, dataset, buckets):
        data = _dataset(dataset, 600)
        obj, soa = _pair(MinMergeHistogram, buckets)
        for v in data:
            obj.insert(v)
            soa.insert(v)
        assert _state(obj) == _state(soa)
        soa.check_heap_consistency()
        soa.check_min_merge_property()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_sweep_with_invariants(self, seed):
        data = _dataset("uniform", 500, seed=seed)
        obj, soa = _pair(MinMergeHistogram, 2 + seed)
        for i, v in enumerate(data):
            obj.insert(v)
            soa.insert(v)
            if i % 97 == 0:
                assert _state(obj) == _state(soa)
                soa.check_heap_consistency()
        assert _state(obj) == _state(soa)

    def test_long_tiny_budget_stream_exercises_compaction(self):
        # B=2 keeps merging constantly; the lazy heap must compact and
        # stay within its staleness bound throughout.
        data = _dataset("rough", 5_000)
        obj, soa = _pair(MinMergeHistogram, 2)
        for v in data:
            obj.insert(v)
            soa.insert(v)
        assert _state(obj) == _state(soa)
        soa.check_heap_consistency()

    def test_histogram_segments_match(self):
        data = _dataset("uniform", 400)
        obj, soa = _pair(MinMergeHistogram, 6)
        obj.extend(data)
        soa.extend(data)
        assert [
            (s.beg, s.end, s.left, s.right) for s in obj.histogram()
        ] == [(s.beg, s.end, s.left, s.right) for s in soa.histogram()]


class TestBatchEquivalence:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_extend_bit_identical(self, dataset):
        arr = np.asarray(_dataset(dataset, 3_000))
        obj, soa = _pair(MinMergeHistogram, 16)
        obj.extend(arr)
        soa.extend(arr)
        assert _state(obj) == _state(soa)
        soa.check_heap_consistency()

    def test_extend_matches_scalar_inserts(self):
        data = _dataset("uniform", 2_000, seed=3)
        scalar = MinMergeHistogram(buckets=8, backend="soa")
        for v in data:
            scalar.insert(v)
        batched = MinMergeHistogram(buckets=8, backend="soa")
        batched.extend(np.asarray(data))
        assert _state(scalar) == _state(batched)

    def test_mixed_chunked_ingest(self):
        data = _dataset("rough", 2_400, seed=1)
        obj, soa = _pair(MinMergeHistogram, 5)
        for lo in range(0, len(data), 400):
            chunk = data[lo : lo + 400]
            obj.extend(np.asarray(chunk))
            soa.extend(np.asarray(chunk))
            assert _state(obj) == _state(soa)


class TestPwlEquivalence:
    @pytest.mark.parametrize("dataset", ("uniform", "duplicates", "sawtooth"))
    def test_insert_bit_identical(self, dataset):
        data = _dataset(dataset, 300)
        obj, soa = _pair(PwlMinMergeHistogram, 4)
        for v in data:
            obj.insert(v)
            soa.insert(v)
        assert _state(obj) == _state(soa)

    def test_extend_bit_identical(self):
        arr = np.asarray(_dataset("uniform", 2_000, seed=2))
        obj, soa = _pair(PwlMinMergeHistogram, 6)
        obj.extend(arr)
        soa.extend(arr)
        assert _state(obj) == _state(soa)
        assert [
            (s.beg, s.end, s.left, s.right) for s in obj.histogram()
        ] == [(s.beg, s.end, s.left, s.right) for s in soa.histogram()]


class TestCheckpointCrossBackend:
    @pytest.mark.parametrize("src,dst", [("object", "soa"), ("soa", "object")])
    @pytest.mark.parametrize("kind", ["min-merge", "pwl-min-merge"])
    def test_midstream_restore_across_backends(self, kind, src, dst):
        # Checkpoint one backend mid-stream, restore under the other, feed
        # the tail to both: the futures must be bit-identical.
        data = _dataset("uniform", 1_200, seed=4)
        reference = build_summary(kind, buckets=6, backend=src)
        reference.extend(data[:700])
        state = checkpoint.state_dict(reference)
        assert state["backend"] == src
        state["backend"] = dst
        restored = checkpoint.restore(state)
        assert restored.backend == dst
        assert _state(reference) == _state(restored)
        reference.extend(data[700:])
        restored.extend(data[700:])
        assert _state(reference) == _state(restored)

    def test_json_round_trip_preserves_backend(self):
        summary = MinMergeHistogram(buckets=4, backend="soa")
        summary.extend(_dataset("rough", 300))
        restored = checkpoint.from_json(checkpoint.to_json(summary))
        assert restored.backend == "soa"
        assert _state(summary) == _state(restored)


class TestParallelEquivalence:
    @pytest.mark.parametrize("method", ["min-merge", "pwl-min-merge"])
    def test_tree_reduce_matches_object_backend(self, method):
        data = np.asarray(_dataset("uniform", 6_000, seed=5))
        results = []
        for backend in ("object", "soa"):
            summarizer = ParallelSummarizer(
                method,
                buckets=8,
                workers=3,
                backend="thread",
                serial_cutoff=1,
                summary_backend=backend,
            )
            summary = summarizer.summarize(data)
            assert summary.backend == backend
            results.append(_state(summary))
        assert results[0] == results[1]

    def test_summarize_workers_kwarg(self):
        data = _dataset("uniform", 4_000, seed=6)
        obj = summarize(data, 8, method="min-merge", workers=2)
        soa = summarize(data, 8, method="min-merge", workers=2, backend="soa")
        assert list(obj) == list(soa)


class TestApiPlumbing:
    @pytest.mark.parametrize("method", ["min-merge", "pwl-min-merge"])
    def test_summarize_backend_kwarg(self, method):
        data = _dataset("uniform", 1_500, seed=7)
        obj = summarize(data, 8, method=method)
        soa = summarize(data, 8, method=method, backend="soa")
        assert list(obj) == list(soa)
        assert soa.meta is not None and soa.meta.method == method

    def test_summarize_rejects_backend_elsewhere(self):
        data = _dataset("uniform", 100)
        with pytest.raises(InvalidParameterError):
            summarize(data, 8, method="min-increment", backend="soa")
        with pytest.raises(InvalidParameterError):
            summarize(data, 8, method="min-merge", backend="nope")


class TestEngineIntegration:
    def test_stream_backend_and_manifest(self, tmp_path):
        data = _dataset("uniform", 2_000, seed=8)
        with StreamEngine(checkpoint_dir=str(tmp_path)) as engine:
            handle = engine.stream(
                "s", method="min-merge", buckets=8, backend="soa"
            )
            handle.append(data)
            engine.checkpoint("s")
            served = list(engine.histogram("s"))
            assert engine.stats("s")["backend"] == "soa"
        # A fresh engine recovers the stream on the same kernel.
        with StreamEngine(checkpoint_dir=str(tmp_path)) as engine:
            assert engine.stats("s")["backend"] == "soa"
            assert list(engine.histogram("s")) == served

    def test_query_cache_hits_between_writes(self):
        registry = MetricsRegistry()
        with StreamEngine(metrics=registry) as engine:
            handle = engine.stream("s", method="min-merge", buckets=8)
            handle.append(_dataset("uniform", 500, seed=9))
            first = engine.histogram("s")
            second = engine.histogram("s")
            assert list(first) == list(second)
            counters = registry.snapshot()["counters"]
            assert counters["s.query_cache_hits"] == 1
            assert counters["s.query_cache_misses"] == 1
            # A write starts a new epoch: the next query misses, then hits.
            handle.append([1, 2, 3])
            engine.histogram("s")
            engine.histogram("s")
            counters = registry.snapshot()["counters"]
            assert counters["s.query_cache_hits"] == 2
            assert counters["s.query_cache_misses"] == 2

    def test_cached_query_is_current_after_write(self):
        with StreamEngine() as engine:
            handle = engine.stream("s", method="min-merge", buckets=4)
            handle.append([1, 2, 3])
            stale = engine.histogram("s")
            handle.append([100, 200])
            fresh = engine.histogram("s")
            assert fresh.meta.items_seen == 5
            assert list(fresh) != list(stale) or len(fresh) != len(stale)

    def test_attached_streams_are_never_cached(self):
        summary = MinMergeHistogram(buckets=4)
        with StreamEngine() as engine:
            handle = engine.attach("s", summary, method="min-merge")
            handle.append([1, 2, 3])
            engine.histogram("s")
            # Out-of-band mutation the engine cannot see: an epoch-keyed
            # cache would serve a stale answer here.
            summary.insert(50)
            assert engine.histogram("s").meta.items_seen == 4
