"""Tests for the Chebyshev (vertical width) line fit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.fit import (
    best_line_fit,
    vertical_width,
    vertical_width_naive,
)


def lp_chebyshev_error(points) -> float:
    """Reference: min t s.t. |y - a x - b| <= t via linear programming."""
    # Variables: (a, b, t); minimize t.
    a_ub = []
    b_ub = []
    for x, y in points:
        a_ub.append([x, 1.0, -1.0])   # a x + b - t <= y
        b_ub.append(y)
        a_ub.append([-x, -1.0, -1.0])  # -(a x + b) - t <= -y
        b_ub.append(-y)
    result = linprog(
        c=[0.0, 0.0, 1.0],
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=[(None, None), (None, None), (0, None)],
        method="highs",
    )
    assert result.success
    return float(result.fun)


def xy_streams(max_size=40, value_range=100):
    return st.lists(
        st.integers(-value_range, value_range), min_size=1, max_size=max_size
    ).map(lambda ys: [(i, y) for i, y in enumerate(ys)])


class TestDegenerateInputs:
    def test_empty_hull_raises(self):
        with pytest.raises(InvalidParameterError):
            best_line_fit(StreamingHull())
        with pytest.raises(InvalidParameterError):
            vertical_width(StreamingHull())

    def test_single_point_fits_exactly(self):
        hull = StreamingHull.from_points([(5, 7)])
        fit = best_line_fit(hull)
        assert fit.error == 0.0
        assert fit.value_at(5) == 7.0

    def test_two_points_fit_exactly(self):
        hull = StreamingHull.from_points([(0, 1), (4, 9)])
        fit = best_line_fit(hull)
        assert fit.error == 0.0
        assert fit.slope == pytest.approx(2.0)
        assert fit.value_at(0) == pytest.approx(1.0)
        assert fit.value_at(4) == pytest.approx(9.0)

    def test_collinear_points_fit_exactly(self):
        hull = StreamingHull.from_points([(i, 3 * i + 2) for i in range(10)])
        fit = best_line_fit(hull)
        assert fit.error == pytest.approx(0.0, abs=1e-12)
        assert fit.slope == pytest.approx(3.0)

    def test_naive_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            vertical_width_naive([])


class TestKnownGeometry:
    def test_symmetric_vee(self):
        # A "V" shape: best horizontal-ish fit splits the vee.
        points = [(0, 2), (1, 0), (2, 2)]
        hull = StreamingHull.from_points(points)
        assert vertical_width(hull) == pytest.approx(2.0)
        fit = best_line_fit(hull)
        assert fit.error == pytest.approx(1.0)

    def test_trend_plus_step(self):
        # A line with one outlier: error = half the outlier's residual.
        points = [(i, float(i)) for i in range(10)]
        points[5] = (5, 9.0)
        hull = StreamingHull.from_points(points)
        fit = best_line_fit(hull)
        assert fit.error == pytest.approx(2.0)

    def test_fit_line_bisects_strip(self):
        points = [(0, 0), (1, 4), (2, 0), (3, 4)]
        hull = StreamingHull.from_points(points)
        fit = best_line_fit(hull)
        residuals = [y - fit.value_at(x) for x, y in points]
        assert max(residuals) == pytest.approx(-min(residuals))
        assert max(residuals) == pytest.approx(fit.error)


class TestAgainstReferences:
    @given(xy_streams())
    def test_sweep_matches_naive(self, points):
        hull = StreamingHull.from_points(points)
        assert vertical_width(hull) == pytest.approx(
            vertical_width_naive(points), abs=1e-9
        )

    @given(xy_streams(max_size=25))
    def test_fit_error_matches_lp(self, points):
        hull = StreamingHull.from_points(points)
        fit = best_line_fit(hull)
        assert fit.error == pytest.approx(lp_chebyshev_error(points), abs=1e-7)

    @given(xy_streams(max_size=30))
    def test_fit_residuals_bounded_by_error(self, points):
        hull = StreamingHull.from_points(points)
        fit = best_line_fit(hull)
        for x, y in points:
            assert abs(y - fit.value_at(x)) <= fit.error + 1e-9

    @given(xy_streams(max_size=30))
    def test_error_monotone_under_extension(self, points):
        """Adding a point never shrinks the fit error (greedy soundness)."""
        hull = StreamingHull()
        previous = 0.0
        for x, y in points:
            hull.add(x, y)
            current = best_line_fit(hull).error
            assert current >= previous - 1e-12
            previous = current
