"""Tests for the multi-tenant service layer (engine, session, server).

Covers the service contracts documented in ``docs/SERVICE.md``:

* engine equivalence -- a stream fed through :class:`StreamEngine` (with
  mid-run checkpoint + recovery and concurrent queries) produces a final
  histogram bit-identical to one-shot ``summarize()``;
* snapshot isolation -- under concurrent writers and readers, every
  histogram returned equals a serial replay of some whole prefix of the
  applied batches (never a half-applied batch);
* admission control -- a full write queue raises
  :class:`BackpressureError` without ingesting anything;
* crash recovery -- a fault injected mid-checkpoint loses nothing: a new
  engine over the same directory resumes bit-exactly;
* the JSON-over-TCP wire front and its error codes.
"""

import itertools
import json
import os
import threading

import pytest

from repro.api import build_summary, methods, summarize
from repro.exceptions import (
    BackpressureError,
    EmptySummaryError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.resilience import FaultPlan, ItemJournal
from repro.service import (
    ServiceClient,
    ServiceError,
    Session,
    StreamEngine,
    StreamServer,
)
from repro.service.engine import _MANIFEST, _tenant_dirname


def _dataset(n=4000, universe=512):
    return [(37 * i + (i * i) % 11) % universe for i in range(n)]


def _same_histogram(a, b):
    return a.segments == b.segments and a.error == b.error


STREAMING = [name for name, caps in methods().items() if caps["streaming"]]


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", STREAMING)
    def test_engine_matches_oneshot_summarize(self, method, tmp_path):
        """Checkpoint + recover mid-run, query concurrently, finish: the
        final histogram must be bit-identical to serial summarize()."""
        values = _dataset()
        oracle = summarize(values, 16, method=method)

        engine = StreamEngine(checkpoint_dir=tmp_path, workers=2)
        handle = engine.stream(
            "t", method=method, buckets=16, universe=512
        )
        handle.append(values[:1000])
        engine.drain()
        handle.checkpoint()
        handle.append(values[1000:2500])
        engine.drain()
        mid = handle.histogram()  # concurrent-ish query mid-run
        assert mid.meta.items_seen == 2500
        engine.close()

        # Simulated restart: recover from snapshot + journal tail.
        engine2 = StreamEngine(checkpoint_dir=tmp_path, workers=0)
        handle2 = engine2.stream(
            "t", method=method, buckets=16, universe=512
        )
        assert handle2.stats()["recovered"]
        assert handle2.items_seen == 2500
        handle2.append(values[2500:])
        final = handle2.histogram()
        engine2.close()

        assert _same_histogram(final, oracle)
        assert final.meta.method == method
        assert final.meta.items_seen == len(values)

    def test_attach_matches_direct_summary(self):
        values = _dataset(1500)
        direct = build_summary("min-merge", buckets=8)
        direct.extend(values)
        with Session() as session:
            handle = session.attach(
                "adopted", build_summary("min-merge", buckets=8)
            )
            handle.append(values)
            assert _same_histogram(handle.histogram(), direct.histogram())

    def test_windowed_stream_matches_windowed_summarize(self):
        values = _dataset(2000)
        oracle = summarize(values, 8, window=300)
        with Session() as session:
            handle = session.stream(
                "w", method="min-increment", buckets=8, universe=512,
                window=300,
            )
            handle.append(values)
            hist = handle.histogram()
        assert _same_histogram(hist, oracle)
        assert hist.meta.window == 300


class TestSnapshotIsolation:
    def test_concurrent_queries_see_whole_batch_prefixes(self, tmp_path):
        """N writers + M readers on one stream: every histogram returned
        must equal a serial replay of some prefix of the applied batches
        (the journal records the exact apply order)."""
        n_writers, batches_per_writer, batch_len = 3, 8, 50
        engine = StreamEngine(
            checkpoint_dir=tmp_path, workers=2, journal=True
        )
        handle = engine.stream(
            "s", method="min-merge", buckets=8, universe=1 << 10
        )
        counter = itertools.count()
        stop = threading.Event()
        captured, errors = [], []

        def writer(seed):
            for b in range(batches_per_writer):
                base = next(counter) * batch_len
                handle.append(
                    [(seed * 97 + base + i) % 1000 for i in range(batch_len)]
                )

        def reader():
            while not stop.is_set():
                try:
                    hist = handle.histogram()
                except EmptySummaryError:
                    continue
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)
                    return
                captured.append(hist)

        writers = [
            threading.Thread(target=writer, args=(w,))
            for w in range(n_writers)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        engine.drain()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert captured, "readers captured no histograms"

        # Reconstruct the applied batch order from the journal.
        journal_path = os.path.join(
            os.fspath(tmp_path), _tenant_dirname("s"), "journal.log"
        )
        applied = list(ItemJournal(journal_path).replay())
        total = sum(len(v) for _, v in applied)
        assert total == n_writers * batches_per_writer * batch_len
        boundaries = {0}
        flat, upto = [], {}
        for _, batch in applied:
            flat.extend(batch)
            boundaries.add(len(flat))
            upto[len(flat)] = None
        engine.close()

        for hist in captured:
            k = hist.meta.items_seen
            assert k in boundaries, (
                f"query saw {k} items, not a batch boundary"
            )
            replay = build_summary("min-merge", buckets=8, universe=1 << 10)
            replay.extend(flat[:k])
            assert _same_histogram(hist, replay.histogram())

    def test_queries_during_writes_never_crash(self):
        with Session(workers=2) as session:
            handle = session.stream("q", method="min-increment", buckets=8)
            for chunk in range(20):
                handle.append(list(range(chunk * 10, chunk * 10 + 200)))
                try:
                    hist = handle.histogram()
                except EmptySummaryError:
                    continue
                assert hist.meta.items_seen % 200 == 0


class TestBackpressure:
    def test_full_queue_rejects_without_ingesting(self):
        gate = threading.Event()

        def hook(stream_id, n):
            gate.wait(timeout=10.0)

        engine = StreamEngine(workers=1, max_pending=100, apply_hook=hook)
        handle = engine.stream("bp", method="min-merge", buckets=4)
        accepted = [handle.append(list(range(40))) for _ in range(2)]
        assert accepted == [40, 40]
        # Third batch would make 120 pending > 100: rejected atomically.
        with pytest.raises(BackpressureError, match="write queue is full"):
            handle.append(list(range(40)))
        stats = handle.stats()
        assert stats["rejected"] == 1
        assert stats["pending_items"] <= 100
        gate.set()
        assert engine.drain(timeout=10.0)
        # Only the accepted batches were ingested; the reject tore nothing.
        assert handle.items_seen == 80
        engine.close()

    def test_zero_length_append_is_free(self):
        with Session() as session:
            handle = session.stream("z", method="min-merge", buckets=4)
            assert handle.append([]) == 0
            assert handle.items_seen == 0


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "point", ["snapshot.tmp-write", "snapshot.rename", "snapshot.fsync"]
    )
    def test_kill_during_checkpoint_recovers_bit_exactly(
        self, point, tmp_path
    ):
        values = _dataset(3000)
        oracle = summarize(values, 8, method="min-merge")
        engine = StreamEngine(
            checkpoint_dir=tmp_path,
            fault_plan=FaultPlan.crash_at(point, 1),
        )
        handle = engine.stream("c", method="min-merge", buckets=8)
        handle.append(values[:1800])
        with pytest.raises(InjectedFaultError):
            handle.checkpoint()
        # Abandon the "crashed" engine; a new one recovers everything
        # from the journal (no snapshot ever committed cleanly).
        engine2 = StreamEngine(checkpoint_dir=tmp_path)
        handle2 = engine2.stream("c", method="min-merge", buckets=8)
        assert handle2.items_seen == 1800
        handle2.append(values[1800:])
        assert _same_histogram(handle2.histogram(), oracle)
        engine2.close()

    def test_periodic_checkpoints_fire_and_recover(self, tmp_path):
        values = _dataset(2600)
        engine = StreamEngine(checkpoint_dir=tmp_path, checkpoint_every=500)
        handle = engine.stream("p", method="min-increment", buckets=8)
        for i in range(0, 2600, 200):
            handle.append(values[i : i + 200])
        stats = handle.stats()
        # 200-item batches cross the 500-item cadence every 600 items:
        # snapshots at 600/1200/1800/2400 applied.
        assert stats["checkpoints"] == 4
        assert stats["last_generation"] is not None
        engine.close()
        engine2 = StreamEngine(checkpoint_dir=tmp_path)
        assert engine2.stream("p", method="min-increment",
                              buckets=8).items_seen == 2600
        engine2.close()

    def test_manifest_written_per_stream(self, tmp_path):
        engine = StreamEngine(checkpoint_dir=tmp_path)
        engine.stream("m/1", method="min-merge", buckets=4).append([1, 2])
        path = os.path.join(
            os.fspath(tmp_path), _tenant_dirname("m/1"), _MANIFEST
        )
        with open(path) as fh:
            manifest = json.load(fh)
        assert manifest["stream_id"] == "m/1"
        assert manifest["method"] == "min-merge"
        engine.close()


class TestEngineApi:
    def test_stream_is_idempotent_but_conflicts_raise(self):
        with Session() as session:
            first = session.stream("a", method="min-merge", buckets=8)
            again = session.stream("a", method="min-merge", buckets=8)
            assert first.stream_id == again.stream_id
            with pytest.raises(InvalidParameterError, match="already exists"):
                session.stream("a", method="min-increment")

    def test_offline_method_cannot_back_a_stream(self):
        with Session() as session:
            with pytest.raises(InvalidParameterError, match="optimal"):
                session.stream("o", method="optimal")

    def test_unknown_stream_raises(self):
        with Session() as session:
            with pytest.raises(InvalidParameterError, match="unknown stream"):
                session.engine.histogram("nope")

    def test_stats_aggregate_across_streams(self):
        with Session() as session:
            session.stream("x", method="min-merge", buckets=4).append([1, 2])
            session.stream("y", method="min-merge", buckets=4).append([3])
            stats = session.stats()
            assert stats["stream_count"] == 2
            assert stats["items_seen"] == 3
            assert set(stats["streams"]) == {"x", "y"}

    def test_engine_metrics_per_tenant_prefix(self):
        engine = StreamEngine(metrics=True)
        engine.stream("m1", method="min-merge", buckets=4).append([1, 2, 3])
        stats = engine.stats()
        assert stats["metrics"]["counters"]["m1.inserts"] == 3
        engine.close()

    def test_closed_engine_refuses_appends(self):
        engine = StreamEngine()
        handle = engine.stream("c", method="min-merge", buckets=4)
        engine.close()
        with pytest.raises(InvalidParameterError, match="closed"):
            handle.append([1])

    def test_session_owns_private_engine_only(self):
        engine = StreamEngine()
        with Session(engine) as session:
            session.stream("s", method="min-merge", buckets=4).append([1])
        # Shared engine must survive the session.
        assert engine.items_seen("s") == 1
        engine.close()
        with pytest.raises(TypeError):
            Session(engine, workers=2)


class TestWireProtocol:
    """Wire-front contracts, run over both negotiated transports.

    The framing internals (frame layout, truncation, fragmentation,
    mixed-protocol bit-identity) live in ``tests/test_wire.py``; this
    class pins the request/response semantics shared by both protocols.
    """

    @pytest.fixture(params=["json", "binary"])
    def service(self, request):
        engine = StreamEngine(workers=1)
        server = StreamServer(engine).start_in_background()
        client = ServiceClient(port=server.port, transport=request.param)
        yield client, engine, server
        client.close()
        server.stop()
        engine.close()

    def test_append_query_roundtrip_matches_summarize(self, service):
        client, _engine, _server = service
        values = _dataset(2000)
        assert client.ping()
        result = client.append(
            "wire", values, method="min-merge", buckets=8
        )
        assert result.accepted == len(values)
        assert int(result) == len(values)
        assert result.stream == "wire"
        hist = client.query("wire", drain=True).histogram
        oracle = summarize(values, 8, method="min-merge")
        assert _same_histogram(hist, oracle)
        assert hist.meta.items_seen == len(values)
        assert hist.meta.method == "min-merge"

    def test_negotiated_transport_is_visible(self, service):
        client, _engine, _server = service
        info = client.info
        if info.negotiated:
            assert info.proto == 2
            assert info.protocols == (1, 2)
            assert info.server == "repro-histogram"
            assert info.wire_version == 1
        else:
            # transport="json" skips hello entirely (the v1-compatible
            # mode); the connection is pinned to protocol 1.
            assert info.proto == 1
            assert info.protocols == (1,)

    def test_scalar_and_ndarray_appends_unify(self, service):
        np = pytest.importorskip("numpy")
        client, _engine, _server = service
        assert client.append("u", 7.0, method="min-merge", buckets=4
                             ).accepted == 1
        assert client.append("u", [1, 2]).accepted == 2
        assert client.append("u", np.arange(3.0)).accepted == 3
        hist = client.query("u", drain=True).histogram
        assert hist.meta.items_seen == 6

    def test_stats_and_streams_ops(self, service):
        client, _engine, _server = service
        client.append("s1", [1, 2, 3], method="min-merge", buckets=4)
        stats = client.stats("s1")
        assert stats["appends"] == 1
        assert stats.get("method") == "min-merge"
        assert client.streams() == ("s1",)

    def test_request_shim_is_retired(self, service):
        client, _engine, _server = service
        # The v1 dict shim completed its deprecation window: it raises
        # TypeError naming the replacement, and sends nothing.
        with pytest.raises(TypeError, match="client.transport.call"):
            client.request({"op": "streams"})
        # Raw request objects still have an explicit escape hatch.
        response = client.transport.call(
            {"op": "append", "stream": "d", "values": [1, 2],
             "method": "min-merge", "buckets": 4}
        )
        assert response["accepted"] == 2
        assert client.transport.call({"op": "streams"})["streams"] == ["d"]

    def test_error_codes(self, service):
        client, _engine, _server = service
        with pytest.raises(ServiceError) as excinfo:
            client.query("missing")
        assert excinfo.value.code == "unknown-stream"
        client.append("e", [], method="min-merge", buckets=4)
        with pytest.raises(ServiceError) as excinfo:
            client.query("e")
        assert excinfo.value.code == "empty"
        with pytest.raises(ServiceError) as excinfo:
            client.transport.call({"op": "does-not-exist"})
        assert excinfo.value.code == "unknown-op"
        with pytest.raises(ServiceError) as excinfo:
            client.checkpoint("e")
        assert excinfo.value.code == "invalid"  # no checkpoint store

    def test_non_finite_values_rejected(self, service):
        client, _engine, _server = service
        client.append("f", [1.0], method="min-merge", buckets=4)
        with pytest.raises(ServiceError) as excinfo:
            client.append("f", [2.0, float("nan")])
        assert excinfo.value.code in ("invalid", "bad-request")
        assert client.query("f", drain=True).histogram.meta.items_seen == 1

    def test_malformed_requests(self, service):
        import socket as socket_mod

        client, _engine, server = service
        # A raw junk line on a fresh connection (transport-independent:
        # every connection starts in JSON mode).
        with socket_mod.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        ) as raw:
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response == {
            "ok": False,
            "error": "bad-request",
            "message": "request is not valid JSON",
        }
        # An op-less payload sent raw through the transport earns the
        # server's bad-request, exactly as in v1.
        with pytest.raises(ServiceError) as excinfo:
            client.transport.call({"no-op": 1})
        assert excinfo.value.code == "bad-request"

    def test_wire_backpressure_code(self):
        gate = threading.Event()
        engine = StreamEngine(
            workers=1, max_pending=10, apply_hook=lambda s, n: gate.wait(10)
        )
        server = StreamServer(engine).start_in_background()
        try:
            with ServiceClient(port=server.port) as client:
                client.append("b", list(range(8)), method="min-merge",
                              buckets=4)
                with pytest.raises(BackpressureError):
                    client.append("b", list(range(8)))
        finally:
            gate.set()
            server.stop()
            engine.close()

    def test_json_only_server_falls_back(self):
        engine = StreamEngine()
        server = StreamServer(engine, protocols=(1,)).start_in_background()
        try:
            with ServiceClient(port=server.port) as client:
                assert client.info.proto == 1
                assert client.info.protocols == (1,)
                assert client.append("j", [1, 2], method="min-merge",
                                     buckets=4).accepted == 2
            with pytest.raises(ServiceError, match="binary"):
                ServiceClient(port=server.port, transport="binary")
        finally:
            server.stop()
            engine.close()
