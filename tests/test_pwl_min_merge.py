"""Tests for the PWL MIN-MERGE algorithm (Theorem 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.offline.optimal_pwl import optimal_pwl_error

streams = st.lists(st.integers(0, 200), min_size=1, max_size=120)


class TestConstruction:
    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            PwlMinMergeHistogram(buckets=0)

    def test_empty_raises(self):
        summary = PwlMinMergeHistogram(buckets=2)
        with pytest.raises(EmptySummaryError):
            summary.histogram()


class TestBasicBehaviour:
    def test_linear_stream_is_lossless(self):
        summary = PwlMinMergeHistogram(buckets=1, hull_epsilon=None)
        summary.extend([3 * i + 1 for i in range(100)])
        assert summary.error == pytest.approx(0.0, abs=1e-9)

    def test_two_trends_two_buckets(self):
        stream = [2 * i for i in range(50)] + [100 - 3 * i for i in range(50)]
        summary = PwlMinMergeHistogram(buckets=1, hull_epsilon=None)
        summary.extend(stream)
        assert summary.error == pytest.approx(0.0, abs=1e-9)

    def test_bucket_budget_never_exceeded(self):
        summary = PwlMinMergeHistogram(buckets=3)
        for i in range(200):
            summary.insert((i * 37) % 101)
            assert summary.bucket_count <= 6

    def test_histogram_reconstruction_error(self):
        stream = [((i * 17) % 43) for i in range(150)]
        summary = PwlMinMergeHistogram(buckets=4, hull_epsilon=None)
        summary.extend(stream)
        hist = summary.histogram()
        assert hist.max_error_against(stream) <= summary.error + 1e-9


class TestGuarantee:
    @settings(max_examples=25)
    @given(streams, st.integers(1, 4))
    def test_exact_hull_gives_1_2_approximation(self, values, buckets):
        """With exact hulls, error <= the optimal B-bucket PWL error."""
        summary = PwlMinMergeHistogram(buckets=buckets, hull_epsilon=None)
        summary.extend(values)
        best = optimal_pwl_error(values, buckets, tol=1e-4)
        assert summary.error <= best + 1e-3

    @settings(max_examples=15)
    @given(streams)
    def test_capped_hull_within_slack(self, values):
        """With eps-kernels the bound relaxes by 1/(1 - eps) (Thm 3)."""
        epsilon = 0.1
        summary = PwlMinMergeHistogram(buckets=3, hull_epsilon=epsilon)
        summary.extend(values)
        best = optimal_pwl_error(values, 3, tol=1e-4)
        assert summary.error <= best / (1.0 - epsilon) + 1e-3

    @settings(max_examples=20)
    @given(streams)
    def test_min_merge_property(self, values):
        summary = PwlMinMergeHistogram(buckets=2, hull_epsilon=None)
        summary.extend(values)
        summary.check_min_merge_property()


class TestMemory:
    def test_memory_bounded_on_adversarial_convex_stream(self):
        # Convex data maximizes hull sizes; the kernel caps every bucket's
        # hull at its compression threshold (chain entries of 2 words each).
        summary = PwlMinMergeHistogram(buckets=4, hull_epsilon=0.2)
        for i in range(2000):
            summary.insert(i * i % 100_000)
        for node in summary._list:
            hull = node.bucket.hull
            assert hull.stored_entries <= hull._threshold
        per_bucket_cap = 8 * (2 * (2 * 16 + 4)) + 8  # entries x 8B + header
        heap_bytes = 8 * summary.bucket_count
        assert summary.memory_bytes() <= (
            summary.bucket_count * per_bucket_cap + heap_bytes
        )

    def test_exact_hull_memory_can_grow(self):
        capped = PwlMinMergeHistogram(buckets=4, hull_epsilon=0.2)
        exact = PwlMinMergeHistogram(buckets=4, hull_epsilon=None)
        for i in range(1000):
            capped.insert(i * i % 65536)
            exact.insert(i * i % 65536)
        assert capped.memory_bytes() <= exact.memory_bytes()
