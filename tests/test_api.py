"""Tests for the one-shot summarize() convenience API."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    SUMMARIZE_METHODS,
    _universe_for,
    build_summary,
    methods,
    summarize,
)
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_error

streams = st.lists(st.integers(0, 300), min_size=1, max_size=120)


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            summarize([], 4)

    def test_unknown_method(self):
        with pytest.raises(InvalidParameterError):
            summarize([1, 2], 4, method="sketch")

    def test_negative_values_rejected_by_ladder_methods(self):
        with pytest.raises(InvalidParameterError):
            summarize([-5, 3], 4)

    def test_negative_values_fine_for_min_merge_and_optimal(self):
        assert summarize([-5, 3], 4, method="min-merge").coverage == 2
        assert summarize([-5, 3], 4, method="optimal").coverage == 2


class TestMethods:
    @pytest.mark.parametrize("method", SUMMARIZE_METHODS)
    def test_every_method_covers_the_input(self, method):
        values = [((i * 37) % 211) for i in range(300)]
        hist = summarize(values, 8, method=method)
        assert hist.beg == 0
        assert hist.end == 299

    @pytest.mark.parametrize(
        "method",
        [m for m in SUMMARIZE_METHODS if m not in ("min-merge", "pwl-min-merge")],
    )
    def test_bucket_budget_respected(self, method):
        values = [((i * 53) % 307) for i in range(400)]
        hist = summarize(values, 8, method=method)
        assert len(hist) <= 8

    @pytest.mark.parametrize("method", ["min-merge", "pwl-min-merge"])
    def test_merge_family_uses_up_to_double(self, method):
        # The (1, 2) theorem trades bucket count for error: up to 2B buckets.
        values = [((i * 53) % 307) for i in range(400)]
        hist = summarize(values, 8, method=method)
        assert len(hist) <= 16

    @settings(max_examples=25)
    @given(streams, st.integers(1, 6))
    def test_default_method_guarantee(self, values, buckets):
        hist = summarize(values, buckets, epsilon=0.2)
        best = optimal_error(values, buckets)
        assert hist.max_error_against(values) <= max(
            1.2 * best, 0.5
        ) + 1e-9

    @settings(max_examples=15)
    @given(streams, st.integers(1, 5))
    def test_optimal_method_is_exact(self, values, buckets):
        hist = summarize(values, buckets, method="optimal")
        assert hist.error == optimal_error(values, buckets)

    def test_pwl_beats_serial_on_a_trend(self):
        values = [3 * i + (i % 2) for i in range(200)]
        serial = summarize(values, 4)
        pwl = summarize(values, 4, method="pwl")
        assert pwl.max_error_against(values) <= serial.max_error_against(values)


class TestCapabilityMatrix:
    def test_matrix_covers_every_registry_method(self):
        matrix = methods()
        assert set(matrix) == set(SUMMARIZE_METHODS)
        for caps in matrix.values():
            assert set(caps) >= {
                "streaming", "offline", "mergeable", "checkpointable",
                "windowed", "pwl", "summary_class", "custom",
            }

    def test_matrix_flags_derive_from_the_classes(self):
        matrix = methods()
        assert matrix["min-merge"]["mergeable"]
        assert matrix["min-merge"]["streaming"]
        assert not matrix["min-merge"]["windowed"]
        assert matrix["min-increment"]["windowed"]
        assert not matrix["min-increment"]["mergeable"]
        assert matrix["pwl"]["pwl"] and matrix["pwl-min-merge"]["pwl"]
        assert matrix["optimal"]["offline"]
        assert not matrix["optimal"]["streaming"]
        assert matrix["optimal"]["summary_class"] is None
        assert all(not caps["custom"] for caps in matrix.values())

    def test_custom_registry_entries_are_flagged(self):
        from repro.api import ALGORITHM_REGISTRY

        ALGORITHM_REGISTRY["custom-x"] = lambda values, buckets, eps: None
        try:
            caps = methods()["custom-x"]
            assert caps["custom"] and not caps["streaming"]
        finally:
            del ALGORITHM_REGISTRY["custom-x"]

    def test_unknown_method_error_lists_the_matrix(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            summarize([1, 2], 4, method="sketch")
        message = str(excinfo.value)
        assert "unknown method" in message
        for name in SUMMARIZE_METHODS:
            assert name in message
        assert "mergeable" in message


class TestWindowRouting:
    def test_window_routes_to_sliding_variant(self):
        from repro.core.sliding_window import SlidingWindowMinIncrement

        values = [(11 * i) % 97 for i in range(600)]
        hist = summarize(values, 8, window=150)
        oracle = SlidingWindowMinIncrement(8, 0.1, 97, 150)
        oracle.extend(values)
        expected = oracle.histogram()
        assert hist.segments == expected.segments
        assert hist.error == expected.error
        assert hist.meta.window == 150

    def test_window_pwl_variant(self):
        values = [3 * i for i in range(400)]
        hist = summarize(values, 8, method="pwl", window=100)
        assert hist.meta.window == 100
        assert hist.coverage <= 100

    def test_window_rejected_for_unwindowed_methods(self):
        for method in ("min-merge", "pwl-min-merge", "optimal"):
            with pytest.raises(
                InvalidParameterError, match="no sliding-window variant"
            ):
                summarize([1, 2, 3], 4, method=method, window=2)

    def test_window_incompatible_with_workers_and_classes(self):
        from repro import MinMergeHistogram

        with pytest.raises(InvalidParameterError, match="workers"):
            summarize(list(range(100)), 4, method="min-merge", window=10,
                      workers=2)
        with pytest.raises(InvalidParameterError, match="class"):
            summarize([1, 2], 4, method=MinMergeHistogram, window=2)

    def test_window_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="window"):
            summarize([1, 2], 4, window=0)


class TestHistogramMeta:
    def test_meta_attached_by_every_method(self):
        values = [(7 * i) % 53 for i in range(200)]
        for method in SUMMARIZE_METHODS:
            hist = summarize(values, 8, method=method)
            assert hist.meta is not None, method
            assert hist.meta.method == method
            assert hist.meta.items_seen == 200
            assert hist.meta.requested_buckets == 8
            assert hist.meta.buckets == len(hist)
            assert hist.meta.error == hist.error

    def test_meta_round_trips_through_the_wire_format(self):
        from repro.core.histogram import Histogram

        hist = summarize([1, 5, 2, 8], 2)
        rebuilt = Histogram.from_json(hist.to_json())
        assert rebuilt.meta == hist.meta

    def test_meta_absent_on_direct_summary_histograms(self):
        summary = build_summary("min-merge", buckets=4)
        summary.extend([1, 2, 3])
        assert summary.histogram().meta is None

    def test_workers_path_attaches_meta(self):
        values = [(13 * i) % 251 for i in range(5000)]
        hist = summarize(values, 8, method="min-merge", workers=2)
        assert hist.meta.method == "min-merge"
        assert hist.meta.items_seen == 5000


class TestUniverseFor:
    """Regression tests for _universe_for edge cases."""

    def test_all_equal_values_make_a_legal_universe(self):
        # max(values)+1 could be < 2 for zero-only streams; the floor is 2.
        assert _universe_for([0, 0, 0]) == 2
        assert _universe_for([1, 1]) == 2
        assert _universe_for([5, 5, 5]) == 6
        hist = summarize([0, 0, 0], 2)  # must not raise
        assert hist.error == 0.0

    def test_negative_minimum_raises_with_shift_hint(self):
        with pytest.raises(InvalidParameterError, match="shift"):
            _universe_for([3, -1, 5])

    def test_iterator_input_not_consumed_twice(self):
        # A one-shot iterator reaching _universe_for directly must be
        # materialized, not silently drained before ingest.
        assert _universe_for(iter([4, 9, 2])) == 10

    def test_empty_sequence_raises_cleanly(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            _universe_for([])

    def test_generator_summarize_still_sees_all_values(self):
        hist = summarize((v for v in [3, 1, 4, 1, 5]), 2)
        assert hist.meta.items_seen == 5
        assert hist.coverage == 5

    def test_numpy_reduction_path(self):
        np = pytest.importorskip("numpy")
        assert _universe_for(np.array([2, 7, 7])) == 8
        with pytest.raises(InvalidParameterError):
            _universe_for(np.array([-2, 7]))


class TestNumpyCompatibility:
    def test_numpy_arrays_accepted(self):
        np = pytest.importorskip("numpy")
        values = np.arange(200, dtype=np.int64) % 37
        hist = summarize(values, 8)
        assert hist.coverage == 200

    def test_numpy_ints_in_streaming_classes(self):
        np = pytest.importorskip("numpy")
        from repro import MinMergeHistogram, MinIncrementHistogram

        values = (np.arange(300, dtype=np.int64) * 13) % 251
        mm = MinMergeHistogram(buckets=4)
        mm.extend(values)
        mi = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=251)
        mi.extend(values)
        assert mm.items_seen == mi.items_seen == 300
        listed = values.tolist()
        assert mm.error <= optimal_error(listed, 4)
