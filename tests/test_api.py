"""Tests for the one-shot summarize() convenience API."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SUMMARIZE_METHODS, summarize
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_error

streams = st.lists(st.integers(0, 300), min_size=1, max_size=120)


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            summarize([], 4)

    def test_unknown_method(self):
        with pytest.raises(InvalidParameterError):
            summarize([1, 2], 4, method="sketch")

    def test_negative_values_rejected_by_ladder_methods(self):
        with pytest.raises(InvalidParameterError):
            summarize([-5, 3], 4)

    def test_negative_values_fine_for_min_merge_and_optimal(self):
        assert summarize([-5, 3], 4, method="min-merge").coverage == 2
        assert summarize([-5, 3], 4, method="optimal").coverage == 2


class TestMethods:
    @pytest.mark.parametrize("method", SUMMARIZE_METHODS)
    def test_every_method_covers_the_input(self, method):
        values = [((i * 37) % 211) for i in range(300)]
        hist = summarize(values, 8, method=method)
        assert hist.beg == 0
        assert hist.end == 299

    @pytest.mark.parametrize(
        "method",
        [m for m in SUMMARIZE_METHODS if m not in ("min-merge", "pwl-min-merge")],
    )
    def test_bucket_budget_respected(self, method):
        values = [((i * 53) % 307) for i in range(400)]
        hist = summarize(values, 8, method=method)
        assert len(hist) <= 8

    @pytest.mark.parametrize("method", ["min-merge", "pwl-min-merge"])
    def test_merge_family_uses_up_to_double(self, method):
        # The (1, 2) theorem trades bucket count for error: up to 2B buckets.
        values = [((i * 53) % 307) for i in range(400)]
        hist = summarize(values, 8, method=method)
        assert len(hist) <= 16

    @settings(max_examples=25)
    @given(streams, st.integers(1, 6))
    def test_default_method_guarantee(self, values, buckets):
        hist = summarize(values, buckets, epsilon=0.2)
        best = optimal_error(values, buckets)
        assert hist.max_error_against(values) <= max(
            1.2 * best, 0.5
        ) + 1e-9

    @settings(max_examples=15)
    @given(streams, st.integers(1, 5))
    def test_optimal_method_is_exact(self, values, buckets):
        hist = summarize(values, buckets, method="optimal")
        assert hist.error == optimal_error(values, buckets)

    def test_pwl_beats_serial_on_a_trend(self):
        values = [3 * i + (i % 2) for i in range(200)]
        serial = summarize(values, 4)
        pwl = summarize(values, 4, method="pwl")
        assert pwl.max_error_against(values) <= serial.max_error_against(values)


class TestNumpyCompatibility:
    def test_numpy_arrays_accepted(self):
        np = pytest.importorskip("numpy")
        values = np.arange(200, dtype=np.int64) % 37
        hist = summarize(values, 8)
        assert hist.coverage == 200

    def test_numpy_ints_in_streaming_classes(self):
        np = pytest.importorskip("numpy")
        from repro import MinMergeHistogram, MinIncrementHistogram

        values = (np.arange(300, dtype=np.int64) * 13) % 251
        mm = MinMergeHistogram(buckets=4)
        mm.extend(values)
        mi = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=251)
        mi.extend(values)
        assert mm.items_seen == mi.items_seen == 300
        listed = values.tolist()
        assert mm.error <= optimal_error(listed, 4)
