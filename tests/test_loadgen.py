"""Tests for the load harness (``repro.loadgen``).

Covers the pieces the CI ``load-slo`` gate trusts:

* nearest-rank percentile math (exact on tiny samples, no
  interpolation artifacts);
* the per-batch ledger -- candidate enumeration admits exactly the
  consistent interpretations (acked batches always present in order,
  ambiguous batches all-or-nothing), and refuses combinatorial blowup;
* :func:`verify_stream` -- accepts served state matching any candidate,
  rejects lost acknowledged appends and torn batches;
* a small live run against a real server: mixed transports, mixed
  methods, every stream verified bit-identical to ``summarize()``.
"""

import pytest

from repro.api import summarize
from repro.loadgen import (
    ACKED,
    AMBIGUOUS,
    BatchRecord,
    ClientResult,
    LoadGenerator,
    LoadVerificationError,
    ledger_candidates,
    percentile,
    stream_values,
    summarize_latencies,
    verify_report,
    verify_stream,
)
from repro.loadgen.harness import _segments_as_lists
from repro.service import StreamEngine, StreamServer


# -- latency math -------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank_on_small_samples(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50.0) == 2.0
        assert percentile(samples, 100.0) == 4.0
        assert percentile(samples, 0.0) == 1.0

    def test_p99_is_an_actual_sample(self):
        samples = sorted(float(i) for i in range(1000))
        assert percentile(samples, 99.0) in samples
        # Nearest rank: ceil(0.99 * 1000) = the 990th sample, index 989.
        assert percentile(samples, 99.0) == 989.0

    def test_empty_and_bounds(self):
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_summary_units_are_milliseconds(self):
        summary = summarize_latencies([0.001, 0.002, 0.003])
        assert summary.count == 3
        assert summary.p50_ms == pytest.approx(2.0)
        assert summary.max_ms == pytest.approx(3.0)
        assert summary.total_seconds == pytest.approx(0.006)
        assert summarize_latencies([]).count == 0


# -- deterministic workload ----------------------------------------------------


class TestStreamValues:
    def test_deterministic_and_universe_pinned(self):
        a = stream_values(7, 500, universe=4096)
        assert a == stream_values(7, 500, universe=4096)
        assert a[0] == 4095  # pins the oracle's inferred universe
        assert all(0 <= v < 4096 for v in a)
        assert stream_values(8, 500, universe=4096) != a


# -- ledger enumeration --------------------------------------------------------


def _batches(*statuses):
    return [
        BatchRecord(values=[10 * i, 10 * i + 1], status=status)
        for i, status in enumerate(statuses)
    ]


class TestLedgerCandidates:
    def test_all_acked_is_a_single_candidate(self):
        batches = _batches(ACKED, ACKED)
        (candidate,) = ledger_candidates(batches)
        assert candidate == ((), [0, 1, 10, 11])

    def test_ambiguous_batches_are_all_or_nothing(self):
        batches = _batches(ACKED, AMBIGUOUS, ACKED)
        candidates = dict(ledger_candidates(batches))
        assert set(candidates) == {(), (1,)}
        assert candidates[()] == [0, 1, 20, 21]
        # Included ambiguous batches keep their stream position.
        assert candidates[(1,)] == [0, 1, 10, 11, 20, 21]

    def test_two_ambiguous_gives_four_candidates(self):
        batches = _batches(AMBIGUOUS, ACKED, AMBIGUOUS)
        included = {inc for inc, _ in ledger_candidates(batches)}
        assert included == {(), (0,), (2,), (0, 2)}

    def test_refuses_combinatorial_blowup(self):
        batches = _batches(*([AMBIGUOUS] * 7))
        with pytest.raises(LoadVerificationError):
            ledger_candidates(batches)


# -- stream verification -------------------------------------------------------


def _result_from(seq, batches, *, buckets=8, method="min-merge"):
    oracle = summarize(seq, buckets, method=method)
    return ClientResult(
        stream="s",
        method=method,
        transport="json",
        batches=batches,
        served_segments=_segments_as_lists(oracle),
        served_error=oracle.error,
        served_items=len(seq),
    )


class TestVerifyStream:
    def test_accepts_exact_acked_replay(self):
        values = stream_values(0, 400, universe=512)
        batches = [
            BatchRecord(values=values[lo : lo + 100])
            for lo in range(0, 400, 100)
        ]
        info = verify_stream(_result_from(values, batches), buckets=8)
        assert info["items"] == 400
        assert info["ambiguous_included"] == []

    def test_accepts_ambiguous_batch_that_landed(self):
        values = stream_values(1, 300, universe=512)
        batches = [
            BatchRecord(values=values[0:100]),
            BatchRecord(values=values[100:200], status=AMBIGUOUS),
            BatchRecord(values=values[200:300]),
        ]
        # Server actually applied the ambiguous batch: full sequence.
        info = verify_stream(_result_from(values, batches), buckets=8)
        assert info["ambiguous_included"] == [1]

    def test_accepts_ambiguous_batch_that_vanished(self):
        values = stream_values(2, 300, universe=512)
        batches = [
            BatchRecord(values=values[0:100]),
            BatchRecord(values=values[100:200], status=AMBIGUOUS),
            BatchRecord(values=values[200:300]),
        ]
        applied = values[0:100] + values[200:300]
        info = verify_stream(_result_from(applied, batches), buckets=8)
        assert info["ambiguous_included"] == []

    def test_rejects_lost_acknowledged_batch(self):
        values = stream_values(3, 300, universe=512)
        batches = [
            BatchRecord(values=values[lo : lo + 100])
            for lo in range(0, 300, 100)
        ]
        # Served state is missing the middle *acked* batch: data loss.
        lost = values[0:100] + values[200:300]
        result = _result_from(lost, batches)
        with pytest.raises(LoadVerificationError):
            verify_stream(result, buckets=8)

    def test_rejects_torn_batch(self):
        values = stream_values(4, 200, universe=512)
        batches = [
            BatchRecord(values=values[0:100]),
            BatchRecord(values=values[100:200], status=AMBIGUOUS),
        ]
        # Half the ambiguous batch applied: violates batch atomicity.
        torn = values[0:150]
        with pytest.raises(LoadVerificationError):
            verify_stream(_result_from(torn, batches), buckets=8)

    def test_rejects_missing_final_state(self):
        result = ClientResult(stream="s", method="min-merge", transport="json")
        with pytest.raises(LoadVerificationError):
            verify_stream(result, buckets=8)


# -- live end-to-end -----------------------------------------------------------


class TestLiveLoad:
    def test_small_run_verifies_against_oracle(self):
        engine = StreamEngine(workers=0, max_pending=10_000_000)
        server = StreamServer(engine).start_in_background()
        try:
            generator = LoadGenerator(
                port=server.port,
                clients=8,
                batches_per_client=4,
                batch_size=50,
                buckets=8,
                universe=512,
            )
            report = generator.run()
            assert report.acked_items == 8 * 4 * 50
            assert report.ambiguous_batches == 0
            assert report.append.count == 8 * 4
            assert generator.batches_done == 8 * 4
            verified = verify_report(report, buckets=8)
            assert len(verified) == 8
            # Mixed transports and methods actually ran.
            assert {r.transport for r in report.per_client} == {
                "json",
                "binary",
            }
            assert {r.method for r in report.per_client} == {
                "min-merge",
                "min-increment",
            }
        finally:
            server.stop()
            engine.close()
