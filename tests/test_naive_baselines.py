"""Tests for the equi-width and greedy-split baselines."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.naive import equi_width_histogram, greedy_split_histogram
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_error

streams = st.lists(st.integers(0, 100), min_size=1, max_size=80)


class TestEquiWidth:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            equi_width_histogram([], 2)
        with pytest.raises(InvalidParameterError):
            equi_width_histogram([1], 0)

    def test_exact_split(self):
        hist = equi_width_histogram([0, 0, 10, 10], 2)
        assert [(s.beg, s.end) for s in hist] == [(0, 1), (2, 3)]
        assert hist.error == 0.0

    def test_more_buckets_than_values(self):
        hist = equi_width_histogram([5, 7], 10)
        assert len(hist) == 2
        assert hist.error == 0.0

    @given(streams, st.integers(1, 10))
    def test_covers_input_and_reports_true_error(self, values, buckets):
        hist = equi_width_histogram(values, buckets)
        assert hist.beg == 0
        assert hist.end == len(values) - 1
        assert hist.max_error_against(values) == pytest.approx(hist.error)

    @given(streams, st.integers(1, 8))
    def test_never_beats_optimal(self, values, buckets):
        hist = equi_width_histogram(values, buckets)
        assert hist.error >= optimal_error(values, buckets) - 1e-12


class TestGreedySplit:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            greedy_split_histogram([], 2)

    def test_plateaus_found(self):
        values = [0] * 10 + [50] * 10 + [100] * 10
        hist = greedy_split_histogram(values, 3)
        assert hist.error == 0.0

    @given(streams, st.integers(1, 10))
    def test_covers_input_within_budget(self, values, buckets):
        hist = greedy_split_histogram(values, buckets)
        assert len(hist) <= buckets
        assert hist.beg == 0
        assert hist.end == len(values) - 1
        assert hist.max_error_against(values) == pytest.approx(hist.error)

    @given(streams, st.integers(1, 8))
    def test_never_beats_optimal(self, values, buckets):
        hist = greedy_split_histogram(values, buckets)
        assert hist.error >= optimal_error(values, buckets) - 1e-12

    @given(streams)
    def test_usually_no_worse_than_equi_width_here(self, values):
        # Not a theorem -- just documents that splitting the worst bucket
        # is data-adaptive; on adversarial inputs it may lose, so we only
        # check it stays within the single-bucket error (sanity).
        single = optimal_error(values, 1)
        hist = greedy_split_histogram(values, 4)
        assert hist.error <= single + 1e-12
