"""HTTP/REST facade tests (``docs/REST.md``).

Pins the tentpole guarantees of the REST surface:

* REST, JSON, and binary clients hitting the same engine observe
  bit-identical histograms (and all match the one-shot ``summarize()``
  oracle) -- the facade is a view, not a fork.
* The unified error taxonomy maps to its fixed HTTP statuses
  (``backpressure`` -> 429 + ``Retry-After``, ``unknown-stream`` -> 404,
  malformed bodies -> 400, ``empty`` -> 409, wrong method -> 405).
* ``Idempotency-Key`` replays an acked append instead of double-applying.
* ``ServiceClient.from_url`` selects the transport family by scheme and
  the typed client API is identical over REST.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

np = pytest.importorskip("numpy")

from repro.api import summarize
from repro.exceptions import BackpressureError, InvalidParameterError
from repro.service import (
    HttpFrontend,
    ServiceClient,
    StreamEngine,
    StreamServer,
)
from repro.service.errors import (
    EmptyStreamError,
    ServiceError,
    UnknownStreamError,
)
from repro.service.http import PROTO_HTTP


@pytest.fixture()
def stack():
    """One engine fronted by both a TCP server and the REST facade."""
    engine = StreamEngine()
    server = StreamServer(engine).start_in_background()
    front = HttpFrontend(engine, cluster=None).start_in_background()
    try:
        yield engine, server, front
    finally:
        front.stop()
        server.stop()
        engine.close()


def _raw(front, method, path, body=None, headers=None):
    """One raw HTTP round trip; returns (status, headers, decoded body)."""
    conn = http.client.HTTPConnection("127.0.0.1", front.port, timeout=10.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), json.loads(data)
    finally:
        conn.close()


def _segments(histogram):
    return [[s.beg, s.end, s.left, s.right] for s in histogram.segments]


class TestRestSurface:
    def test_meta_reports_capability_matrix(self, stack):
        _engine, _server, front = stack
        status, _headers, body = _raw(front, "GET", "/v1/meta")
        assert status == 200 and body["ok"]
        assert body["server"]["name"] == "repro-histogram"
        assert body["server"]["protocols"] == [PROTO_HTTP]
        assert body["server"]["cluster"] is False
        from repro import api

        assert body["methods"] == api.methods()
        assert any("append" in e for e in body["endpoints"])

    def test_json_append_query_stats_checkpointless(self, stack):
        _engine, _server, front = stack
        values = [4095.0] + [float(i % 4096) for i in range(499)]
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/-/sku-1:append?method=min-merge&buckets=16",
            body=json.dumps(values),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200 and body["accepted"] == 500
        status, _h, body = _raw(
            front, "GET", "/v1/streams/-/sku-1/histogram?drain=1"
        )
        assert status == 200
        oracle = summarize(values, 16, method="min-merge")
        served = body["histogram"]
        assert served["error"] == oracle.error
        status, _h, body = _raw(front, "GET", "/v1/streams/-/sku-1/stats")
        assert status == 200 and body["stats"]["items_seen"] == 500
        status, _h, body = _raw(front, "GET", "/v1/streams")
        assert body["streams"] == ["sku-1"]

    def test_json_object_body_carries_config(self, stack):
        _engine, _server, front = stack
        document = {"values": [1, 2, 3], "method": "min-merge", "buckets": 4}
        status, _h, body = _raw(
            front, "POST", "/v1/streams/-/obj:append", body=json.dumps(document)
        )
        assert status == 200 and body["accepted"] == 3

    def test_tenant_prefix_addresses_namespaced_stream(self, stack):
        engine, _server, front = stack
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/acme/sku:append?method=min-merge&buckets=4",
            body=json.dumps([1.0, 2.0]),
        )
        assert status == 200
        assert body["stream"] == "acme/sku"
        assert "acme/sku" in engine.streams()

    def test_octet_stream_append_is_bit_identical_across_transports(
        self, stack
    ):
        """REST raw-float64, binary TCP, and the oracle all agree."""
        _engine, server, front = stack
        values = np.asarray(
            [4095.0] + [float((37 * j) % 4096) for j in range(1, 800)]
        )
        half = len(values) // 2
        # First half over REST as raw little-endian float64 bytes ...
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/-/mix:append?method=min-merge&buckets=16",
            body=values[:half].tobytes(),
            headers={"Content-Type": "application/octet-stream"},
        )
        assert status == 200 and body["accepted"] == half
        # ... second half over the negotiated binary TCP transport.
        with ServiceClient(port=server.port) as tcp:
            assert tcp.info.proto == 2
            assert tcp.append("mix", values[half:]).accepted == len(values) - half
            via_tcp = tcp.query("mix", drain=True).histogram
        with ServiceClient.from_url(f"http://127.0.0.1:{front.port}") as rest:
            via_rest = rest.query("mix", drain=True).histogram
        oracle = summarize(values, 16, method="min-merge")
        assert _segments(via_rest) == _segments(via_tcp) == _segments(oracle)
        assert via_rest.error == via_tcp.error == oracle.error

    def test_checkpoint_routes(self, stack, tmp_path):
        engine = StreamEngine(checkpoint_dir=tmp_path)
        front = HttpFrontend(engine).start_in_background()
        try:
            _raw(
                front,
                "POST",
                "/v1/streams/-/d:append?method=min-merge&buckets=4",
                body=json.dumps([1, 2, 3]),
            )
            status, _h, body = _raw(
                front, "POST", "/v1/streams/-/d:checkpoint"
            )
            assert status == 200 and body["generations"]["d"] >= 1
            status, _h, body = _raw(front, "POST", "/v1/streams:checkpoint")
            assert status == 200 and "d" in body["generations"]
        finally:
            front.stop()
            engine.close()


class TestErrorMapping:
    def test_unknown_stream_is_404(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(front, "GET", "/v1/streams/-/nope/histogram")
        assert status == 404
        assert body == {
            "ok": False,
            "error": "unknown-stream",
            "message": body["message"],
        }
        assert "nope" in body["message"]

    def test_unknown_route_is_404_unknown_op(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(front, "GET", "/v1/does-not-exist")
        assert status == 404 and body["error"] == "unknown-op"

    def test_method_mismatch_is_405_with_allow(self, stack):
        _engine, _server, front = stack
        status, headers, body = _raw(front, "GET", "/v1/streams/-/x:append")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert body["error"] == "bad-request"

    def test_malformed_json_body_is_400(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(
            front, "POST", "/v1/streams/-/x:append", body=b"not json"
        )
        assert status == 400 and body["error"] == "bad-request"

    def test_ragged_octet_stream_is_400(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/-/x:append",
            body=b"\x00" * 11,  # not a whole number of float64s
            headers={"Content-Type": "application/octet-stream"},
        )
        assert status == 400 and body["error"] == "bad-request"

    def test_non_finite_values_rejected_400(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/-/x:append?method=min-merge&buckets=4",
            body=json.dumps([1.0, float("inf")]).replace("Infinity", "1e999"),
        )
        assert status == 400

    def test_empty_stream_is_409(self, stack):
        _engine, _server, front = stack
        _raw(
            front,
            "POST",
            "/v1/streams/-/e:append?method=min-merge&buckets=4",
            body=json.dumps([]),
        )
        status, _h, body = _raw(front, "GET", "/v1/streams/-/e/histogram")
        assert status == 409 and body["error"] == "empty"

    def test_cluster_routes_404_on_single_server(self, stack):
        _engine, _server, front = stack
        status, _h, body = _raw(front, "GET", "/v1/cluster")
        assert status == 404 and body["error"] == "unknown-op"

    def test_backpressure_is_429_with_retry_after(self):
        gate = threading.Event()
        engine = StreamEngine(
            workers=1, max_pending=10, apply_hook=lambda s, n: gate.wait(10)
        )
        front = HttpFrontend(engine).start_in_background()
        try:
            _raw(
                front,
                "POST",
                "/v1/streams/-/b:append?method=min-merge&buckets=4",
                body=json.dumps(list(range(8))),
            )
            status, headers, body = _raw(
                front,
                "POST",
                "/v1/streams/-/b:append",
                body=json.dumps(list(range(8))),
            )
            assert status == 429
            assert body["error"] == "backpressure"
            assert headers["Retry-After"] == "1"
        finally:
            gate.set()
            front.stop()
            engine.close()


class TestIdempotencyKey:
    def test_replay_returns_cached_ack_without_reapplying(self, stack):
        engine, _server, front = stack
        headers = {"Idempotency-Key": "batch-7"}
        status, h1, body1 = _raw(
            front,
            "POST",
            "/v1/streams/-/idem:append?method=min-merge&buckets=4",
            body=json.dumps([1, 2, 3]),
            headers=headers,
        )
        assert status == 200 and body1["accepted"] == 3
        assert "Idempotency-Replayed" not in h1
        status, h2, body2 = _raw(
            front,
            "POST",
            "/v1/streams/-/idem:append?method=min-merge&buckets=4",
            body=json.dumps([1, 2, 3]),
            headers=headers,
        )
        assert status == 200
        assert h2["Idempotency-Replayed"] == "true"
        assert body2["accepted"] == 3
        engine.drain()
        assert engine.items_seen("idem") == 3  # applied once, not twice

    def test_failed_append_is_not_cached(self, stack):
        engine, _server, front = stack
        headers = {"Idempotency-Key": "k1"}
        status, _h, _b = _raw(
            front, "POST", "/v1/streams/-/f:append",
            body=b"not json", headers=headers,
        )
        assert status == 400
        status, _h, body = _raw(
            front,
            "POST",
            "/v1/streams/-/f:append?method=min-merge&buckets=4",
            body=json.dumps([5]),
            headers=headers,
        )
        assert status == 200 and body["accepted"] == 1


class TestTypedClientOverRest:
    def test_from_url_schemes(self, stack):
        _engine, server, front = stack
        with ServiceClient.from_url(f"tcp://127.0.0.1:{server.port}") as c:
            assert c.info.proto == 2
        with ServiceClient.from_url(
            f"tcp://127.0.0.1:{server.port}?transport=json"
        ) as c:
            assert c.info.proto == 1
        with ServiceClient.from_url(f"127.0.0.1:{server.port}") as c:
            assert c.info.proto == 2  # bare host:port counts as tcp://
        with ServiceClient.from_url(f"http://127.0.0.1:{front.port}") as c:
            assert c.info.proto == PROTO_HTTP
            assert c.info.server == "repro-histogram"
        with pytest.raises(InvalidParameterError):
            ServiceClient.from_url("ftp://127.0.0.1:1")
        with pytest.raises(InvalidParameterError):
            ServiceClient.from_url("http://127.0.0.1")  # no port

    def test_typed_methods_and_errors_over_rest(self, stack):
        _engine, _server, front = stack
        client = ServiceClient.from_url(f"http://127.0.0.1:{front.port}")
        try:
            assert client.ping()
            result = client.append(
                "t", np.arange(10.0), method="min-merge", buckets=4
            )
            assert result.accepted == 10
            assert client.query("t", drain=True).histogram.meta.items_seen == 10
            assert client.stats("t")["items_seen"] == 10
            assert client.streams() == ("t",)
            with pytest.raises(UnknownStreamError) as excinfo:
                client.query("missing")
            assert excinfo.value.code == "unknown-stream"
            client.append("e2", [], method="min-merge", buckets=4)
            with pytest.raises(EmptyStreamError):
                client.query("e2")
            with pytest.raises(ServiceError) as excinfo:
                client.checkpoint("t")  # no checkpoint store
            assert excinfo.value.code == "invalid"
            with pytest.raises(TypeError, match="transport.call"):
                client.request({"op": "streams"})
        finally:
            client.close()

    def test_close_is_idempotent_over_every_scheme(self, stack):
        _engine, server, front = stack
        for url in (
            f"tcp://127.0.0.1:{server.port}",
            f"http://127.0.0.1:{front.port}",
        ):
            client = ServiceClient.from_url(url)
            client.close()
            client.close()  # second close is a no-op


class TestSessionErgonomics:
    def test_stream_handle_context_manager_checkpoints(self, tmp_path):
        from repro.service import Session

        with Session(checkpoint_dir=tmp_path) as session:
            with session.stream("cm", method="min-merge", buckets=4) as handle:
                handle.append([1.0, 2.0, 3.0])
                session.engine.drain()
            # __exit__ checkpointed the durable stream.
            stats = session.stats()
            assert stats["streams"]["cm"]["checkpoints"] >= 1
            handle.close()  # idempotent

    def test_session_close_is_idempotent(self):
        from repro.service import Session

        session = Session()
        session.stream("x", method="min-merge", buckets=4)
        session.close()
        session.close()

    def test_backpressure_error_typed_over_rest(self):
        gate = threading.Event()
        engine = StreamEngine(
            workers=1, max_pending=10, apply_hook=lambda s, n: gate.wait(10)
        )
        front = HttpFrontend(engine).start_in_background()
        try:
            client = ServiceClient.from_url(f"http://127.0.0.1:{front.port}")
            client.append("bp", list(range(8)), method="min-merge", buckets=4)
            with pytest.raises(BackpressureError):
                client.append("bp", list(range(8)))
            client.close()
        finally:
            gate.set()
            front.stop()
            engine.close()
