"""Tests for the offline (near-)optimal PWL histogram."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_error
from repro.offline.optimal_pwl import (
    min_pwl_buckets_for_error,
    optimal_pwl_error,
    optimal_pwl_histogram,
)

streams = st.lists(st.integers(0, 60), min_size=1, max_size=50)


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            optimal_pwl_error([], 2)

    def test_bad_buckets(self):
        with pytest.raises(InvalidParameterError):
            optimal_pwl_error([1], 0)

    def test_bad_tol(self):
        with pytest.raises(InvalidParameterError):
            optimal_pwl_error([1, 2], 1, tol=0.0)

    def test_negative_error(self):
        with pytest.raises(InvalidParameterError):
            min_pwl_buckets_for_error([1], -1.0)


class TestMinBuckets:
    def test_empty(self):
        assert min_pwl_buckets_for_error([], 1.0) == 0

    def test_collinear_run_is_one_bucket(self):
        assert min_pwl_buckets_for_error([2 * i for i in range(30)], 0.0) == 1

    def test_vee_needs_two_buckets_at_zero_error(self):
        values = [10 - i for i in range(10)] + [i for i in range(10)]
        assert min_pwl_buckets_for_error(values, 0.0) == 2

    @given(streams)
    def test_monotone_in_error(self, values):
        counts = [
            min_pwl_buckets_for_error(values, e) for e in (0.0, 1.0, 5.0, 30.0)
        ]
        assert counts == sorted(counts, reverse=True)

    @given(streams, st.sampled_from([0.0, 1.0, 3.0]))
    def test_never_more_than_serial(self, values, error):
        """A line generalizes a constant, so PWL needs <= serial buckets."""
        from repro.offline.optimal import min_buckets_for_error

        assert min_pwl_buckets_for_error(values, error) <= (
            min_buckets_for_error(values, error)
        )


class TestOptimalPwlError:
    def test_pairs_fit_exactly(self):
        # ceil(n/2) buckets always reach zero error.
        assert optimal_pwl_error([5, 9, 1, 7], 2) == 0.0

    def test_constant_stream(self):
        assert optimal_pwl_error([4] * 30, 1) == 0.0

    def test_linear_stream(self):
        assert optimal_pwl_error(list(range(50)), 1) == 0.0

    @settings(max_examples=25)
    @given(streams, st.integers(1, 4))
    def test_result_is_achievable_and_near_optimal(self, values, buckets):
        tol = 1e-3
        error = optimal_pwl_error(values, buckets, tol=tol)
        # Achievable: the greedy partition at this error fits the budget.
        assert min_pwl_buckets_for_error(values, error + 1e-9) <= buckets
        # Near-optimal: a meaningfully smaller error needs more buckets.
        if error > 2 * tol:
            assert min_pwl_buckets_for_error(values, error - 2 * tol) >= buckets

    @settings(max_examples=25)
    @given(streams, st.integers(1, 4))
    def test_at_most_serial_optimum(self, values, buckets):
        pwl = optimal_pwl_error(values, buckets, tol=1e-4)
        serial = optimal_error(values, buckets)
        assert pwl <= serial + 1e-3


class TestOptimalPwlHistogram:
    @settings(max_examples=20)
    @given(streams, st.integers(1, 4))
    def test_histogram_is_feasible(self, values, buckets):
        hist = optimal_pwl_histogram(values, buckets, tol=1e-4)
        assert len(hist) <= max(buckets, 1)
        measured = hist.max_error_against(values)
        assert measured <= hist.error + 1e-9

    def test_linear_histogram_single_segment(self):
        hist = optimal_pwl_histogram([3 * i for i in range(40)], 1)
        assert len(hist) == 1
        assert hist[0].slope == pytest.approx(3.0)
