"""Tests for plain-text series rendering."""

from __future__ import annotations

from repro.harness.experiments import ExperimentSeries
from repro.harness.reporting import render_series


def _series() -> ExperimentSeries:
    return ExperimentSeries(
        name="demo",
        title="Demo series",
        x="buckets",
        columns=["buckets", "alpha", "beta"],
        rows=[
            {"buckets": 16, "alpha": 123.456, "beta": 1_000_000},
            {"buckets": 32, "alpha": 0.00123, "beta": None},
        ],
    )


class TestRenderSeries:
    def test_title_and_header_present(self):
        text = render_series(_series())
        assert "Demo series" in text
        assert "buckets" in text
        assert "alpha" in text

    def test_none_renders_as_dash(self):
        lines = render_series(_series()).splitlines()
        assert lines[-1].endswith("-")

    def test_thousands_separators(self):
        assert "1,000,000" in render_series(_series())

    def test_small_floats_keep_precision(self):
        assert "0.00123" in render_series(_series())

    def test_multiple_series_blocks(self):
        text = render_series([_series(), _series()])
        assert text.count("Demo series") == 2

    def test_columns_aligned(self):
        lines = render_series(_series()).splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_empty_rows_render_header_only(self):
        series = ExperimentSeries(
            name="empty", title="Empty", x="x", columns=["x"], rows=[]
        )
        text = render_series(series)
        assert "Empty" in text

    def test_column_accessor(self):
        series = _series()
        assert series.column("buckets") == [16, 32]
