"""Batch ingestion (``repro.core.batch``): exact batch/scalar equivalence.

The vectorized ``extend()`` overrides promise byte-identical summary state
to the scalar ``insert()`` loop.  These tests drive every registered
algorithm over randomized streams through both paths and compare full
bucket state, plus the ``insert_run`` primitive, checkpointing mid-batch,
observability batching semantics, and partial-ingest domain errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import checkpoint
from repro.core.batch import absorbable_prefix, as_batch_array, greedy_chunk
from repro.core.bucket import Bucket
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.exceptions import DomainError, InvalidParameterError
from repro.harness.runner import ALGORITHM_NAMES, make_algorithm

UNIVERSE = 1 << 10


def make(name: str, **overrides):
    kwargs = {
        "buckets": 6,
        "epsilon": 0.4,
        "universe": UNIVERSE,
        "window": 96,
        "hull_epsilon": 0.1,
    }
    kwargs.update(overrides)
    return make_algorithm(name, **kwargs)


def stream(seed: int, n: int = 900) -> np.ndarray:
    """A mixed stream: smooth walk, then noise, then constants."""
    rng = np.random.default_rng(seed)
    walk = np.clip(np.cumsum(rng.integers(-3, 4, n // 3)) + 500, 0, UNIVERSE - 1)
    noise = rng.integers(0, UNIVERSE, n // 3)
    flat = np.full(n - 2 * (n // 3), 7)
    return np.concatenate([walk, noise, flat]).astype(np.int64)


def state_of(summary):
    """Full observable bucket state, independent of the ingest path."""
    out = [summary.items_seen]
    if hasattr(summary, "buckets_snapshot"):
        for b in summary.buckets_snapshot():
            out.append((b.beg, b.end))
    try:
        hist = summary.histogram()
    except TypeError:
        # REHIST materializes histograms only from the original values.
        hist = None
    if hist is not None:
        out.append([(s.beg, s.end, s.left, s.right) for s in hist])
        out.append(hist.error)
    else:
        out.append(summary.error)
    out.append(summary.memory_bytes())
    return out


class TestEquivalenceAllAlgorithms:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar(self, name, seed):
        data = stream(seed)
        scalar = make(name)
        for v in data.tolist():
            scalar.insert(v)
        batched = make(name)
        batched.extend(data)
        assert state_of(scalar) == state_of(batched)

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_list_and_ndarray_inputs_agree(self, name):
        data = stream(3)
        via_list = make(name)
        via_list.extend(data.tolist())
        via_array = make(name)
        via_array.extend(data)
        assert state_of(via_list) == state_of(via_array)

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_split_batches_match_one_batch(self, name):
        data = stream(4)
        whole = make(name)
        whole.extend(data)
        split = make(name)
        split.extend(data[:301])
        split.extend(data[301:].tolist())
        assert state_of(whole) == state_of(split)

    def test_exact_hull_pwl_min_merge_fast_path(self):
        # hull_epsilon=None engages the PWL min-merge vectorized path.
        data = stream(5)
        scalar = make("pwl-min-merge", hull_epsilon=None)
        for v in data.tolist():
            scalar.insert(v)
        batched = make("pwl-min-merge", hull_epsilon=None)
        batched.extend(data)
        assert state_of(scalar) == state_of(batched)

    def test_min_merge_heap_stays_consistent_after_batch(self):
        summary = MinMergeHistogram(buckets=5)
        summary.extend(stream(6))
        summary.check_heap_consistency()
        summary.check_min_merge_property()

    def test_buffered_min_increment_batch(self):
        data = stream(7)
        scalar = MinIncrementHistogram(5, 0.4, UNIVERSE, batch_size=7)
        for v in data.tolist():
            scalar.insert(v)
        batched = MinIncrementHistogram(5, 0.4, UNIVERSE, batch_size=7)
        batched.extend(data)
        assert scalar.items_seen == batched.items_seen
        assert scalar._buffer == batched._buffer
        assert state_of(scalar) == state_of(batched)

    def test_float_streams(self):
        rng = np.random.default_rng(8)
        data = rng.random(500) * (UNIVERSE - 1)
        scalar = MinMergeHistogram(buckets=4)
        for v in data.tolist():
            scalar.insert(v)
        batched = MinMergeHistogram(buckets=4)
        batched.extend(data)
        assert state_of(scalar) == state_of(batched)


class TestMidBatchCheckpoint:
    """A checkpoint taken between batches restores and continues exactly."""

    @pytest.mark.parametrize(
        "name", ["min-merge", "min-increment", "sliding-window"]
    )
    def test_checkpoint_between_batches(self, name):
        data = stream(9)
        summary = make(name, hull_epsilon=None)
        summary.extend(data[:450])
        restored = checkpoint.restore(checkpoint.state_dict(summary))
        summary.extend(data[450:])
        restored.extend(data[450:])
        assert state_of(summary) == state_of(restored)

    def test_restored_min_merge_batches_like_scalar(self):
        data = stream(10)
        summary = MinMergeHistogram(buckets=5)
        summary.extend(data[:450])
        restored = checkpoint.restore(checkpoint.state_dict(summary))
        for v in data[450:].tolist():
            restored.insert(v)
        summary.extend(data[450:])
        assert state_of(summary) == state_of(restored)
        restored.check_heap_consistency()


class TestInsertRun:
    def test_bucket_insert_run_extends_bounds(self):
        bucket = Bucket.singleton(0, 5)
        bucket.insert_run(1, 4, 2, 9)
        assert (bucket.beg, bucket.end, bucket.min, bucket.max) == (0, 4, 2, 9)

    def test_bucket_insert_run_rejects_gaps(self):
        bucket = Bucket.singleton(0, 5)
        with pytest.raises(InvalidParameterError):
            bucket.insert_run(2, 4, 2, 9)

    def test_greedy_insert_run_open_bucket(self):
        summary = GreedyInsertSummary(10.0)
        summary.insert(5)
        assert summary.insert_run(1, 8, 3, 12)
        assert summary.bucket_count == 1
        assert summary.items_seen == 9

    def test_greedy_insert_run_refuses_oversized(self):
        summary = GreedyInsertSummary(2.0)
        summary.insert(5)
        before = summary.buckets_snapshot()
        assert not summary.insert_run(1, 8, 0, 100)
        assert summary.buckets_snapshot() == before
        assert summary.items_seen == 1

    def test_min_merge_insert_run_absorbs_cheap_run(self):
        summary = MinMergeHistogram(buckets=2)
        for v in [0, 100, 0, 100, 50, 50]:
            summary.insert(v)
        assert summary.insert_run(6, 9, 50, 50)
        assert summary.items_seen == 10
        summary.check_heap_consistency()

    def test_min_increment_insert_run_all_levels_or_nothing(self):
        summary = MinIncrementHistogram(4, 0.4, UNIVERSE)
        summary.insert(100)
        before = state_of(summary)
        # A run spanning the whole universe cannot fit the finest level.
        assert not summary.insert_run(1, 3, 0, UNIVERSE - 1)
        assert state_of(summary) == before
        # A constant run fits every level, including the zero level.
        assert summary.insert_run(1, 3, 100, 100)
        assert summary.items_seen == 4


class TestKernels:
    def test_as_batch_array_passes_ndarray_through(self):
        arr = np.arange(5)
        assert as_batch_array(arr) is arr

    def test_as_batch_array_rejects_non_batchable(self):
        assert as_batch_array(iter([1, 2])) is None
        assert as_batch_array(np.array([[1, 2]])) is None
        assert as_batch_array(np.array([1.0, np.nan])) is None
        assert as_batch_array(["a", "b"]) is None
        assert as_batch_array(np.array([True, False])) is None

    def test_absorbable_prefix_matches_scalar_boundary(self):
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 100, 200)
        target = 20.0
        j, lo, hi = absorbable_prefix(arr, arr, 0, 50, 50, target)
        # Scalar replay of the same greedy rule.
        slo = shi = 50
        k = 0
        while k < len(arr):
            v = int(arr[k])
            nlo, nhi = min(slo, v), max(shi, v)
            if (nhi - nlo) / 2.0 > target:
                break
            slo, shi = nlo, nhi
            k += 1
        assert (j, lo, hi) == (k, slo, shi)

    def test_greedy_chunk_stop_after_consumes_partially(self):
        arr = np.array([0, 100, 0, 100, 0, 100, 0, 100])
        closed = []
        open_, consumed = greedy_chunk(
            arr, 0, None, closed.append, 1.0, stop_after=2, bucket_count=0
        )
        assert consumed < len(arr)
        assert len(closed) + 1 > 2


class TestObservabilityBatching:
    def test_one_insert_event_per_batch(self):
        data = stream(12)
        summary = MinMergeHistogram(buckets=5, metrics=True)
        summary.extend(data)
        assert summary.metrics.inserts.value == len(data)
        # One aggregated latency sample, not one per item.
        assert summary.metrics.insert_latency.count == 1

    def test_batch_counters_match_scalar_counters(self):
        data = stream(13)
        scalar = MinMergeHistogram(buckets=5, metrics=True)
        for v in data.tolist():
            scalar.insert(v)
        batched = MinMergeHistogram(buckets=5, metrics=True)
        batched.extend(data)
        assert scalar.metrics.inserts.value == batched.metrics.inserts.value
        assert scalar.metrics.merges.value == batched.metrics.merges.value

    def test_sliding_window_eviction_counts_match(self):
        data = stream(14)
        scalar = make("sliding-window", metrics=True)
        for v in data.tolist():
            scalar.insert(v)
        batched = make("sliding-window", metrics=True)
        batched.extend(data)
        assert (
            scalar.metrics.evictions.value == batched.metrics.evictions.value
        )


class TestDomainErrors:
    def test_batch_ingests_prefix_before_offender(self):
        summary = MinIncrementHistogram(4, 0.4, UNIVERSE)
        data = np.array([1, 2, 3, UNIVERSE + 5, 4])
        with pytest.raises(DomainError):
            summary.extend(data)
        # Scalar semantics: everything before the offender was ingested.
        assert summary.items_seen == 3

    def test_sliding_window_batch_domain_error(self):
        summary = make("sliding-window")
        with pytest.raises(DomainError):
            summary.extend(np.array([1, 2, -1, 4]))
        assert summary.items_seen == 2


class TestApiNdarray:
    def test_summarize_accepts_ndarray_without_copy(self):
        from repro import summarize

        data = np.random.default_rng(15).integers(0, 500, 2000)
        hist_arr = summarize(data, buckets=8)
        hist_list = summarize(data.tolist(), buckets=8)
        assert [(s.beg, s.end) for s in hist_arr] == [
            (s.beg, s.end) for s in hist_list
        ]
        assert hist_arr.error == hist_list.error

    def test_summarize_ndarray_universe_is_vectorized(self):
        data = np.array([3, 1, 4, 1, 5])
        from repro.api import _universe_for

        assert _universe_for(data) == 6
