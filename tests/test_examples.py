"""Every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

pytestmark = pytest.mark.slow


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_has_at_least_three_scripts():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3


def test_quickstart():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "optimal-32 error" in result.stdout


def test_sensor_network_monitoring():
    result = _run("sensor_network_monitoring.py")
    assert result.returncode == 0, result.stderr
    assert "peak summary memory" in result.stdout


def test_timeseries_similarity():
    result = _run("timeseries_similarity.py")
    assert result.returncode == 0, result.stderr
    assert "true nearest neighbour" in result.stdout


def test_trend_compression_pwl():
    result = _run("trend_compression_pwl.py")
    assert result.returncode == 0, result.stderr
    assert "improvement" in result.stdout


def test_fleet_operations():
    result = _run("fleet_operations.py")
    assert result.returncode == 0, result.stderr
    assert "restored plant-a resumed cleanly" in result.stdout
    assert "reconstruction" in result.stdout


def test_in_network_aggregation():
    result = _run("in_network_aggregation.py")
    assert result.returncode == 0, result.stderr
    assert "preserved both the bound and the events" in result.stdout


def test_capacity_planning():
    result = _run("capacity_planning.py")
    assert result.returncode == 0, result.stderr
    assert "recommended:" in result.stdout


def test_compare_algorithms():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "compare_algorithms.py"),
            "brownian",
            "2048",
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "min-merge" in result.stdout
    assert "rehist" in result.stdout
