"""Tests for the sliding-window MIN-INCREMENT (Theorem 5, Lemmas 3-4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sliding_window import (
    SlidingWindowMinIncrement,
    _WindowedGreedySummary,
)
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.offline.optimal import min_buckets_for_error, optimal_error

UNIVERSE = 1024
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=250)


class TestConstruction:
    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowMinIncrement(
                buckets=4, epsilon=0.2, universe=UNIVERSE, window=0
            )

    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowMinIncrement(
                buckets=0, epsilon=0.2, universe=UNIVERSE, window=10
            )

    def test_empty_raises(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=10
        )
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_domain_check(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=10
        )
        with pytest.raises(DomainError):
            summary.insert(UNIVERSE)


class TestWindowSemantics:
    def test_window_start_tracks_stream(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=5
        )
        for i in range(3):
            summary.insert(i)
        assert summary.window_start == 0
        for i in range(10):
            summary.insert(i)
        assert summary.window_start == 13 - 5

    def test_histogram_covers_exactly_the_window(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=20
        )
        for i in range(100):
            summary.insert((i * 7) % UNIVERSE)
        hist = summary.histogram()
        assert hist.beg == 80
        assert hist.end == 99

    def test_old_values_do_not_constrain_window(self):
        # A wild prefix followed by a constant window: the histogram of the
        # window must be (near) exact despite the noisy past.
        summary = SlidingWindowMinIncrement(
            buckets=2, epsilon=0.2, universe=UNIVERSE, window=50
        )
        for i in range(200):
            summary.insert((i * 389) % UNIVERSE)
        for _ in range(50):
            summary.insert(77)
        hist = summary.histogram()
        assert hist.max_error_against([77] * 50) == 0.0


class TestGuarantee:
    @given(streams, st.integers(1, 6), st.integers(4, 64))
    def test_theorem5_guarantee(self, values, buckets, window):
        """(1 + eps, 1 + 1/B): <= B + 1 buckets, error <= (1+eps) * opt."""
        epsilon = 0.2
        summary = SlidingWindowMinIncrement(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE, window=window
        )
        summary.extend(values)
        hist = summary.histogram()
        tail = values[-window:]
        assert len(hist) <= buckets + 1
        best = optimal_error(tail, buckets)
        assert hist.max_error_against(tail) <= (1.0 + epsilon) * best + 1e-9

    @given(streams)
    def test_window_larger_than_stream_sees_everything(self, values):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=10_000
        )
        summary.extend(values)
        hist = summary.histogram()
        assert hist.beg == 0
        assert hist.end == len(values) - 1


class TestLemma4:
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=120),
        st.sampled_from([0.0, 1.0, 4.0, 10.0]),
        st.integers(4, 40),
    )
    def test_greedy_window_uses_at_most_opt_plus_one(self, values, error, window):
        """Lemma 4: windowed GREEDY-INSERT <= optimal(window, e) + 1 buckets."""
        summary = _WindowedGreedySummary(error)
        for i, v in enumerate(values):
            summary.insert(i, v)
            summary.expire(max(0, i + 1 - window))
        tail = values[-window:]
        optimal = min_buckets_for_error(tail, error)
        assert summary.bucket_count <= optimal + 1


class TestMemory:
    def test_memory_independent_of_window_size(self):
        """Theorem 5's headline: memory does not grow with w."""
        stream = [((i * 211) % UNIVERSE) for i in range(3000)]
        memories = []
        for window in (50, 200, 800, 2900):
            summary = SlidingWindowMinIncrement(
                buckets=8, epsilon=0.2, universe=UNIVERSE, window=window
            )
            summary.extend(stream)
            memories.append(summary.memory_bytes())
        # All within a small constant of each other -- no Theta(w) growth.
        assert max(memories) <= 2 * min(memories)

    def test_per_level_bucket_cap_enforced(self):
        summary = SlidingWindowMinIncrement(
            buckets=3, epsilon=0.2, universe=UNIVERSE, window=500
        )
        for i in range(2000):
            summary.insert((i * 389) % UNIVERSE)
            for level in summary._summaries:
                assert level.bucket_count <= summary.target_buckets + 1


class TestLemma3Demonstration:
    def test_exact_window_optimum_needs_window_memory(self):
        """The adversarial idea behind Lemma 3's Omega(w) lower bound.

        Two streams that agree on their last w - 1 values but differ at the
        start of the window have different optimal-B errors; any summary
        answering *exactly* must therefore distinguish all value choices at
        expiring positions -- which takes Omega(w) state.  We demonstrate
        the error gap the adversary exploits.
        """
        window = 8
        common_tail = [10, 10, 10, 10, 500, 500, 500]
        stream_a = [10] + common_tail  # window is two flat plateaus
        stream_b = [500] + common_tail  # window starts with a spike
        assert optimal_error(stream_a, 2) == 0.0
        assert optimal_error(stream_b, 2) > 0.0
        assert len(stream_a) == window
