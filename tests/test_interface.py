"""Conformance tests for the unified StreamingSummary protocol."""

from __future__ import annotations

import warnings

import pytest

from repro import summarize
from repro.baselines.rehist import RehistHistogram
from repro.core import DEFAULT_HULL_EPSILON, StreamingSummary, conforms
from repro.core.error_ladder import ErrorLadder
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.interface import missing_members
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import (
    PwlGreedyInsertSummary,
    PwlMinIncrementHistogram,
)
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.exceptions import InvalidParameterError
from repro.fleet import StreamFleet
from repro.l2.merge import L2MergeHistogram
from repro.relative.algorithms import (
    RelativeMinIncrementHistogram,
    RelativeMinMergeHistogram,
)

U = 1 << 12

# (class, factory) for every public summary type the protocol covers.
SUMMARY_FACTORIES = [
    (MinMergeHistogram, lambda: MinMergeHistogram(buckets=4)),
    (
        MinIncrementHistogram,
        lambda: MinIncrementHistogram(buckets=4, epsilon=0.2, universe=U),
    ),
    (GreedyInsertSummary, lambda: GreedyInsertSummary(target_error=2.0)),
    (PwlMinMergeHistogram, lambda: PwlMinMergeHistogram(buckets=4)),
    (
        PwlMinIncrementHistogram,
        lambda: PwlMinIncrementHistogram(buckets=4, epsilon=0.2, universe=U),
    ),
    (
        PwlGreedyInsertSummary,
        lambda: PwlGreedyInsertSummary(target_error=2.0),
    ),
    (
        SlidingWindowMinIncrement,
        lambda: SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=U, window=32
        ),
    ),
    (
        SlidingWindowPwlMinIncrement,
        lambda: SlidingWindowPwlMinIncrement(
            buckets=4, epsilon=0.2, universe=U, window=32
        ),
    ),
    (
        RehistHistogram,
        lambda: RehistHistogram(buckets=4, epsilon=0.2, universe=U),
    ),
    (
        RelativeMinMergeHistogram,
        lambda: RelativeMinMergeHistogram(buckets=4),
    ),
    (
        RelativeMinIncrementHistogram,
        lambda: RelativeMinIncrementHistogram(buckets=4, epsilon=0.2, universe=U),
    ),
    (L2MergeHistogram, lambda: L2MergeHistogram(buckets=4)),
    (StreamFleet, lambda: StreamFleet(buckets=4)),
]

IDS = [cls.__name__ for cls, _ in SUMMARY_FACTORIES]


class TestConformance:
    @pytest.mark.parametrize("cls,factory", SUMMARY_FACTORIES, ids=IDS)
    def test_class_declares_every_member(self, cls, factory):
        assert missing_members(cls) == [], (
            f"{cls.__name__} is missing protocol members"
        )
        assert conforms(cls)

    @pytest.mark.parametrize("cls,factory", SUMMARY_FACTORIES, ids=IDS)
    def test_populated_instance_is_a_streaming_summary(self, cls, factory):
        summary = factory()
        if cls is StreamFleet:
            for value in (1, 5, 9, 2):
                summary.insert("s", value)
        else:
            summary.extend([1, 5, 9, 2])
        assert isinstance(summary, StreamingSummary)

    @pytest.mark.parametrize("cls,factory", SUMMARY_FACTORIES, ids=IDS)
    def test_uninstrumented_metrics_is_none(self, cls, factory):
        summary = factory()
        if cls in (GreedyInsertSummary, PwlGreedyInsertSummary):
            # Leaf summaries always report None (parents do the accounting).
            assert summary.metrics is None
        else:
            assert summary.metrics is None

    def test_non_summary_class_does_not_conform(self):
        class NotASummary:
            def insert(self, value):
                pass

        assert not conforms(NotASummary)
        assert "histogram" in missing_members(NotASummary)


class TestUnifiedKwargs:
    def test_default_hull_epsilon_is_shared(self):
        assert PwlMinMergeHistogram(buckets=4).hull_epsilon == DEFAULT_HULL_EPSILON
        assert (
            PwlMinIncrementHistogram(
                buckets=4, epsilon=0.2, universe=U
            ).hull_epsilon
            == DEFAULT_HULL_EPSILON
        )
        assert (
            SlidingWindowPwlMinIncrement(
                buckets=4, epsilon=0.2, universe=U, window=16
            ).hull_epsilon
            == DEFAULT_HULL_EPSILON
        )

    def test_working_buckets_override_across_merge_family(self):
        assert MinMergeHistogram(buckets=4).working_buckets == 8
        assert MinMergeHistogram(buckets=4, working_buckets=5).working_buckets == 5
        assert PwlMinMergeHistogram(buckets=4).working_buckets == 8
        assert RelativeMinMergeHistogram(buckets=4).working_buckets == 8
        assert (
            RelativeMinMergeHistogram(buckets=4, working_buckets=6).working_buckets
            == 6
        )
        # L2 has no (1, 2) theorem to buy, so its default is no doubling.
        assert L2MergeHistogram(buckets=4).working_buckets == 4
        assert L2MergeHistogram(buckets=4, working_buckets=9).working_buckets == 9

    def test_include_zero_legacy_spelling_rejected(self):
        # The PR-1 deprecation shim is retired: only the unified spelling
        # exists, and the old one fails loudly instead of silently warning.
        with pytest.raises(TypeError, match="include_zero"):
            ErrorLadder(0.2, 1024, include_zero=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ladder = ErrorLadder(0.2, 1024, include_zero_level=False)
        assert ladder[0] != 0.0


class TestSummarizeRegistry:
    def test_registry_and_derived_method_tuple(self):
        from repro import api

        assert set(api.SUMMARIZE_METHODS) == set(api.ALGORITHM_REGISTRY)
        # The tuple is derived: registering a method is reflected.
        api.ALGORITHM_REGISTRY["test-echo"] = (
            lambda values, buckets, epsilon: None
        )
        try:
            assert "test-echo" in api.SUMMARIZE_METHODS
        finally:
            del api.ALGORITHM_REGISTRY["test-echo"]
        assert "test-echo" not in api.SUMMARIZE_METHODS

    def test_all_registered_names_dispatch(self):
        from repro import api

        values = [1, 5, 9, 2, 7, 7, 3, 8]
        for name in api.SUMMARIZE_METHODS:
            hist = summarize(values, buckets=3, method=name)
            assert len(hist) >= 1

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown method"):
            summarize([1, 2, 3], buckets=2, method="nope")

    def test_summary_class_as_method(self):
        values = [1, 1, 1, 9, 9, 9]
        hist = summarize(values, buckets=2, method=MinMergeHistogram)
        assert hist.error == 0.0
        hist = summarize(values, buckets=2, method=MinIncrementHistogram)
        assert len(hist) <= 2

    def test_unconstructible_class_reports_cleanly(self):
        class Weird:
            def __init__(self, mandatory):
                pass

        with pytest.raises(InvalidParameterError, match="cannot construct"):
            summarize([1, 2, 3], buckets=2, method=Weird)


class TestIteratorInputs:
    def test_summarize_accepts_a_generator(self):
        hist = summarize((v for v in [1, 5, 9, 2, 7]), buckets=2)
        assert len(hist) <= 2

    def test_summarize_accepts_an_iterator_for_every_method(self):
        from repro import api

        for name in api.SUMMARIZE_METHODS:
            hist = summarize(iter([4, 4, 8, 8, 1, 1]), buckets=2, method=name)
            assert len(hist) >= 1

    def test_empty_generator_rejected(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            summarize((v for v in []), buckets=2)
