"""Tests for MIN-MERGE: Theorem 1's (1, 2) guarantee and its invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.min_merge import MinMergeHistogram
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.offline.optimal import optimal_error

streams = st.lists(st.integers(0, 1000), min_size=1, max_size=400)
small_buckets = st.integers(1, 8)


class TestConstruction:
    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=0)

    def test_invalid_working_buckets(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=4, working_buckets=0)

    def test_default_working_buckets_is_double(self):
        summary = MinMergeHistogram(buckets=5)
        assert summary.working_buckets == 10

    def test_empty_summary_raises(self):
        summary = MinMergeHistogram(buckets=2)
        with pytest.raises(EmptySummaryError):
            summary.histogram()
        with pytest.raises(EmptySummaryError):
            _ = summary.error


class TestBasicBehaviour:
    def test_few_items_kept_exactly(self):
        summary = MinMergeHistogram(buckets=4)
        summary.extend([5, 1, 9])
        assert summary.bucket_count == 3
        assert summary.error == 0.0
        hist = summary.histogram()
        assert hist.reconstruct() == [5.0, 1.0, 9.0]

    def test_bucket_budget_never_exceeded(self):
        summary = MinMergeHistogram(buckets=3)
        for i in range(100):
            summary.insert(i % 17)
            assert summary.bucket_count <= 6

    def test_piecewise_constant_stream_is_lossless(self):
        # 4 plateaus, 2 target buckets -> 4 working buckets suffice for
        # error 0.
        stream = [10] * 25 + [20] * 25 + [5] * 25 + [30] * 25
        summary = MinMergeHistogram(buckets=2)
        summary.extend(stream)
        assert summary.error == 0.0

    def test_items_seen(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend(range(10))
        assert summary.items_seen == 10

    def test_buckets_snapshot_is_a_copy(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend([1, 2, 3])
        snap = summary.buckets_snapshot()
        snap[0].extend(99)
        assert summary.buckets_snapshot()[0].end == 0

    def test_histogram_covers_whole_stream(self):
        summary = MinMergeHistogram(buckets=3)
        summary.extend(range(50))
        hist = summary.histogram()
        assert hist.beg == 0
        assert hist.end == 49


class TestGuarantee:
    @given(streams, small_buckets)
    def test_error_at_most_optimal_b(self, values, buckets):
        """Theorem 1: err(MIN-MERGE with 2B) <= err(OPT with B)."""
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        assert summary.error <= optimal_error(values, buckets) + 1e-12

    @given(streams, small_buckets)
    def test_error_sandwiched_between_optima(self, values, buckets):
        """err(OPT_2B) <= err(MIN-MERGE with 2B) <= err(OPT_B).

        The upper bound is Theorem 1; the lower bound is trivial (the
        summary IS a 2B-bucket histogram) but pins the implementation: a
        summary reporting below the 2B optimum would be lying.
        """
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        assert summary.error >= optimal_error(values, 2 * buckets) - 1e-12
        assert summary.error <= optimal_error(values, buckets) + 1e-12

    @given(streams, small_buckets)
    def test_min_merge_property_invariant(self, values, buckets):
        """The Lemma 1 invariant holds after the full stream."""
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        summary.check_min_merge_property()

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=120))
    def test_invariants_hold_after_every_insert(self, values):
        summary = MinMergeHistogram(buckets=2)
        for v in values:
            summary.insert(v)
            summary.check_min_merge_property()
            summary.check_heap_consistency()

    @given(streams)
    def test_reported_error_matches_measured(self, values):
        summary = MinMergeHistogram(buckets=4)
        summary.extend(values)
        hist = summary.histogram()
        assert hist.max_error_against(values) == pytest.approx(hist.error)

    def test_worst_case_adversarial_alternation(self):
        # Alternating extremes are incompressible: any bucket of >= 2 items
        # has error 500.  MIN-MERGE must still respect the bound.
        values = [0, 1000] * 100
        summary = MinMergeHistogram(buckets=4)
        summary.extend(values)
        assert summary.error <= optimal_error(values, 4)


class TestMemory:
    def test_memory_bounded_by_working_buckets(self):
        summary = MinMergeHistogram(buckets=8)
        baseline = None
        for i in range(5000):
            summary.insert(i % 997)
            if i == 100:
                baseline = summary.memory_bytes()
        # Memory at the end equals memory right after filling: O(B), not O(n).
        assert summary.memory_bytes() == baseline

    def test_memory_scales_linearly_in_buckets(self):
        small = MinMergeHistogram(buckets=8)
        large = MinMergeHistogram(buckets=32)
        stream = list(range(2000))
        small.extend(stream)
        large.extend(stream)
        ratio = large.memory_bytes() / small.memory_bytes()
        assert 3.0 < ratio < 5.0  # ~4x for 4x the buckets

    def test_memory_accounts_buckets_and_heap(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend(range(10))  # full: 4 buckets, 3 heap keys
        expected = 4 * 4 * 4 + 3 * 2 * 4
        assert summary.memory_bytes() == expected


class TestLinearFindmin:
    def test_invalid_mode(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=2, findmin="quadratic")

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
    def test_linear_matches_heap_error(self, values):
        """Footnote 4: same algorithm, different FINDMIN implementation."""
        heap_summary = MinMergeHistogram(buckets=3)
        linear_summary = MinMergeHistogram(buckets=3, findmin="linear")
        heap_summary.extend(values)
        linear_summary.extend(values)
        # Tie-breaking may differ, so bucket boundaries can differ, but
        # both satisfy the min-merge property and the same error bound.
        linear_summary.check_min_merge_property()
        linear_summary.check_heap_consistency()
        best = optimal_error(values, 3)
        assert heap_summary.error <= best
        assert linear_summary.error <= best

    def test_linear_mode_uses_no_heap_memory(self):
        heap_summary = MinMergeHistogram(buckets=4)
        linear_summary = MinMergeHistogram(buckets=4, findmin="linear")
        stream = list(range(100))
        heap_summary.extend(stream)
        linear_summary.extend(stream)
        assert linear_summary.memory_bytes() < heap_summary.memory_bytes()


class TestWorkingBucketsOverride:
    def test_larger_budget_gives_no_worse_error(self):
        stream = [((i * 7919) % 523) for i in range(500)]
        tight = MinMergeHistogram(buckets=4, working_buckets=8)
        loose = MinMergeHistogram(buckets=4, working_buckets=16)
        tight.extend(stream)
        loose.extend(stream)
        assert loose.error <= tight.error

    def test_single_working_bucket_degenerates_to_global_range(self):
        summary = MinMergeHistogram(buckets=1, working_buckets=1)
        summary.extend([2, 10, 4])
        assert summary.bucket_count == 1
        assert summary.error == 4.0
