"""Tests for the exact offline optimal histogram (Theorem 6)."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.offline.optimal import (
    min_buckets_for_error,
    optimal_error,
    optimal_error_dp,
    optimal_histogram,
)

streams = st.lists(st.integers(0, 100), min_size=1, max_size=60)


def brute_force_optimal(values, buckets) -> float:
    """Try every partition into <= buckets pieces (tiny inputs only)."""
    n = len(values)
    buckets = min(buckets, n)
    best = float("inf")
    for k in range(1, buckets + 1):
        for cuts in combinations(range(1, n), k - 1):
            bounds = [0, *cuts, n]
            worst = 0.0
            for lo, hi in zip(bounds, bounds[1:]):
                chunk = values[lo:hi]
                worst = max(worst, (max(chunk) - min(chunk)) / 2.0)
            best = min(best, worst)
    return best


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            optimal_error([], 3)

    def test_bad_buckets(self):
        with pytest.raises(InvalidParameterError):
            optimal_error([1, 2], 0)

    def test_negative_error(self):
        with pytest.raises(InvalidParameterError):
            min_buckets_for_error([1, 2], -1.0)


class TestMinBuckets:
    def test_empty_sequence(self):
        assert min_buckets_for_error([], 1.0) == 0

    def test_zero_error_counts_runs(self):
        assert min_buckets_for_error([1, 1, 2, 2, 3], 0.0) == 3

    def test_large_error_single_bucket(self):
        assert min_buckets_for_error([0, 50, 100], 50.0) == 1

    def test_half_integer_threshold(self):
        # Range 1 -> error 0.5 fits; range 2 -> needs a split at error 0.5.
        assert min_buckets_for_error([0, 1], 0.5) == 1
        assert min_buckets_for_error([0, 2], 0.5) == 2


class TestOptimalError:
    def test_more_buckets_than_values(self):
        assert optimal_error([3, 1, 4], 5) == 0.0

    def test_constant_stream(self):
        assert optimal_error([7] * 20, 1) == 0.0

    def test_single_bucket_is_half_range(self):
        assert optimal_error([0, 10, 4], 1) == 5.0

    def test_two_plateaus(self):
        assert optimal_error([0] * 5 + [10] * 5, 2) == 0.0
        assert optimal_error([0] * 5 + [10] * 5, 1) == 5.0

    @given(streams, st.integers(1, 5))
    def test_matches_reference_dp(self, values, buckets):
        assert optimal_error(values, buckets) == optimal_error_dp(
            values, buckets
        )

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=12),
        st.integers(1, 4),
    )
    def test_matches_brute_force_partitions(self, values, buckets):
        assert optimal_error(values, buckets) == brute_force_optimal(
            values, buckets
        )

    @given(streams)
    def test_monotone_in_buckets(self, values):
        errors = [optimal_error(values, b) for b in range(1, 8)]
        assert errors == sorted(errors, reverse=True)

    def test_float_inputs_use_candidate_search(self):
        values = [0.0, 1.5, 3.7, 0.2, 9.1, 9.3]
        result = optimal_error(values, 2)
        # Exact via brute force over partitions.
        assert result == pytest.approx(brute_force_optimal(values, 2))

    @given(
        st.lists(
            st.floats(0, 100, allow_nan=False, width=32),
            min_size=1,
            max_size=12,
        ),
        st.integers(1, 3),
    )
    def test_float_path_matches_brute_force(self, values, buckets):
        assert optimal_error(values, buckets) == pytest.approx(
            brute_force_optimal(values, buckets), abs=1e-9
        )


class TestOptimalHistogram:
    @given(streams, st.integers(1, 6))
    def test_realizes_the_optimal_error(self, values, buckets):
        hist = optimal_histogram(values, buckets)
        assert len(hist) <= buckets
        assert hist.error == optimal_error(values, buckets)
        assert hist.max_error_against(values) == hist.error

    def test_covers_whole_input(self):
        hist = optimal_histogram([5, 1, 9, 9, 2], 2)
        assert hist.beg == 0
        assert hist.end == 4

    def test_greedy_partition_boundaries(self):
        hist = optimal_histogram([0, 0, 10, 10], 2)
        assert [(s.beg, s.end) for s in hist] == [(0, 1), (2, 3)]


class TestTheorem6Complexity:
    def test_probe_count_is_logarithmic(self):
        """The grid search makes O(log U) greedy passes."""
        import repro.offline.optimal as mod

        calls = {"n": 0}
        original = mod.min_buckets_for_error

        def counting(values, error):
            calls["n"] += 1
            return original(values, error)

        mod.min_buckets_for_error = counting
        try:
            values = [((i * 7919) % 32768) for i in range(2000)]
            optimal_error(values, 16)
        finally:
            mod.min_buckets_for_error = original
        assert calls["n"] <= 20  # log2(2^15) + slack
