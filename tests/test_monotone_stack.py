"""Unit and property tests for the suffix record stacks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.monotone_stack import (
    SuffixExtremaStack,
    SuffixWindow,
    brute_force_suffix_extreme,
)


class TestSuffixExtremaStack:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SuffixExtremaStack("median")

    def test_single_value(self):
        stack = SuffixExtremaStack("max")
        stack.append(5)
        assert stack.query(0) == 5
        assert stack.stream_length == 1

    def test_increasing_stream_keeps_one_record(self):
        stack = SuffixExtremaStack("max")
        for v in range(10):
            stack.append(v)
        # Every prefix's suffix-max is the last value.
        assert len(stack) == 1
        assert all(stack.query(s) == 9 for s in range(10))

    def test_decreasing_stream_keeps_all_records(self):
        stack = SuffixExtremaStack("max")
        for v in range(10, 0, -1):
            stack.append(v)
        assert len(stack) == 10
        for start in range(10):
            assert stack.query(start) == 10 - start

    def test_min_mode(self):
        stack = SuffixExtremaStack("min")
        for v in [5, 3, 8, 1, 9, 2]:
            stack.append(v)
        values = [5, 3, 8, 1, 9, 2]
        for start in range(len(values)):
            assert stack.query(start) == min(values[start:])

    def test_query_out_of_range(self):
        stack = SuffixExtremaStack("max")
        stack.append(1)
        with pytest.raises(IndexError):
            stack.query(1)
        with pytest.raises(IndexError):
            stack.query(-1)

    def test_duplicates_collapse(self):
        stack = SuffixExtremaStack("max")
        for v in [5, 5, 5]:
            stack.append(v)
        assert len(stack) == 1
        assert stack.query(0) == 5


class TestSuffixWindow:
    def test_interval_error_matches_definition(self):
        window = SuffixWindow()
        values = [3, 7, 1, 9, 4]
        for v in values:
            window.append(v)
        for start in range(len(values)):
            expected = (max(values[start:]) - min(values[start:])) / 2.0
            assert window.interval_error(start) == expected

    def test_len_counts_both_stacks(self):
        window = SuffixWindow()
        for v in [1, 2, 3]:  # increasing: max-stack 1 record, min-stack 3
            window.append(v)
        assert len(window) == 4
        assert window.stream_length == 3


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=300))
def test_stack_matches_brute_force(values):
    max_stack = SuffixExtremaStack("max")
    min_stack = SuffixExtremaStack("min")
    for v in values:
        max_stack.append(v)
        min_stack.append(v)
    max_stack.check_invariant()
    min_stack.check_invariant()
    for start in range(0, len(values), max(1, len(values) // 17)):
        assert max_stack.query(start) == brute_force_suffix_extreme(
            values, start, "max"
        )
        assert min_stack.query(start) == brute_force_suffix_extreme(
            values, start, "min"
        )


@given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_queries_valid_after_every_append(values):
    window = SuffixWindow()
    for i, v in enumerate(values):
        window.append(v)
        prefix = values[: i + 1]
        assert window.suffix_max(0) == max(prefix)
        assert window.suffix_min(0) == min(prefix)
        assert window.interval_error(i) == 0.0
