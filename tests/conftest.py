"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: enough examples to find real bugs, no
# per-example deadline (pure-Python geometry can be slow on CI boxes).
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """Seeded PRNG for tests that build their own streams."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def brownian_2k() -> list[int]:
    """A small quantized random walk shared by integration-style tests."""
    from repro.data import brownian

    return brownian(2048)


@pytest.fixture(scope="session")
def dow_jones_2k() -> list[int]:
    from repro.data import dow_jones

    return dow_jones(2048)
