"""Cross-algorithm properties: relationships the theory forces *between*
algorithms, checked on arbitrary streams.

Each assertion is a theorem chain, not an empirical hope -- e.g. MIN-MERGE
(2B buckets) <= optimal(B) <= MIN-INCREMENT answer, so the two streaming
summaries are themselves provably ordered.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MinIncrementHistogram,
    MinMergeHistogram,
    RehistHistogram,
    SlidingWindowMinIncrement,
    optimal_error,
    optimal_pwl_error,
    summarize,
)

UNIVERSE = 512
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=200)


class TestOrderingChains:
    @given(streams, st.integers(1, 8))
    def test_min_merge_below_min_increment(self, values, buckets):
        """mm(2B buckets) <= opt(B) <= mi answer: a forced ordering."""
        mm = MinMergeHistogram(buckets=buckets)
        mm.extend(values)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=0.2, universe=UNIVERSE
        )
        mi.extend(values)
        assert mm.error <= mi.error + 1e-12

    @given(streams, st.integers(1, 6))
    def test_rehist_and_min_increment_bracket_optimal(self, values, buckets):
        best = optimal_error(values, buckets)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=0.2, universe=UNIVERSE
        )
        mi.extend(values)
        rh = RehistHistogram(buckets=buckets, epsilon=0.2, universe=UNIVERSE)
        rh.extend(values)
        for answer in (mi.error, rh.error):
            assert best - 1e-9 <= answer <= max(1.2 * best, 0.5) + 1e-9

    @settings(max_examples=25)
    @given(streams, st.integers(1, 5))
    def test_pwl_optimum_never_above_serial(self, values, buckets):
        """Lines generalize constants, so the PWL optimum dominates."""
        serial = optimal_error(values, buckets)
        pwl = optimal_pwl_error(values, buckets, tol=1e-3)
        assert pwl <= serial + 1e-3
        # And both are bounded by the single-bucket half-range.
        whole = (max(values) - min(values)) / 2.0
        assert serial <= whole + 1e-12

    @given(streams, st.integers(1, 6))
    def test_window_covering_stream_matches_full_summary(self, values, buckets):
        """With w >= n the sliding window IS the full-stream problem."""
        sw = SlidingWindowMinIncrement(
            buckets=buckets, epsilon=0.2, universe=UNIVERSE,
            window=len(values) + 10,
        )
        sw.extend(values)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=0.2, universe=UNIVERSE
        )
        mi.extend(values)
        # Identical ladder, identical greedy; the window answer may keep
        # one extra bucket but never a worse error.
        assert sw.histogram().error <= mi.error + 1e-12
        assert sw.histogram().beg == 0


class TestSummarizeConsistency:
    @settings(max_examples=25)
    @given(streams, st.integers(1, 6))
    def test_summarize_matches_direct_min_increment(self, values, buckets):
        via_api = summarize(values, buckets, method="min-increment", epsilon=0.2)
        direct = MinIncrementHistogram(
            buckets=buckets, epsilon=0.2, universe=max(2, max(values) + 1)
        )
        direct.extend(values)
        assert via_api.error == direct.histogram().error
        assert len(via_api) == len(direct.histogram())

    @settings(max_examples=25)
    @given(streams, st.integers(1, 6))
    def test_summarize_optimal_matches_offline(self, values, buckets):
        assert summarize(values, buckets, method="optimal").error == (
            optimal_error(values, buckets)
        )


class TestAggregationAgainstDirect:
    @settings(max_examples=25)
    @given(
        st.lists(st.integers(0, 300), min_size=2, max_size=150),
        st.data(),
    )
    def test_arbitrary_split_merge_matches_bound(self, values, data):
        """Hypothesis picks the cut point; the merged bound must hold."""
        from repro.core.aggregation import merge_min_merge_summaries

        cut = data.draw(st.integers(1, len(values) - 1))
        left = MinMergeHistogram(buckets=3)
        left.extend(values[:cut])
        right = MinMergeHistogram(buckets=3)
        right._n = cut
        right.extend(values[cut:])
        merged = merge_min_merge_summaries([left, right], buckets=3)
        assert merged.error <= optimal_error(values, 3) + 1e-12
        # The merged summary is also never better than a direct streaming
        # run's floor: it is a 6-bucket histogram of the same data.
        assert merged.error >= optimal_error(values, 6) - 1e-12


class TestCheckpointTransparency:
    @settings(max_examples=20)
    @given(streams, st.integers(4, 40))
    def test_sliding_window_checkpoint_mid_stream(self, values, window):
        """Checkpoint anywhere in the stream; the answer is unchanged."""
        from repro.checkpoint import restore, state_dict

        cut = len(values) // 2
        continuous = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=window
        )
        continuous.extend(values)

        paused = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=window
        )
        paused.extend(values[:cut])
        resumed = restore(state_dict(paused))
        resumed.extend(values[cut:])
        a, b = resumed.histogram(), continuous.histogram()
        assert list(a) == list(b)
        assert a.error == b.error
