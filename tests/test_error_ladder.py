"""Tests for the geometric error ladder."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.error_ladder import ErrorLadder
from repro.exceptions import InvalidParameterError


class TestConstruction:
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(InvalidParameterError):
            ErrorLadder(epsilon, 1024)

    @pytest.mark.parametrize("universe", [0, 1, -5])
    def test_invalid_universe(self, universe):
        with pytest.raises(InvalidParameterError):
            ErrorLadder(0.2, universe)

    def test_exact_levels_prepended_by_default(self):
        ladder = ErrorLadder(0.2, 1024)
        assert ladder[0] == 0.0
        assert ladder[1] == 0.5
        assert ladder[2] == 1.0

    def test_zero_level_can_be_disabled(self):
        ladder = ErrorLadder(0.2, 1024, include_zero_level=False)
        assert ladder[0] == 1.0

    def test_repr(self):
        assert "levels=" in repr(ErrorLadder(0.5, 64))


class TestLevels:
    def test_levels_are_geometric(self):
        ladder = ErrorLadder(0.5, 1 << 10, include_zero_level=False)
        for a, b in zip(ladder, list(ladder)[1:]):
            assert b == pytest.approx(a * 1.5)

    def test_top_level_covers_max_error(self):
        ladder = ErrorLadder(0.2, 1 << 15)
        # The worst possible histogram error is (U - 1) / 2.
        assert ladder[-1] >= ((1 << 15) - 1) / 2.0

    def test_size_matches_theory(self):
        epsilon, universe = 0.2, 1 << 15
        ladder = ErrorLadder(epsilon, universe, include_zero_level=False)
        expected = ErrorLadder.expected_size(epsilon, universe)
        # Within one level of the closed-form count.
        assert abs(len(ladder) - expected) <= 1

    @given(st.floats(0.05, 0.9), st.integers(4, 1 << 20))
    def test_ladder_is_strictly_increasing(self, epsilon, universe):
        levels = list(ErrorLadder(epsilon, universe))
        assert all(b > a for a, b in zip(levels, levels[1:]))


class TestCoveringLevel:
    def test_exact_zero(self):
        assert ErrorLadder(0.2, 1024).covering_level(0.0) == 0.0

    def test_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            ErrorLadder(0.2, 1024).covering_level(-1.0)

    @given(st.floats(0.0, 511.0), st.floats(0.05, 0.9))
    def test_covering_level_within_factor(self, error, epsilon):
        """Inequality 2: some level e_j has error <= e_j <= (1+eps) error."""
        ladder = ErrorLadder(epsilon, 1024)
        level = ladder.covering_level(error)
        assert level >= error
        if error >= 1.0:  # below the ladder base the factor doesn't apply
            assert level <= (1.0 + epsilon) * error * (1 + 1e-12)

    @given(st.integers(0, 1022).map(lambda k: k / 2.0), st.floats(0.05, 0.9))
    def test_half_integer_errors_always_covered(self, error, epsilon):
        """On integer streams every achievable error is a half-integer, and
        the exact 0 / 0.5 levels make the factor hold for all of them."""
        ladder = ErrorLadder(epsilon, 1024)
        level = ladder.covering_level(error)
        assert error <= level <= (1.0 + epsilon) * error * (1 + 1e-12) or (
            error in (0.0, 0.5) and level == error
        )

    def test_above_top_saturates(self):
        ladder = ErrorLadder(0.2, 64)
        assert ladder.covering_level(10_000.0) == ladder[-1]
