"""Tests for the L2 (V-optimal) histogram subpackage."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    EmptySummaryError,
    InvalidParameterError,
)
from repro.l2.merge import L2MergeHistogram
from repro.l2.sse import PrefixSSE, interval_sse
from repro.l2.voptimal import voptimal_error, voptimal_histogram

streams = st.lists(st.integers(0, 50), min_size=1, max_size=40)


def brute_force_voptimal(values, buckets) -> float:
    """Try every partition into <= buckets pieces (tiny inputs only)."""
    n = len(values)
    buckets = min(buckets, n)
    best = float("inf")
    for cuts in combinations(range(1, n), buckets - 1):
        bounds = [0, *cuts, n]
        total = 0.0
        for lo, hi in zip(bounds, bounds[1:]):
            total += interval_sse(values, lo, hi - 1)
        best = min(best, total)
    return best


class TestPrefixSSE:
    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            PrefixSSE([])

    def test_out_of_range(self):
        prefix = PrefixSSE([1, 2, 3])
        with pytest.raises(InvalidParameterError):
            prefix.sse(1, 3)
        with pytest.raises(InvalidParameterError):
            prefix.sse(-1, 1)
        with pytest.raises(InvalidParameterError):
            prefix.sse(2, 1)

    def test_constant_interval_is_zero(self):
        prefix = PrefixSSE([4, 4, 4, 4])
        assert prefix.sse(0, 3) == 0.0
        assert prefix.mean(0, 3) == 4.0

    def test_known_value(self):
        # SSE of [0, 2] around mean 1 is 1 + 1 = 2.
        prefix = PrefixSSE([0, 2])
        assert prefix.sse(0, 1) == pytest.approx(2.0)

    def test_total(self):
        prefix = PrefixSSE([1, 2, 3, 4])
        assert prefix.total(1, 3) == 9.0

    @given(streams)
    def test_matches_direct_computation(self, values):
        prefix = PrefixSSE(values)
        n = len(values)
        for beg in range(0, n, max(1, n // 7)):
            for end in range(beg, n, max(1, n // 7)):
                assert prefix.sse(beg, end) == pytest.approx(
                    interval_sse(values, beg, end), abs=1e-7
                )

    @given(streams)
    def test_sse_superadditive_under_split(self, values):
        """Splitting a bucket never increases SSE."""
        if len(values) < 2:
            return
        prefix = PrefixSSE(values)
        n = len(values)
        mid = n // 2
        whole = prefix.sse(0, n - 1)
        parts = prefix.sse(0, mid - 1) + prefix.sse(mid, n - 1) if mid > 0 else whole
        assert parts <= whole + 1e-9


class TestVOptimal:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            voptimal_error([], 2)
        with pytest.raises(InvalidParameterError):
            voptimal_error([1], 0)

    def test_max_points_guard(self):
        with pytest.raises(InvalidParameterError):
            voptimal_error(list(range(100)), 2, max_points=50)

    def test_plateaus_are_free(self):
        values = [1] * 10 + [9] * 10
        assert voptimal_error(values, 2) == pytest.approx(0.0)

    def test_single_bucket_is_total_sse(self):
        values = [0, 2, 4]
        assert voptimal_error(values, 1) == pytest.approx(
            interval_sse(values, 0, 2)
        )

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=12),
        st.integers(1, 4),
    )
    def test_matches_brute_force(self, values, buckets):
        assert voptimal_error(values, buckets) == pytest.approx(
            brute_force_voptimal(values, buckets), abs=1e-7
        )

    @given(streams)
    def test_monotone_in_buckets(self, values):
        errors = [voptimal_error(values, b) for b in range(1, 6)]
        for a, b in zip(errors, errors[1:]):
            assert b <= a + 1e-9

    @given(streams, st.integers(1, 5))
    def test_histogram_realizes_the_error(self, values, buckets):
        hist = voptimal_histogram(values, buckets)
        assert len(hist) <= buckets
        # Recompute the SSE of the returned partition.
        total = 0.0
        for seg in hist:
            total += interval_sse(values, seg.beg, seg.end)
        assert total == pytest.approx(voptimal_error(values, buckets), abs=1e-6)
        # Representatives are the bucket means.
        for seg in hist:
            chunk = values[seg.beg:seg.end + 1]
            assert seg.left == pytest.approx(sum(chunk) / len(chunk))


class TestL2Merge:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            L2MergeHistogram(buckets=0)

    def test_empty_raises(self):
        summary = L2MergeHistogram(buckets=2)
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_plateaus_recovered_exactly(self):
        values = [3] * 20 + [9] * 20 + [1] * 20
        summary = L2MergeHistogram(buckets=3)
        summary.extend(values)
        assert summary.total_sse == pytest.approx(0.0)
        assert summary.bucket_count == 3

    def test_bucket_budget_respected(self):
        summary = L2MergeHistogram(buckets=4)
        for i in range(200):
            summary.insert((i * 31) % 57)
            assert summary.bucket_count <= 4

    @given(streams, st.integers(1, 6))
    def test_never_beats_voptimal(self, values, buckets):
        summary = L2MergeHistogram(buckets=buckets)
        summary.extend(values)
        assert summary.total_sse >= voptimal_error(values, buckets) - 1e-7

    @settings(max_examples=25)
    @given(streams)
    def test_reported_sse_matches_partition(self, values):
        summary = L2MergeHistogram(buckets=3)
        summary.extend(values)
        hist = summary.histogram()
        total = sum(interval_sse(values, s.beg, s.end) for s in hist)
        assert summary.total_sse == pytest.approx(total, abs=1e-6)

    def test_memory_flat_in_n(self):
        summary = L2MergeHistogram(buckets=8)
        summary.extend(range(50))
        early = summary.memory_bytes()
        summary.extend(range(5000))
        assert summary.memory_bytes() == early


class TestSpikeVisibility:
    def test_l2_smooths_spikes_linf_keeps_them(self):
        """The paper's motivation, quantified.

        A flat stream with one spike: the V-optimal / L2-merge summary at a
        tight budget happily averages the spike away, while MIN-MERGE's
        max-error objective is forced to isolate it.
        """
        from repro.core.min_merge import MinMergeHistogram
        from repro.metrics.errors import linf_error

        values = [100] * 64
        values[31] = 5000
        # Two L2 buckets: best is to split around nothing in particular --
        # the spike's squared mass is diluted.  Give L-infinity only 1
        # target bucket (2 working): it still isolates the spike.
        l2 = L2MergeHistogram(buckets=2)
        l2.extend(values)
        linf = MinMergeHistogram(buckets=1)
        linf.extend(values)
        l2_spike_residual = abs(
            values[31] - l2.histogram().value_at(31)
        )
        linf_spike_residual = abs(
            values[31] - linf.histogram().value_at(31)
        )
        assert linf_spike_residual < l2_spike_residual
        # And globally: the max-error summary has far lower L-inf error.
        assert linf_error(values, linf.histogram().reconstruct()) < (
            linf_error(values, l2.histogram().reconstruct())
        )
