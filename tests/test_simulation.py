"""Tests for the sensor-network deployment simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.simulation.network import (
    BYTES_PER_READING,
    AggregationTree,
)
from repro.simulation.scenario import SensorNetworkSimulation


class TestTreeTopology:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AggregationTree(0)
        with pytest.raises(InvalidParameterError):
            AggregationTree(4, branching=1)

    def test_single_leaf_is_root(self):
        tree = AggregationTree(1)
        assert tree.leaf_ids == [0]
        assert tree.root_id == 0
        assert tree.hops_to_root(0) == 0

    def test_binary_tree_of_eight(self):
        tree = AggregationTree(8, branching=2)
        assert tree.leaf_ids == list(range(8))
        # 8 leaves + 4 + 2 + 1 = 15 motes.
        assert len(tree.motes) == 15
        assert all(tree.hops_to_root(leaf) == 3 for leaf in tree.leaf_ids)

    def test_every_mote_reaches_root(self):
        tree = AggregationTree(13, branching=3)
        for node_id in tree.motes:
            assert tree.hops_to_root(node_id) >= 0

    def test_children_bookkeeping(self):
        tree = AggregationTree(4, branching=2)
        root = tree.motes[tree.root_id]
        assert not root.is_leaf
        covered = set()
        stack = [tree.root_id]
        while stack:
            node = tree.motes[stack.pop()]
            if node.is_leaf:
                covered.add(node.node_id)
            stack.extend(node.children)
        assert covered == set(tree.leaf_ids)

    @given(st.integers(1, 40), st.integers(2, 5))
    def test_arbitrary_shapes_are_consistent(self, leaves, branching):
        tree = AggregationTree(leaves, branching=branching)
        assert len(tree.leaf_ids) == leaves
        for leaf in tree.leaf_ids:
            # Depth is logarithmic-ish; definitely below leaf count.
            assert tree.hops_to_root(leaf) <= leaves


class TestRadioAccounting:
    def test_transmit_charges_every_hop(self):
        tree = AggregationTree(8, branching=2)
        leaf = tree.leaf_ids[0]
        total = tree.transmit(leaf, 100)
        assert total == 100 * tree.hops_to_root(leaf)
        assert tree.total_bytes_sent() == total

    def test_root_transmit_is_free(self):
        tree = AggregationTree(4)
        assert tree.transmit(tree.root_id, 999) == 0

    def test_unknown_mote(self):
        tree = AggregationTree(2)
        with pytest.raises(InvalidParameterError):
            tree.transmit(1234, 1)
        with pytest.raises(InvalidParameterError):
            tree.hops_to_root(1234)

    def test_negative_payload(self):
        tree = AggregationTree(2)
        with pytest.raises(InvalidParameterError):
            tree.transmit(0, -1)


class TestScenario:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SensorNetworkSimulation(epochs=0)
        with pytest.raises(InvalidParameterError):
            SensorNetworkSimulation(readings_per_epoch=0)

    @settings(deadline=None)
    @given(
        st.integers(2, 6),   # leaves
        st.integers(1, 3),   # epochs
        st.integers(2, 8),   # buckets
    )
    def test_guarantee_survives_arbitrary_deployments(
        self, leaves, epochs, buckets
    ):
        report = SensorNetworkSimulation(
            leaves=leaves,
            buckets=buckets,
            epochs=epochs,
            readings_per_epoch=120,
        ).run()
        assert report.guarantee_held
        assert report.leaves == leaves

    def test_mote_memory_is_o_of_b(self):
        report = SensorNetworkSimulation(
            leaves=4, buckets=16, epochs=2, readings_per_epoch=2000
        ).run()
        # 2B buckets x 16 B + heap keys; far below the 8 KB raw epoch.
        assert report.peak_mote_memory_bytes < 1024
        assert report.peak_mote_memory_bytes < (
            report.readings_per_epoch * BYTES_PER_READING
        )

    def test_radio_savings_grow_with_epoch_length(self):
        short = SensorNetworkSimulation(
            leaves=4, buckets=16, epochs=2, readings_per_epoch=256
        ).run()
        long = SensorNetworkSimulation(
            leaves=4, buckets=16, epochs=2, readings_per_epoch=4096
        ).run()
        assert long.radio_savings > short.radio_savings
        assert long.radio_savings > 10.0

    def test_raw_bytes_accounting(self):
        report = SensorNetworkSimulation(
            leaves=2, buckets=4, epochs=2, readings_per_epoch=100
        ).run()
        # 2 leaves x 2 epochs x 100 readings x 4 bytes x 1 hop each.
        assert report.raw_radio_bytes == 2 * 2 * 100 * 4 * 1

    def test_invalid_loss_rate(self):
        with pytest.raises(InvalidParameterError):
            SensorNetworkSimulation(loss_rate=1.0)
        with pytest.raises(InvalidParameterError):
            SensorNetworkSimulation(loss_rate=-0.1)

    def test_lossless_default(self):
        report = SensorNetworkSimulation(
            leaves=2, buckets=4, epochs=3, readings_per_epoch=100
        ).run()
        assert report.lost_epochs == 0
        assert report.received_epochs == 6

    @settings(deadline=None)
    @given(st.floats(0.1, 0.8), st.integers(0, 5))
    def test_guarantee_holds_under_loss(self, loss_rate, seed):
        """Losses shrink the received stream; the bound tracks it exactly."""
        report = SensorNetworkSimulation(
            leaves=3,
            buckets=6,
            epochs=5,
            readings_per_epoch=120,
            loss_rate=loss_rate,
            loss_seed=seed,
        ).run()
        assert report.received_epochs + report.lost_epochs == 15
        assert report.guarantee_held

    def test_radio_is_still_charged_for_lost_payloads(self):
        lossy = SensorNetworkSimulation(
            leaves=4, buckets=4, epochs=4, readings_per_epoch=100,
            loss_rate=0.5, loss_seed=1,
        ).run()
        lossless = SensorNetworkSimulation(
            leaves=4, buckets=4, epochs=4, readings_per_epoch=100,
        ).run()
        # Transmissions happen whether or not the base hears them.
        assert lossy.summary_radio_bytes == lossless.summary_radio_bytes
        assert lossy.lost_epochs > 0

    def test_custom_signal(self):
        def flat(leaf, epoch, n):
            return [leaf * 10] * n

        report = SensorNetworkSimulation(
            leaves=2, buckets=2, epochs=3, readings_per_epoch=50,
            signal=flat,
        ).run()
        assert report.worst_error == 0.0
        assert report.guarantee_held
