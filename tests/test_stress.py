"""Stress tests: paper-scale streams through the core summaries.

Marked slow; they validate the O(B) / O(eps^-1 B log U) space claims at
the million-item scale of the paper's Brownian dataset and exercise the
amortized paths (heap churn, ladder deletions, hull compression) far past
what the property tests reach.
"""

from __future__ import annotations

import pytest

from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.data import brownian

pytestmark = pytest.mark.slow

UNIVERSE = 1 << 15


@pytest.fixture(scope="module")
def million_walk():
    return brownian(1_000_000)


class TestMillionItems:
    def test_min_merge_flat_memory_at_scale(self, million_walk):
        summary = MinMergeHistogram(buckets=32)
        summary.extend(million_walk)
        assert summary.items_seen == 1_000_000
        assert summary.memory_bytes() == 1528  # exactly B-determined
        summary.check_heap_consistency()
        summary.check_min_merge_property()
        hist = summary.histogram()
        assert hist.coverage == 1_000_000

    def test_min_increment_batched_at_scale(self, million_walk):
        summary = MinIncrementHistogram(
            buckets=32, epsilon=0.2, universe=UNIVERSE, batch_size="auto"
        )
        summary.extend(million_walk)
        summary.flush()
        assert summary.items_seen == 1_000_000
        # Theta(eps^-1 B log U) worst case is ~30 KB; live usage far less.
        assert summary.memory_bytes() < 40_000
        assert len(summary.histogram()) <= 32

    def test_sliding_window_at_scale(self, million_walk):
        summary = SlidingWindowMinIncrement(
            buckets=16, epsilon=0.3, universe=UNIVERSE, window=10_000
        )
        summary.extend(million_walk[:200_000])
        hist = summary.histogram()
        assert hist.beg == 190_000
        assert hist.end == 199_999
        assert len(hist) <= 17
        assert summary.memory_bytes() < 20_000

    def test_pwl_min_merge_capped_at_scale(self, million_walk):
        summary = PwlMinMergeHistogram(buckets=16, hull_epsilon=0.2)
        summary.extend(million_walk[:100_000])
        assert summary.bucket_count <= 32
        for node in summary._list:
            assert node.bucket.hull.stored_entries <= (
                node.bucket.hull._threshold
            )
