"""Tests for PWL buckets and their closed (segment-only) form."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pwl_bucket import ClosedPwlBucket, PwlBucket
from repro.exceptions import InvalidParameterError


class TestBasics:
    def test_singleton(self):
        bucket = PwlBucket(5, 10.0)
        assert (bucket.beg, bucket.end) == (5, 5)
        assert bucket.count == 1
        assert bucket.error == 0.0

    def test_two_points_fit_exactly(self):
        bucket = PwlBucket(0, 0.0)
        bucket.add(10.0)
        assert bucket.error == 0.0
        seg = bucket.segment()
        assert seg.value_at(0) == pytest.approx(0.0)
        assert seg.value_at(1) == pytest.approx(10.0)

    def test_linear_run_fits_exactly(self):
        bucket = PwlBucket(0, 0)
        for i in range(1, 20):
            bucket.add(3 * i)
        assert bucket.error == pytest.approx(0.0, abs=1e-12)
        assert bucket.segment().slope == pytest.approx(3.0)

    def test_error_cached_and_invalidated(self):
        bucket = PwlBucket(0, 0)
        bucket.add(0)
        assert bucket.error == 0.0
        bucket.add(10)  # (2, 10) breaks the flat line
        assert bucket.error > 0.0

    def test_repr(self):
        assert "PwlBucket" in repr(PwlBucket(0, 1))


class TestTryAdd:
    def test_accepts_within_budget(self):
        bucket = PwlBucket(0, 0)
        assert bucket.try_add(100, max_error=50.0) is True
        assert bucket.end == 1

    def test_rejects_and_rolls_back(self):
        bucket = PwlBucket(0, 0)
        bucket.add(0)
        bucket.add(0)
        before = (bucket.beg, bucket.end, bucket.error)
        assert bucket.try_add(1000, max_error=1.0) is False
        assert (bucket.beg, bucket.end, bucket.error) == before
        # The bucket remains usable after a rollback.
        assert bucket.try_add(1, max_error=1.0) is True

    @given(st.lists(st.integers(-100, 100), min_size=2, max_size=60))
    def test_try_add_respects_budget_exactly(self, values):
        budget = 5.0
        bucket = PwlBucket(0, values[0])
        for v in values[1:]:
            accepted = bucket.try_add(v, budget)
            assert bucket.error <= budget + 1e-9
            if not accepted:
                break


class TestMerge:
    def test_merged_range_and_error(self):
        left = PwlBucket(0, 0)
        left.add(1)
        right = PwlBucket(2, 2)
        right.add(3)
        merged = left.merged_with(right)
        assert (merged.beg, merged.end) == (0, 3)
        # All four points are collinear: zero error.
        assert merged.error == pytest.approx(0.0, abs=1e-12)

    def test_merge_error_without_mutation(self):
        left = PwlBucket(0, 0)
        right = PwlBucket(1, 100)
        err = left.merge_error_with(right)
        assert err == pytest.approx(0.0, abs=1e-12)  # two points: exact line
        assert left.end == 0 and right.end == 1

    def test_non_adjacent_raises(self):
        with pytest.raises(InvalidParameterError):
            PwlBucket(0, 0).merged_with(PwlBucket(5, 0))

    @given(
        st.lists(st.integers(-50, 50), min_size=1, max_size=30),
        st.lists(st.integers(-50, 50), min_size=1, max_size=30),
    )
    def test_merge_error_at_least_parts(self, left_vals, right_vals):
        left = PwlBucket(0, left_vals[0])
        for v in left_vals[1:]:
            left.add(v)
        right = PwlBucket(len(left_vals), right_vals[0])
        for v in right_vals[1:]:
            right.add(v)
        merged_error = left.merge_error_with(right)
        assert merged_error >= left.error - 1e-9
        assert merged_error >= right.error - 1e-9


class TestApproximateHullMode:
    def test_capped_bucket_tracks_exact_error(self):
        import random

        rng = random.Random(2)
        exact = PwlBucket(0, 0)
        capped = PwlBucket(0, 0, hull_epsilon=0.1)
        value = 0
        for i in range(1, 1200):
            value += rng.randint(-20, 20)
            exact.add(value)
            capped.add(value)
        assert capped.error <= exact.error + 1e-9
        assert capped.error >= 0.9 * exact.error - 1e-9

    def test_capped_memory_smaller_on_convex_data(self):
        exact = PwlBucket(0, 0)
        capped = PwlBucket(0, 0, hull_epsilon=0.2)
        for i in range(1, 800):
            exact.add(i * i)
            capped.add(i * i)
        assert capped.memory_bytes() < exact.memory_bytes()


class TestClosedPwlBucket:
    def test_from_bucket_freezes_fit(self):
        bucket = PwlBucket(0, 0)
        for i in range(1, 10):
            bucket.add(2 * i)
        closed = ClosedPwlBucket.from_bucket(bucket)
        assert (closed.beg, closed.end) == (0, 9)
        assert closed.error == pytest.approx(bucket.error)
        seg = closed.segment()
        assert seg.value_at(0) == pytest.approx(0.0)
        assert seg.value_at(9) == pytest.approx(18.0)
