"""Tests for the Haar wavelet synopsis baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.wavelet import (
    HaarWaveletSynopsis,
    _haar_decompose,
    _haar_reconstruct,
)
from repro.exceptions import InvalidParameterError


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            HaarWaveletSynopsis([], 4)

    def test_zero_budget(self):
        with pytest.raises(InvalidParameterError):
            HaarWaveletSynopsis([1, 2], 0)

    def test_errors_against_length_mismatch(self):
        synopsis = HaarWaveletSynopsis([1, 2, 3, 4], 4)
        with pytest.raises(InvalidParameterError):
            synopsis.errors_against([1, 2])


class TestTransformRoundtrip:
    @given(
        st.lists(
            st.integers(-100, 100), min_size=1, max_size=64
        ).filter(lambda v: (len(v) & (len(v) - 1)) == 0)
    )
    def test_full_coefficient_set_reconstructs_exactly(self, values):
        data = [float(v) for v in values]
        coeffs = _haar_decompose(data)
        tree = [0.0] * len(data)
        for index, (value, _weight) in coeffs.items():
            tree[index] = value
        out = _haar_reconstruct(tree, len(data))
        assert out == pytest.approx(data)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=70))
    def test_full_budget_synopsis_is_lossless(self, values):
        synopsis = HaarWaveletSynopsis(values, 2 * len(values))
        linf, l2 = synopsis.errors_against(values)
        assert linf == pytest.approx(0.0, abs=1e-9)
        assert l2 == pytest.approx(0.0, abs=1e-9)


class TestThresholding:
    def test_constant_series_needs_one_coefficient(self):
        synopsis = HaarWaveletSynopsis([7] * 32, 1)
        linf, _l2 = synopsis.errors_against([7] * 32)
        assert linf == pytest.approx(0.0)

    def test_step_series_needs_two_coefficients(self):
        values = [0] * 16 + [10] * 16
        synopsis = HaarWaveletSynopsis(values, 2)
        linf, _ = synopsis.errors_against(values)
        assert linf == pytest.approx(0.0)

    def test_budget_improves_error(self):
        values = [((i * 37) % 53) for i in range(64)]
        errors = []
        for budget in (2, 8, 32, 128):
            synopsis = HaarWaveletSynopsis(values, budget)
            errors.append(synopsis.errors_against(values)[1])
        assert errors == sorted(errors, reverse=True)

    def test_spike_is_smoothed_away(self):
        """Section 1.2's point: L2 thresholding can hide an L-inf spike."""
        values = [0.0] * 256
        values[100] = 100.0  # a single spike
        # A smooth, high-energy background competes for coefficients.
        values = [
            v + 50.0 * math.sin(i / 5.0) for i, v in enumerate(values)
        ]
        synopsis = HaarWaveletSynopsis(values, 8)
        linf, _ = synopsis.errors_against(values)
        # The spike residual dominates: wavelets miss it at this budget.
        assert linf > 40.0

    def test_non_power_of_two_length(self):
        values = [float(i % 9) for i in range(100)]
        synopsis = HaarWaveletSynopsis(values, 200)
        linf, _ = synopsis.errors_against(values)
        assert linf == pytest.approx(0.0, abs=1e-9)
        assert len(synopsis.reconstruct()) == 100
