"""Tests for the parallel shard-ingest executor (``repro.parallel``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import summarize
from repro.core.aggregation import merge_min_merge_summaries
from repro.core.min_merge import MinMergeHistogram
from repro.exceptions import InvalidParameterError
from repro.fleet import StreamFleet
from repro.harness.runner import run_streams
from repro.offline.optimal import optimal_error
from repro.parallel import (
    ParallelSummarizer,
    ShardPlan,
    available_cpus,
    fork_available,
    map_tasks,
    resolve_workers,
    summarize_parallel,
    tree_reduce,
)


def _state(summary):
    """Comparable snapshot: items, histogram geometry, error."""
    return (
        summary.items_seen,
        [(b.beg, b.end, b.left, b.right) for b in summary.histogram()],
        summary.error,
    )


def _stream(items: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 10, items)


class TestShardPlan:
    @pytest.mark.parametrize("total,workers", [(1, 1), (7, 3), (100, 4), (5, 8)])
    def test_contiguous_cover(self, total, workers):
        plan = ShardPlan.split(total, workers)
        assert plan.total == total
        assert len(plan) == min(workers, total)
        expected = 0
        for shard in plan:
            assert shard.start == expected
            assert shard.count >= 1
            expected = shard.stop
        assert expected == total

    def test_balanced_sizes(self):
        plan = ShardPlan.split(10, 3)
        assert [s.count for s in plan] == [4, 3, 3]

    def test_slice_views(self):
        data = list(range(11))
        plan = ShardPlan.split(len(data), 4)
        rejoined = []
        for shard in plan:
            rejoined.extend(data[shard.slice()])
        assert rejoined == data

    def test_rejects_empty_stream(self):
        with pytest.raises(InvalidParameterError):
            ShardPlan.split(0, 2)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(InvalidParameterError):
            ShardPlan.split(10, 0)


class TestWorkerSizing:
    def test_none_is_serial(self):
        assert resolve_workers(None, 10 ** 9, serial_cutoff=1) == 1

    def test_auto_stays_serial_below_cutoff(self):
        assert resolve_workers("auto", 1_000, serial_cutoff=1_000) == 1

    def test_auto_scales_with_items_and_cpus(self):
        got = resolve_workers("auto", 10 ** 9, serial_cutoff=1_000)
        assert got == available_cpus()

    def test_explicit_int_honored(self):
        assert resolve_workers(6, 100, serial_cutoff=1_000) == 6

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "many"])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            resolve_workers(bad, 100, serial_cutoff=1)


class TestMapTasks:
    def test_preserves_order(self):
        tasks = list(range(20))
        assert map_tasks(lambda x: x * x, tasks) == [x * x for x in tasks]

    def test_threaded_matches_serial(self):
        tasks = list(range(20))
        serial = map_tasks(lambda x: x + 1, tasks, workers=None)
        pooled = map_tasks(lambda x: x + 1, tasks, workers=3)
        auto = map_tasks(lambda x: x + 1, tasks, workers="auto")
        assert serial == pooled == auto

    def test_invalid_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            map_tasks(lambda x: x, [1, 2], workers=0)


class TestTreeReduce:
    @staticmethod
    def _children(values, pieces, buckets=4):
        plan = ShardPlan.split(len(values), pieces)
        children = []
        for shard in plan:
            child = MinMergeHistogram(buckets=buckets)
            child._n = shard.start
            child.extend(values[shard.slice()])
            children.append(child)
        return children

    def test_single_child_passthrough(self):
        child = MinMergeHistogram(buckets=4)
        child.extend([1, 2, 3])
        assert tree_reduce([child], merge_min_merge_summaries) is child

    @pytest.mark.parametrize("arity", [2, 3, 5])
    def test_keeps_guarantee_for_any_arity(self, arity):
        values = [int(v) for v in _stream(400)]
        root = tree_reduce(
            self._children(values, 5),
            merge_min_merge_summaries,
            buckets=4,
            arity=arity,
        )
        assert root.items_seen == len(values)
        assert root.error <= optimal_error(values, 4) + 1e-12

    def test_mapper_does_not_change_result(self):
        values = [int(v) for v in _stream(300, seed=5)]
        plain = tree_reduce(
            self._children(values, 4), merge_min_merge_summaries, buckets=4
        )
        # An eager list-mapper stands in for an executor map.
        mapped = tree_reduce(
            self._children(values, 4),
            merge_min_merge_summaries,
            buckets=4,
            mapper=lambda fn, groups: [fn(g) for g in groups],
        )
        assert _state(plain) == _state(mapped)

    def test_rejects_bad_arity_and_empty(self):
        with pytest.raises(InvalidParameterError):
            tree_reduce([], merge_min_merge_summaries)
        child = MinMergeHistogram(buckets=2)
        child.extend([1])
        with pytest.raises(InvalidParameterError):
            tree_reduce([child], merge_min_merge_summaries, arity=1)


class TestParallelSummarizer:
    @pytest.mark.parametrize("method,items", [("min-merge", 20_000), ("pwl-min-merge", 1_500)])
    def test_thread_backend_matches_reference(self, method, items):
        data = _stream(items)
        runner = ParallelSummarizer(
            method, buckets=16, workers=4, backend="thread", serial_cutoff=1
        )
        assert _state(runner.summarize(data)) == _state(runner.reference(data))

    @pytest.mark.skipif(not fork_available(), reason="needs POSIX fork")
    @pytest.mark.parametrize("method,items", [("min-merge", 20_000), ("pwl-min-merge", 1_500)])
    def test_process_backend_matches_reference(self, method, items):
        data = _stream(items, seed=2)
        runner = ParallelSummarizer(
            method, buckets=16, workers=3, backend="process", serial_cutoff=1
        )
        assert _state(runner.summarize(data)) == _state(runner.reference(data))

    def test_keeps_the_one_two_guarantee(self):
        data = _stream(3_000, seed=3)
        summary = ParallelSummarizer(
            "min-merge", buckets=8, workers=4, backend="thread", serial_cutoff=1
        ).summarize(data)
        assert summary.items_seen == len(data)
        assert len(summary.histogram()) <= 16
        assert summary.error <= optimal_error(data.tolist(), 8) + 1e-12

    def test_serial_when_auto_sees_a_small_stream(self):
        data = _stream(500, seed=4)
        runner = ParallelSummarizer("min-merge", buckets=8, workers="auto")
        assert len(runner.plan(len(data))) == 1
        serial = MinMergeHistogram(buckets=8)
        serial.extend(data)
        assert _state(runner.summarize(data)) == _state(serial)

    def test_list_input_supported(self):
        values = [int(v) for v in _stream(2_000, seed=6)]
        runner = ParallelSummarizer(
            "min-merge", buckets=8, workers=3, backend="thread", serial_cutoff=1
        )
        assert _state(runner.summarize(values)) == _state(runner.reference(values))

    def test_non_mergeable_method_rejected(self):
        with pytest.raises(InvalidParameterError, match="not merge-capable"):
            ParallelSummarizer("min-increment", buckets=8)

    def test_bad_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelSummarizer("min-merge", buckets=8, backend="gpu")

    def test_empty_stream_rejected(self):
        runner = ParallelSummarizer("min-merge", buckets=8)
        with pytest.raises(InvalidParameterError):
            runner.summarize(np.asarray([], dtype=np.int64))

    def test_summarize_parallel_shortcut(self):
        data = _stream(2_000, seed=8)
        summary = summarize_parallel(
            data, 8, workers=2, backend="thread", serial_cutoff=1
        )
        assert summary.items_seen == len(data)


class TestParallelMetrics:
    def test_per_shard_counters_aggregate(self):
        data = _stream(8_000, seed=9)
        runner = ParallelSummarizer(
            "min-merge", buckets=8, workers=4, backend="thread",
            serial_cutoff=1, metrics=True,
        )
        summary = runner.summarize(data)
        assert summary.metrics is not None
        totals = summary.metrics.counter_totals()
        # Every item was inserted in exactly one shard; the facade reports
        # the sum across shards plus the reduction tree's own merges.
        assert totals["inserts"] == len(data)
        assert totals["merges"] > 0

    @pytest.mark.skipif(not fork_available(), reason="needs POSIX fork")
    def test_counters_survive_the_process_boundary(self):
        data = _stream(8_000, seed=10)
        runner = ParallelSummarizer(
            "min-merge", buckets=8, workers=3, backend="process",
            serial_cutoff=1, metrics=True,
        )
        summary = runner.summarize(data)
        assert summary.metrics.counter_totals()["inserts"] == len(data)

    def test_serial_path_still_instruments(self):
        data = _stream(300, seed=11)
        runner = ParallelSummarizer(
            "min-merge", buckets=8, workers=None, metrics=True
        )
        summary = runner.summarize(data)
        assert summary.metrics.counter_totals()["inserts"] == len(data)


class TestApiWorkers:
    def test_workers_dispatch_matches_guarantee(self):
        data = _stream(2_000, seed=12)
        hist = summarize(data, 8, method="min-merge", workers=2)
        assert hist.beg == 0
        assert hist.end == len(data) - 1
        assert hist.error <= optimal_error(data.tolist(), 8) + 1e-12

    def test_workers_one_is_plain_serial(self):
        data = _stream(600, seed=13)
        assert (
            summarize(data, 8, method="min-merge", workers=1).segments
            == summarize(data, 8, method="min-merge").segments
        )

    @pytest.mark.parametrize("method", ["min-increment", "pwl", "optimal"])
    def test_non_mergeable_methods_rejected(self, method):
        with pytest.raises(InvalidParameterError, match="merge-capable"):
            summarize([1, 2, 3, 4], 2, method=method, workers=2)

    def test_class_method_rejected(self):
        with pytest.raises(InvalidParameterError, match="merge-capable"):
            summarize([1, 2, 3, 4], 2, method=MinMergeHistogram, workers=2)


class TestFleetExtendRows:
    @staticmethod
    def _rows(ticks=200, seed=14):
        rng = np.random.default_rng(seed)
        table = rng.integers(0, 100, (ticks, 3))
        return [
            {"a": int(r[0]), "b": int(r[1]), "c": int(r[2])} for r in table
        ]

    def test_parallel_rows_match_serial(self):
        rows = self._rows()
        serial = StreamFleet(buckets=8)
        serial.extend_rows(rows)
        pooled = StreamFleet(buckets=8)
        pooled.extend_rows(rows, workers=3)
        assert serial.ids == pooled.ids
        for stream_id in serial.ids:
            assert _state(serial.summary(stream_id)) == _state(
                pooled.summary(stream_id)
            )

    def test_shared_registry_totals(self):
        rows = self._rows(ticks=120, seed=15)
        fleet = StreamFleet(buckets=8, metrics=True)
        fleet.extend_rows(rows, workers="auto")
        assert fleet.items_seen == 3 * 120
        totals = fleet.metrics.counter_totals()
        assert totals["inserts"] == 3 * 120


class TestRunStreams:
    def test_grid_runs_in_job_order(self):
        values = [int(v) for v in _stream(1_000, seed=16)]
        jobs = [
            {"values": values, "algorithm": "min-merge", "buckets": 8,
             "name": "mm8"},
            {"values": values, "algorithm": "min-merge", "buckets": 4,
             "name": "mm4"},
            {"values": values, "algorithm": "min-increment", "buckets": 8,
             "universe": 1 << 10, "name": "mi8"},
        ]
        serial = run_streams(jobs)
        pooled = run_streams(jobs, workers=2)
        assert [r.algorithm for r in serial] == ["mm8", "mm4", "mi8"]
        assert [r.algorithm for r in pooled] == ["mm8", "mm4", "mi8"]
        for lhs, rhs in zip(serial, pooled):
            assert lhs.error == rhs.error
            assert lhs.buckets == rhs.buckets
            assert lhs.items == rhs.items
