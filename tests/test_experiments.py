"""Integration tests: the per-figure experiment drivers.

Each driver runs at a deliberately tiny scale and the tests assert the
*qualitative shapes* the paper reports -- who wins, what grows, what stays
flat -- which is exactly what EXPERIMENTS.md records at full scale.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    fig5_memory_vs_buckets,
    fig6_memory_vs_stream_size,
    fig7_error_vs_buckets,
    fig8_running_time,
    fig9_pwl_vs_serial,
    sliding_window_experiment,
    wavelet_comparison,
)

pytestmark = pytest.mark.slow


class TestFig5:
    @pytest.fixture(scope="class")
    def series(self):
        return fig5_memory_vs_buckets(
            datasets=("brownian",), bucket_sweep=(8, 16, 32), n=1500
        )

    def test_shape(self, series):
        assert len(series) == 1
        assert series[0].name == "fig5-brownian"
        assert [row["buckets"] for row in series[0].rows] == [8, 16, 32]

    def test_memory_ordering(self, series):
        """The paper's headline: REHIST far above both of ours.

        (MIN-MERGE vs MIN-INCREMENT can swap at tiny scales because dead
        ladder levels shrink MIN-INCREMENT -- the paper notes the same
        jumpiness in Figure 5.)
        """
        for row in series[0].rows:
            ours = max(row["min-merge"], row["min-increment"])
            assert row["rehist"] > 3 * ours

    def test_rehist_gap_grows_with_buckets(self, series):
        rows = series[0].rows
        gap_small = rows[0]["rehist"] / rows[0]["min-merge"]
        gap_large = rows[-1]["rehist"] / rows[-1]["min-merge"]
        assert gap_large > gap_small  # the extra factor of B

    def test_min_merge_linear_in_b(self, series):
        rows = series[0].rows
        assert rows[-1]["min-merge"] == pytest.approx(
            rows[0]["min-merge"] * 4, rel=0.2
        )


class TestFig6:
    @pytest.fixture(scope="class")
    def series(self):
        return fig6_memory_vs_stream_size(
            sizes=(500, 1000, 2000, 4000), buckets=8, max_rehist_n=2000
        )

    def test_our_memory_is_flat(self, series):
        mm = series.column("min-merge")
        mi = series.column("min-increment")
        assert max(mm) == min(mm)  # exactly flat once full
        assert max(mi) <= 2 * min(mi)

    def test_rehist_capped_sizes_are_none(self, series):
        assert series.rows[-1]["rehist"] is None
        assert series.rows[0]["rehist"] is not None


class TestFig7:
    @pytest.fixture(scope="class")
    def series(self):
        return fig7_error_vs_buckets(
            dataset="dow-jones", bucket_sweep=(8, 16, 32), n=1500
        )

    def test_optimal_is_lower_bound_for_b_bucket_algos(self, series):
        for row in series.rows:
            assert row["optimal"] <= row["rehist"] + 1e-9
            assert row["optimal"] <= row["min-increment"] + 1e-9

    def test_min_merge_brackets_between_optima(self, series):
        """Fig 7 charges MIN-MERGE its total buckets: at x buckets it is at
        least the x-bucket optimum (it cannot beat OPTIMAL at equal size)
        and at most the optimal error with half the buckets (Theorem 1)."""
        from repro.data.datasets import dataset_by_name
        from repro.offline.optimal import optimal_error

        values = dataset_by_name(series.meta["dataset"]).loader(
            series.meta["n"]
        )
        for row in series.rows:
            assert row["min-merge"] >= row["optimal"] - 1e-9
            half_opt = optimal_error(values, max(1, row["buckets"] // 2))
            assert row["min-merge"] <= half_opt + 1e-9

    def test_approximation_factor_much_better_than_guarantee(self, series):
        """Section 5.2: measured error well under the 1.2x guarantee."""
        for row in series.rows:
            if row["optimal"] > 0:
                assert row["min-increment"] <= 1.2 * row["optimal"] + 1e-9

    def test_error_decreases_with_buckets(self, series):
        optima = series.column("optimal")
        assert optima == sorted(optima, reverse=True)


class TestFig8:
    def test_time_grows_with_n(self):
        series = fig8_running_time(
            sizes=(1000, 4000), buckets=8, max_rehist_n=4000
        )
        assert series.rows[1]["min-merge"] > 0
        assert series.rows[1]["rehist"] > series.rows[1]["min-merge"]


class TestFig9:
    @pytest.fixture(scope="class")
    def series(self):
        return fig9_pwl_vs_serial(
            dataset="dow-jones", bucket_sweep=(8, 16), n=1000
        )

    def test_pwl_beats_serial(self, series):
        """Section 5.4: PWL reduces error at equal bucket count."""
        for row in series.rows:
            assert row["pwl-min-merge"] < row["serial-min-merge"]
            assert row["pwl-min-increment"] < row["serial-min-increment"]

    def test_improvement_in_reported_band(self, series):
        """Roughly 20-50% better on trending data (paper: 30-40%)."""
        gains = [
            1.0 - row["pwl-min-merge"] / row["serial-min-merge"]
            for row in series.rows
        ]
        assert all(0.05 < g < 0.7 for g in gains)


class TestSlidingWindow:
    def test_guarantee_and_flat_memory(self):
        series = sliding_window_experiment(
            dataset="brownian", n=4000, windows=(256, 512, 1024), buckets=8
        )
        for row in series.rows:
            assert row["error"] <= 1.2 * row["optimal"] + 1e-9
            assert row["buckets-used"] <= 9
        memories = series.column("memory-bytes")
        assert max(memories) <= 2 * min(memories)


class TestWavelet:
    def test_linf_weakness_shown(self):
        series = wavelet_comparison(dataset="merced", n=1024, budgets=(16, 64))
        for row in series.rows:
            # Same storage budget: the histogram wins on L-infinity.
            assert row["histogram-linf"] < row["wavelet-linf"]
