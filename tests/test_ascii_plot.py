"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.harness.ascii_plot import ascii_chart


class TestValidation:
    def test_empty_values(self):
        with pytest.raises(InvalidParameterError):
            ascii_chart([])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], [1, 2, 3])

    def test_tiny_dimensions(self):
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], width=1)
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], height=1)


class TestRendering:
    def test_dimensions(self):
        chart = ascii_chart(list(range(100)), width=40, height=10, title="t")
        lines = chart.splitlines()
        # title + height rows + axis + index labels.
        assert len(lines) == 1 + 10 + 2
        body = lines[1:11]
        assert all(line.endswith("|") for line in body)
        assert all(len(line) == len(body[0]) for line in body)

    def test_y_labels_show_range(self):
        chart = ascii_chart([5, 10, 20])
        assert "20" in chart
        assert "5" in chart

    def test_constant_series(self):
        chart = ascii_chart([7, 7, 7, 7], width=8, height=4)
        assert "." in chart

    def test_monotone_ramp_is_diagonal(self):
        chart = ascii_chart(list(range(64)), width=16, height=8)
        rows = [line.split("|")[1] for line in chart.splitlines() if "|" in line]
        first_marks = [row.find(".") for row in rows if "." in row]
        # The leftmost data mark moves right as we go up the chart bottom-up
        # reversed: top rows hold the large (late) values.
        assert first_marks == sorted(first_marks, reverse=True)

    def test_reconstruction_overlay(self):
        values = [0, 0, 10, 10]
        approx = [0.0, 0.0, 10.0, 10.0]
        chart = ascii_chart(values, approx, width=8, height=6)
        assert "@" in chart  # overlap marker
        assert "reconstruction" in chart

    def test_divergent_reconstruction_shows_hash(self):
        values = [0] * 32
        approx = [5.0] * 32
        chart = ascii_chart(values, approx, width=16, height=8)
        assert "#" in chart

    def test_deterministic(self):
        values = [((i * 31) % 17) for i in range(80)]
        assert ascii_chart(values) == ascii_chart(values)


class TestCliPlot:
    def test_plot_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "plot",
                "--dataset", "brownian",
                "--algorithm", "min-merge",
                "-B", "8",
                "-n", "512",
                "--width", "40",
                "--height", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "error=" in out
        assert "reconstruction" in out

    def test_plot_sliding_window_clips(self, capsys):
        from repro.cli import main

        assert main(
            [
                "plot",
                "--algorithm", "sliding-window",
                "-B", "4",
                "-n", "400",
                "--width", "30",
                "--height", "6",
            ]
        ) == 0
        assert "sliding-window" in capsys.readouterr().out
