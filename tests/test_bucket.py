"""Unit tests for the serial-histogram bucket."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bucket import Bucket
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_singleton(self):
        b = Bucket.singleton(7, 42)
        assert (b.beg, b.end, b.min, b.max) == (7, 7, 42, 42)
        assert b.count == 1
        assert b.error == 0.0
        assert b.representative == 42.0

    def test_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            Bucket(5, 4, 0, 1)

    def test_invalid_min_max(self):
        with pytest.raises(InvalidParameterError):
            Bucket(0, 1, 10, 5)

    def test_repr_contains_fields(self):
        assert "beg=1" in repr(Bucket(1, 2, 3, 4))


class TestErrorAndRepresentative:
    def test_midpoint_representative(self):
        b = Bucket(0, 3, 10, 20)
        assert b.representative == 15.0
        assert b.error == 5.0

    def test_error_is_half_range(self):
        b = Bucket(0, 0, -3, 9)
        assert b.error == 6.0

    @given(st.integers(-1000, 1000), st.integers(0, 500))
    def test_representative_minimizes_linf(self, lo, spread):
        hi = lo + spread
        b = Bucket(0, 1, lo, hi)
        rep = b.representative
        # The midpoint's worst deviation from {lo, hi} is the half-range;
        # any other representative does worse on one of the extremes.
        assert max(abs(lo - rep), abs(hi - rep)) == b.error
        for other in (rep - 1, rep + 1, lo, hi):
            assert max(abs(lo - other), abs(hi - other)) >= b.error


class TestExtend:
    def test_extend_updates_range_and_extremes(self):
        b = Bucket.singleton(0, 5)
        b.extend(9)
        assert (b.beg, b.end, b.min, b.max) == (0, 1, 5, 9)
        b.extend(3)
        assert (b.beg, b.end, b.min, b.max) == (0, 2, 3, 9)

    def test_extend_with_interior_value_keeps_extremes(self):
        b = Bucket(0, 1, 0, 10)
        b.extend(5)
        assert (b.min, b.max) == (0, 10)

    def test_would_extend_error_does_not_mutate(self):
        b = Bucket.singleton(0, 5)
        err = b.would_extend_error(15)
        assert err == 5.0
        assert (b.beg, b.end, b.min, b.max) == (0, 0, 5, 5)

    @given(
        st.integers(-100, 100),
        st.integers(-100, 100),
        st.integers(-100, 100),
    )
    def test_would_extend_matches_actual_extend(self, a, b_val, c):
        lo, hi = min(a, b_val), max(a, b_val)
        bucket = Bucket(0, 1, lo, hi)
        predicted = bucket.would_extend_error(c)
        bucket.extend(c)
        assert bucket.error == predicted


class TestMerge:
    def test_merged_with_adjacent(self):
        left = Bucket(0, 2, 1, 5)
        right = Bucket(3, 7, 0, 4)
        merged = left.merged_with(right)
        assert (merged.beg, merged.end, merged.min, merged.max) == (0, 7, 0, 5)

    def test_merge_error_matches_merged(self):
        left = Bucket(0, 2, 1, 5)
        right = Bucket(3, 7, 0, 4)
        assert left.merge_error_with(right) == left.merged_with(right).error

    def test_non_adjacent_merge_raises(self):
        left = Bucket(0, 2, 1, 5)
        gap = Bucket(4, 7, 0, 4)
        with pytest.raises(InvalidParameterError):
            left.merged_with(gap)

    def test_merge_error_is_at_least_each_side(self):
        left = Bucket(0, 2, 1, 5)
        right = Bucket(3, 7, 0, 4)
        merged_error = left.merge_error_with(right)
        assert merged_error >= left.error
        assert merged_error >= right.error


class TestEquality:
    def test_equal_buckets(self):
        assert Bucket(0, 1, 2, 3) == Bucket(0, 1, 2, 3)
        assert hash(Bucket(0, 1, 2, 3)) == hash(Bucket(0, 1, 2, 3))

    def test_unequal_buckets(self):
        assert Bucket(0, 1, 2, 3) != Bucket(0, 1, 2, 4)

    def test_not_equal_to_other_types(self):
        assert Bucket(0, 1, 2, 3) != (0, 1, 2, 3)
