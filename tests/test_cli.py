"""Tests for the repro-histogram command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

pytestmark = pytest.mark.slow


class TestListDatasets:
    def test_lists_all_three(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("dow-jones", "merced", "brownian"):
            assert name in out


class TestSummarize:
    def test_min_merge_summary(self, capsys):
        code = main(
            [
                "summarize",
                "--dataset", "brownian",
                "--algorithm", "min-merge",
                "-B", "8",
                "-n", "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "memory" in out
        assert "1,000 points" in out

    def test_sliding_window_defaults_window(self, capsys):
        code = main(
            [
                "summarize",
                "--algorithm", "sliding-window",
                "-B", "4",
                "-n", "400",
            ]
        )
        assert code == 0
        assert "sliding-window" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["summarize", "--algorithm", "t-digest"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["make-coffee"])


class TestPlan:
    def test_plan_command(self, capsys):
        code = main(
            [
                "plan",
                "--dataset", "brownian",
                "-n", "1024",
                "--target-error", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "min-merge" in out
        assert "buckets needed" in out

    def test_plan_requires_target(self):
        with pytest.raises(SystemExit):
            main(["plan", "--dataset", "brownian"])


class TestFigureCommands:
    def test_fig5_prints_tables(self, capsys, monkeypatch):
        from repro.harness import experiments

        original = experiments.fig5_memory_vs_buckets
        monkeypatch.setattr(
            experiments,
            "fig5_memory_vs_buckets",
            lambda paper_scale=False: original(
                datasets=("brownian",), bucket_sweep=(8,), n=600
            ),
        )
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "rehist" in out
        assert "min-merge" in out

    def test_fig6_prints_table(self, capsys, monkeypatch):
        from repro.harness import experiments

        original = experiments.fig6_memory_vs_stream_size
        monkeypatch.setattr(
            experiments,
            "fig6_memory_vs_stream_size",
            lambda paper_scale=False: original(
                sizes=(300, 600), buckets=4, max_rehist_n=600
            ),
        )
        assert main(["fig6"]) == 0
        assert "min-increment" in capsys.readouterr().out

    def test_fig8_paper_flag_parses(self, capsys, monkeypatch):
        from repro.harness import experiments

        captured = {}
        original = experiments.fig8_running_time

        def spy(paper_scale=False):
            captured["paper_scale"] = paper_scale
            return original(sizes=(300,), buckets=4, max_rehist_n=0)

        monkeypatch.setattr(experiments, "fig8_running_time", spy)
        assert main(["fig8", "--paper"]) == 0
        assert captured["paper_scale"] is True

    def test_fig9_prints_table(self, capsys, monkeypatch):
        # Shrink the driver for test speed (capture the original before
        # patching -- cli and this test share the experiments module).
        from repro.harness import experiments

        original = experiments.fig9_pwl_vs_serial
        monkeypatch.setattr(
            experiments,
            "fig9_pwl_vs_serial",
            lambda paper_scale=False: original(bucket_sweep=(8,), n=400),
        )
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "pwl-min-merge" in out

    def test_sliding_window_command(self, capsys, monkeypatch):
        from repro.harness import experiments

        original = experiments.sliding_window_experiment
        monkeypatch.setattr(
            experiments,
            "sliding_window_experiment",
            lambda: original(n=1200, windows=(256,), buckets=4),
        )
        assert main(["sliding-window"]) == 0
        assert "window" in capsys.readouterr().out

    def test_wavelet_command(self, capsys, monkeypatch):
        from repro.harness import experiments

        original = experiments.wavelet_comparison
        monkeypatch.setattr(
            experiments,
            "wavelet_comparison",
            lambda: original(n=512, budgets=(8,)),
        )
        assert main(["wavelet"]) == 0
        assert "wavelet-linf" in capsys.readouterr().out
