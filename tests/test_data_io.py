"""Tests for the file loaders."""

from __future__ import annotations

import pytest

from repro.data.io import load_quantized, load_series
from repro.exceptions import InvalidParameterError


@pytest.fixture
def single_column_file(tmp_path):
    path = tmp_path / "series.txt"
    path.write_text("10\n20\n\n30\n")
    return path


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "prices.csv"
    path.write_text(
        "date,close,volume\n"
        "1900-01-02,68.13,100\n"
        "1900-01-03,67.21,150\n"
        "1900-01-04,68.50,90\n"
    )
    return path


class TestLoadSeries:
    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_series(tmp_path / "nope.csv")

    def test_single_column(self, single_column_file):
        assert load_series(single_column_file) == [10.0, 20.0, 30.0]

    def test_named_column(self, csv_file):
        assert load_series(csv_file, column="close") == [68.13, 67.21, 68.50]

    def test_indexed_column(self, csv_file):
        values = load_series(csv_file, column=1, skip_rows=1)
        assert values == [68.13, 67.21, 68.50]

    def test_unknown_column_name(self, csv_file):
        with pytest.raises(InvalidParameterError) as err:
            load_series(csv_file, column="open")
        assert "open" in str(err.value)

    def test_limit(self, csv_file):
        assert load_series(csv_file, column="close", limit=2) == [68.13, 67.21]

    def test_non_numeric_cell(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\ntwo\n3\n")
        with pytest.raises(InvalidParameterError) as err:
            load_series(path)
        assert "row 2" in str(err.value)

    def test_short_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(InvalidParameterError):
            load_series(path, column="b")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(InvalidParameterError):
            load_series(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "tabs.tsv"
        path.write_text("1\t9\n2\t8\n")
        assert load_series(path, column=1, delimiter="\t") == [9.0, 8.0]


class TestLoadQuantized:
    def test_quantizes_to_domain(self, csv_file):
        values = load_quantized(csv_file, column="close", universe=256)
        assert all(isinstance(v, int) and 0 <= v < 256 for v in values)
        # Order of magnitudes preserved: min maps to 0, max to 255.
        assert min(values) == 0
        assert max(values) == 255

    def test_end_to_end_with_summarize(self, csv_file):
        from repro import summarize

        values = load_quantized(csv_file, column="close", universe=1 << 15)
        hist = summarize(values, 2)
        assert hist.coverage == 3
