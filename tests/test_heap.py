"""Unit and property tests for the addressable min-heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures.heap import AddressableMinHeap


class TestBasics:
    def test_empty_heap(self):
        heap = AddressableMinHeap()
        assert len(heap) == 0
        assert not heap
        with pytest.raises(IndexError):
            heap.peek_min()
        with pytest.raises(IndexError):
            heap.pop_min()

    def test_push_pop_single(self):
        heap = AddressableMinHeap()
        handle = heap.push(5.0, "a")
        assert handle in heap
        assert heap.peek_min() == (5.0, "a")
        assert heap.pop_min() == (5.0, "a")
        assert handle not in heap
        assert len(heap) == 0

    def test_pop_order_is_sorted(self):
        heap = AddressableMinHeap()
        keys = [7, 1, 9, 3, 3, 0, 12, -4]
        for k in keys:
            heap.push(k)
        popped = [heap.pop_min()[0] for _ in range(len(keys))]
        assert popped == sorted(keys)

    def test_items_carry_payloads(self):
        heap = AddressableMinHeap()
        heap.push(2, "two")
        heap.push(1, "one")
        assert heap.pop_min() == (1, "one")
        assert heap.pop_min() == (2, "two")

    def test_peek_min_handle(self):
        heap = AddressableMinHeap()
        heap.push(5, "five")
        h1 = heap.push(1, "one")
        assert heap.peek_min_handle() == h1

    def test_key_of_and_item_of(self):
        heap = AddressableMinHeap()
        handle = heap.push(4, "payload")
        heap.push(1)
        assert heap.key_of(handle) == 4
        assert heap.item_of(handle) == "payload"


class TestAddressableOps:
    def test_update_decrease_moves_to_top(self):
        heap = AddressableMinHeap()
        heap.push(1)
        handle = heap.push(10, "big")
        heap.update(handle, 0)
        assert heap.peek_min() == (0, "big")
        heap.check_invariant()

    def test_update_increase_moves_down(self):
        heap = AddressableMinHeap()
        handle = heap.push(0, "was-min")
        heap.push(5)
        heap.update(handle, 10)
        assert heap.peek_min()[0] == 5
        heap.check_invariant()

    def test_remove_middle_entry(self):
        heap = AddressableMinHeap()
        handles = [heap.push(k) for k in (3, 1, 4, 1, 5, 9, 2, 6)]
        assert heap.remove(handles[2]) == (4, None)
        assert handles[2] not in heap
        popped = [heap.pop_min()[0] for _ in range(len(heap))]
        assert popped == sorted([3, 1, 1, 5, 9, 2, 6])

    def test_remove_last_slot(self):
        heap = AddressableMinHeap()
        heap.push(1)
        handle = heap.push(99)  # definitely the last heap slot
        heap.remove(handle)
        assert len(heap) == 1
        heap.check_invariant()

    def test_stale_handle_raises(self):
        heap = AddressableMinHeap()
        handle = heap.push(1)
        heap.pop_min()
        with pytest.raises(KeyError):
            heap.update(handle, 2)
        with pytest.raises(KeyError):
            heap.remove(handle)

    def test_handles_are_unique_across_lifetime(self):
        heap = AddressableMinHeap()
        seen = set()
        for i in range(100):
            handle = heap.push(i % 7)
            assert handle not in seen
            seen.add(handle)
            if i % 3 == 0:
                heap.pop_min()


class TestRandomizedAgainstReference:
    def test_mixed_operations_match_reference(self):
        rng = random.Random(1234)
        heap = AddressableMinHeap()
        reference: dict[int, float] = {}  # handle -> key
        for step in range(3000):
            op = rng.random()
            if op < 0.5 or not reference:
                key = rng.uniform(-100, 100)
                handle = heap.push(key)
                reference[handle] = key
            elif op < 0.7:
                key, _item = heap.pop_min()
                expected = min(reference.values())
                assert key == expected
                # Remove one matching handle from the reference.
                for h, k in list(reference.items()):
                    if k == key and h not in heap:
                        del reference[h]
                        break
            elif op < 0.85:
                handle = rng.choice(list(reference))
                new_key = rng.uniform(-100, 100)
                heap.update(handle, new_key)
                reference[handle] = new_key
            else:
                handle = rng.choice(list(reference))
                heap.remove(handle)
                del reference[handle]
            if step % 100 == 0:
                heap.check_invariant()
        assert len(heap) == len(reference)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
def test_heapsort_property(keys):
    heap = AddressableMinHeap()
    for k in keys:
        heap.push(k)
    heap.check_invariant()
    out = [heap.pop_min()[0] for _ in range(len(keys))]
    assert out == sorted(keys)


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(-50, 50)),
        min_size=1,
        max_size=300,
    )
)
def test_interleaved_ops_never_break_invariant(ops):
    heap = AddressableMinHeap()
    live: list[int] = []
    for kind, key in ops:
        if kind == 0 or not live:
            live.append(heap.push(key))
        elif kind == 1:
            k, _ = heap.pop_min()
            live = [h for h in live if h in heap]
        else:
            handle = live[abs(key) % len(live)]
            heap.update(handle, key)
    heap.check_invariant()
