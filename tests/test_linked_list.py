"""Unit tests for the doubly-linked bucket list."""

from __future__ import annotations

import pytest

from repro.structures.linked_list import BucketList


class TestAppend:
    def test_empty_list(self):
        lst = BucketList()
        assert len(lst) == 0
        assert not lst
        assert lst.head is None
        assert lst.tail is None
        assert lst.buckets() == []

    def test_single_append(self):
        lst = BucketList()
        node = lst.append("a")
        assert len(lst) == 1
        assert lst.head is node
        assert lst.tail is node
        assert node.prev is None
        assert node.next is None

    def test_append_order_preserved(self):
        lst = BucketList()
        for item in "abcde":
            lst.append(item)
        assert lst.buckets() == list("abcde")
        assert [n.bucket for n in lst] == list("abcde")

    def test_links_are_consistent(self):
        lst = BucketList()
        nodes = [lst.append(i) for i in range(5)]
        for left, right in zip(nodes, nodes[1:]):
            assert left.next is right
            assert right.prev is left


class TestRemove:
    def test_remove_head(self):
        lst = BucketList()
        nodes = [lst.append(i) for i in range(3)]
        lst.remove(nodes[0])
        assert lst.head is nodes[1]
        assert nodes[1].prev is None
        assert lst.buckets() == [1, 2]

    def test_remove_tail(self):
        lst = BucketList()
        nodes = [lst.append(i) for i in range(3)]
        lst.remove(nodes[2])
        assert lst.tail is nodes[1]
        assert nodes[1].next is None
        assert lst.buckets() == [0, 1]

    def test_remove_middle(self):
        lst = BucketList()
        nodes = [lst.append(i) for i in range(3)]
        lst.remove(nodes[1])
        assert nodes[0].next is nodes[2]
        assert nodes[2].prev is nodes[0]
        assert lst.buckets() == [0, 2]

    def test_remove_only_element(self):
        lst = BucketList()
        node = lst.append("x")
        lst.remove(node)
        assert len(lst) == 0
        assert lst.head is None and lst.tail is None

    def test_removed_node_is_detached(self):
        lst = BucketList()
        lst.append(1)
        node = lst.append(2)
        lst.append(3)
        lst.remove(node)
        assert node.prev is None and node.next is None

    def test_popleft(self):
        lst = BucketList()
        for i in range(3):
            lst.append(i)
        assert lst.popleft().bucket == 0
        assert lst.popleft().bucket == 1
        assert len(lst) == 1

    def test_popleft_empty_raises(self):
        with pytest.raises(IndexError):
            BucketList().popleft()

    def test_interleaved_append_remove(self):
        lst = BucketList()
        nodes = {}
        for i in range(20):
            nodes[i] = lst.append(i)
            if i % 3 == 2:
                lst.remove(nodes[i - 1])
        expected = [i for i in range(20) if not (i % 3 == 1 and i + 1 < 20)]
        assert lst.buckets() == expected
