"""Tests for the opt-in instrumentation layer (repro.observability)."""

from __future__ import annotations

import json
import random

import pytest

from repro import MetricsRegistry, SummaryMetrics, restore, state_dict
from repro.baselines.gk_quantile import GKQuantileSketch
from repro.baselines.rehist import RehistHistogram
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.exceptions import InvalidParameterError
from repro.fleet import StreamFleet
from repro.harness.runner import make_algorithm, run_stream
from repro.harness.reporting import render_metrics
from repro.observability import resolve_metrics
from repro.observability.metrics import LatencyRecorder


def _counters(summary) -> dict:
    return summary.metrics.snapshot()["counters"]


class TestRegistryPrimitives:
    def test_counter_create_or_get(self):
        registry = MetricsRegistry()
        c = registry.counter("inserts")
        c.incr()
        c.incr(4)
        assert registry.counter("inserts") is c
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_explicit_and_sourced(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(3.5)
        assert g.value == 3.5
        box = {"n": 7}
        sourced = registry.gauge("depth", source=lambda: box["n"])
        assert sourced is g
        assert g.value == 7
        box["n"] = 9
        assert registry.snapshot()["gauges"]["depth"] == 9

    def test_name_clash_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(InvalidParameterError, match="different instrument"):
            registry.gauge("x")
        with pytest.raises(InvalidParameterError, match="different instrument"):
            registry.latency("x")

    def test_latency_recorder_statistics(self):
        rec = LatencyRecorder("op", buckets=8)
        for us in [10, 20, 30, 40, 1000]:
            rec.record(us * 1e-6)
        snap = rec.snapshot()
        assert snap["count"] == 5
        assert snap["min_us"] == pytest.approx(10.0)
        assert snap["max_us"] == pytest.approx(1000.0)
        assert snap["mean_us"] == pytest.approx(220.0)
        assert snap["p50_us"] <= snap["p99_us"] <= snap["max_us"]
        assert snap["timeline_max_error_us"] >= 0.0
        with pytest.raises(InvalidParameterError):
            rec.quantile(1.5)

    def test_empty_latency_snapshot(self):
        rec = LatencyRecorder("op")
        assert rec.snapshot() == {"count": 0}
        assert rec.quantile(0.5) == 0.0
        assert rec.mean == 0.0

    def test_registry_reset_and_json(self):
        registry = MetricsRegistry()
        registry.counter("a").incr(3)
        registry.latency("lat").record(1e-6)
        payload = json.loads(registry.to_json())
        assert payload["counters"]["a"] == 3
        assert payload["latencies"]["lat"]["count"] == 1
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 0
        assert snap["latencies"]["lat"] == {"count": 0}
        assert len(registry) == 2

    def test_resolve_metrics_normalization(self):
        assert resolve_metrics(None) is None
        assert resolve_metrics(False) is None
        assert isinstance(resolve_metrics(True), SummaryMetrics)
        registry = MetricsRegistry()
        facade = resolve_metrics(registry, prefix="p.")
        assert facade.registry is registry
        assert facade.prefix == "p."
        assert resolve_metrics(facade) is facade
        with pytest.raises(InvalidParameterError, match="metrics must be"):
            resolve_metrics("yes")


class TestSummaryEvents:
    def test_min_merge_counts_inserts_and_merges(self):
        summary = MinMergeHistogram(buckets=4, metrics=True)
        rng = random.Random(7)
        n = 500
        summary.extend(rng.random() for _ in range(n))
        counters = _counters(summary)
        assert counters["inserts"] == n
        # Steady state: every insert past the working budget forces a merge.
        assert counters["merges"] == n - summary.working_buckets
        snap = summary.metrics.snapshot()
        assert snap["latencies"]["insert_latency"]["count"] == n
        assert snap["gauges"]["bucket_count"] == summary.bucket_count
        assert snap["gauges"]["memory_bytes"] == summary.memory_bytes()

    def test_min_increment_counts_promotions(self):
        summary = MinIncrementHistogram(
            buckets=4, epsilon=0.5, universe=1 << 10, metrics=True
        )
        rng = random.Random(11)
        summary.extend(rng.randrange(1 << 10) for _ in range(800))
        counters = _counters(summary)
        assert counters["inserts"] == 800
        assert counters["promotions"] > 0
        assert counters["merges"] > 0
        # Promotions is exactly the number of dead ladder levels.
        assert counters["promotions"] == len(summary.ladder) - len(
            summary.alive_levels
        )

    def test_batched_min_increment_counts_flushes(self):
        summary = MinIncrementHistogram(
            buckets=4,
            epsilon=0.5,
            universe=1 << 10,
            batch_size=64,
            metrics=True,
        )
        rng = random.Random(13)
        summary.extend(rng.randrange(1 << 10) for _ in range(640))
        counters = _counters(summary)
        assert counters["inserts"] == 640
        assert counters["flushes"] >= 640 // 64
        # Buffered values count on arrival, before any flush drains them.
        assert summary.items_seen == 640

    def test_sliding_window_counts_evictions(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.5, universe=1 << 8, window=32, metrics=True
        )
        rng = random.Random(17)
        summary.extend(rng.randrange(1 << 8) for _ in range(400))
        counters = _counters(summary)
        assert counters["inserts"] == 400
        assert counters["evictions"] > 0

    def test_rehist_and_gk_record_events(self):
        rng = random.Random(19)
        values = [rng.randrange(1 << 10) for _ in range(300)]
        rehist = RehistHistogram(
            buckets=4, epsilon=0.5, universe=1 << 10, metrics=True
        )
        rehist.extend(values)
        assert _counters(rehist)["inserts"] == 300
        gk = GKQuantileSketch(epsilon=0.05, metrics=True)
        for v in values:
            gk.insert(v)
        counters = _counters(gk)
        assert counters["inserts"] == 300
        assert counters["flushes"] > 0  # compress sweeps ran

    def test_disabled_summaries_have_no_metrics(self):
        assert MinMergeHistogram(buckets=4).metrics is None
        assert MinMergeHistogram(buckets=4, metrics=False).metrics is None
        summary = MinMergeHistogram(buckets=4)
        summary.extend([1, 2, 3])
        assert summary.metrics is None

    def test_shared_registry_aggregates_across_summaries(self):
        registry = MetricsRegistry()
        a = MinMergeHistogram(buckets=4, metrics=registry)
        b = MinMergeHistogram(buckets=4, metrics=registry)
        a.extend([1, 2, 3])
        b.extend([4, 5])
        assert registry.snapshot()["counters"]["inserts"] == 5


class TestFleetMetrics:
    def test_fleet_shares_one_registry_across_streams(self):
        fleet = StreamFleet(buckets=4, metrics=True)
        rng = random.Random(23)
        for _ in range(200):
            fleet.insert("a", rng.random())
            fleet.insert("b", rng.random())
        snap = fleet.metrics.snapshot()
        assert snap["counters"]["inserts"] == 400
        assert snap["gauges"]["streams"] == 2
        assert snap["gauges"]["memory_bytes"] == fleet.memory_bytes()

    def test_fleet_remove_stream_counts_an_eviction(self):
        fleet = StreamFleet(buckets=4, metrics=True)
        fleet.insert("a", 1.0)
        fleet.insert("b", 2.0)
        fleet.remove_stream("a")
        snap = fleet.metrics.snapshot()
        assert snap["counters"]["evictions"] == 1
        assert snap["gauges"]["streams"] == 1


class TestHarnessAndCli:
    def test_run_stream_snapshots_metrics(self):
        algorithm = make_algorithm(
            "min-increment",
            buckets=4,
            epsilon=0.5,
            universe=1 << 10,
            metrics=True,
        )
        rng = random.Random(29)
        values = [rng.randrange(1 << 10) for _ in range(256)]
        result = run_stream(algorithm, values)
        assert result.metrics is not None
        assert result.metrics["counters"]["inserts"] == 256

    def test_run_stream_without_metrics_is_none(self):
        algorithm = make_algorithm(
            "min-merge", buckets=4, epsilon=0.5, universe=1 << 10
        )
        result = run_stream(algorithm, [1.0, 2.0, 3.0])
        assert result.metrics is None

    def test_render_metrics_tables(self):
        summary = MinMergeHistogram(buckets=4, metrics=True)
        summary.extend(range(100))
        text = render_metrics(summary.metrics.snapshot())
        assert "inserts" in text
        assert "100" in text
        assert "insert_latency" in text
        assert render_metrics({}) == "metrics: (empty)"

    def test_cli_stats_smoke(self, capsys):
        from repro.cli import main

        main(
            [
                "stats",
                "--dataset",
                "brownian",
                "--algorithm",
                "min-increment",
                "-B",
                "8",
                "-n",
                "512",
            ]
        )
        out = capsys.readouterr().out
        assert "counters" in out
        assert "inserts" in out

    def test_cli_stats_json(self, capsys):
        from repro.cli import main

        main(["stats", "-B", "8", "-n", "256", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["inserts"] == 256


class TestCheckpointInteraction:
    def test_restore_returns_uninstrumented_summary(self):
        rng = random.Random(31)
        values = [rng.randrange(1 << 10) for _ in range(300)]
        summary = MinIncrementHistogram(
            buckets=4, epsilon=0.5, universe=1 << 10, metrics=True
        )
        summary.extend(values)
        assert summary.metrics is not None
        restored = restore(state_dict(summary))
        # Metrics are process-local state: never serialized, reset on restore.
        assert restored.metrics is None
        # The algorithm state itself round-trips exactly.
        assert restored.items_seen == summary.items_seen
        assert restored.error == summary.error
        more = [rng.randrange(1 << 10) for _ in range(100)]
        summary.extend(more)
        restored.extend(more)
        assert restored.error == summary.error
        assert [s.left for s in restored.histogram().segments] == [
            s.left for s in summary.histogram().segments
        ]

    def test_checkpoint_payload_contains_no_metrics(self):
        summary = MinMergeHistogram(buckets=4, metrics=True)
        summary.extend(range(50))
        payload = json.dumps(state_dict(summary))
        assert "metrics" not in payload
        assert "latency" not in payload
