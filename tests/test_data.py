"""Tests for generators, datasets, and quantization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.datasets import (
    DEFAULT_UNIVERSE,
    brownian,
    dataset_by_name,
    dow_jones,
    list_datasets,
    merced,
)
from repro.data.generators import (
    ar1_process,
    brownian_walk,
    mixture_stream,
    sine_wave,
    spike_train,
    step_function,
    uniform_noise,
)
from repro.data.quantize import quantize_to_universe
from repro.exceptions import InvalidParameterError


class TestQuantize:
    def test_empty(self):
        assert quantize_to_universe([], 16) == []

    def test_invalid_universe(self):
        with pytest.raises(InvalidParameterError):
            quantize_to_universe([1.0], 1)

    def test_constant_maps_to_midpoint(self):
        assert quantize_to_universe([3.0, 3.0], 100) == [50, 50]

    def test_endpoints_map_to_domain_edges(self):
        out = quantize_to_universe([0.0, 1.0], 256)
        assert out == [0, 255]

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100
        ),
        st.integers(2, 1 << 15),
    )
    def test_output_in_domain_and_monotone(self, values, universe):
        out = quantize_to_universe(values, universe)
        assert len(out) == len(values)
        assert all(0 <= v < universe for v in out)
        # Order-preserving: if a <= b then q(a) <= q(b).
        pairs = sorted(zip(values, out))
        quantized_in_order = [q for _v, q in pairs]
        assert quantized_in_order == sorted(quantized_in_order)


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            brownian_walk,
            uniform_noise,
            # sine_wave is seed-independent unless noisy; test the noisy form.
            lambda n, seed: sine_wave(n, seed=seed, noise=0.5),
            step_function,
            spike_train,
            ar1_process,
            mixture_stream,
        ],
    )
    def test_length_and_determinism(self, generator):
        a = generator(257, seed=5)
        b = generator(257, seed=5)
        c = generator(257, seed=6)
        assert len(a) == 257
        assert a == b
        assert a != c

    @pytest.mark.parametrize(
        "generator",
        [brownian_walk, uniform_noise, sine_wave, step_function, spike_train,
         ar1_process, mixture_stream],
    )
    def test_rejects_empty_length(self, generator):
        with pytest.raises(InvalidParameterError):
            generator(0)

    def test_uniform_noise_bounds(self):
        values = uniform_noise(500, seed=1, low=2.0, high=3.0)
        assert all(2.0 <= v < 3.0 for v in values)
        with pytest.raises(InvalidParameterError):
            uniform_noise(5, low=3.0, high=2.0)

    def test_step_function_levels(self):
        values = step_function(100, steps=4, jitter=0.0)
        assert len(set(values)) <= 4
        with pytest.raises(InvalidParameterError):
            step_function(10, steps=0)

    def test_spike_train_has_spikes(self):
        values = spike_train(
            2000, seed=2, spike_probability=0.01, spike_height=50.0, noise=0.1
        )
        assert max(values) > 20.0
        with pytest.raises(InvalidParameterError):
            spike_train(10, spike_probability=1.5)

    def test_ar1_phi_validation(self):
        with pytest.raises(InvalidParameterError):
            ar1_process(10, phi=1.0)

    def test_brownian_walk_starts_at_zero(self):
        assert brownian_walk(10, seed=0)[0] == 0.0


class TestDatasets:
    def test_registry_lists_three(self):
        specs = list_datasets()
        assert [s.name for s in specs] == ["dow-jones", "merced", "brownian"]

    def test_paper_lengths(self):
        by_name = {s.name: s.paper_length for s in list_datasets()}
        assert by_name == {
            "dow-jones": 25771,
            "merced": 65536,
            "brownian": 1_000_000,
        }

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            dataset_by_name("sp500")

    @pytest.mark.parametrize("loader", [dow_jones, merced, brownian])
    def test_values_in_paper_domain(self, loader):
        values = loader(3000)
        assert len(values) == 3000
        assert all(isinstance(v, int) for v in values)
        assert all(0 <= v < DEFAULT_UNIVERSE for v in values)

    @pytest.mark.parametrize("loader", [dow_jones, merced, brownian])
    def test_deterministic(self, loader):
        assert loader(500) == loader(500)

    @pytest.mark.parametrize("loader", [dow_jones, merced, brownian])
    def test_invalid_length(self, loader):
        with pytest.raises(InvalidParameterError):
            loader(0)

    def test_loader_via_registry(self):
        spec = dataset_by_name("brownian")
        assert spec.loader(100) == brownian(100)

    def test_dow_jones_is_trending(self):
        """The DJIA proxy must reward PWL buckets: locally smooth trends."""
        values = dow_jones(4096)
        from repro.offline.optimal import optimal_error
        from repro.offline.optimal_pwl import optimal_pwl_error

        serial = optimal_error(values[:512], 8)
        pwl = optimal_pwl_error(values[:512], 8, tol=1.0)
        assert pwl < serial  # trends make lines strictly better

    def test_merced_is_bursty(self):
        """The Merced proxy has flood spikes: heavy right tail."""
        values = merced(20000)
        import statistics

        mean = statistics.fmean(values)
        assert max(values) > 4 * mean
