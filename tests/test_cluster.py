"""Tests for the sharded cluster layer (``docs/CLUSTER.md``).

Covers the routing and durability invariants the cluster is built on:

* consistent-hash ring -- placement is a pure deterministic function of
  the key (stable across ring objects and across processes, pinned by a
  golden hash value); removing a node moves *only* that node's keys
  (~1/N of the total), and no key ever maps to two nodes;
* engine adopt/release -- two engines over one shared checkpoint root
  can pass a stream between them bit-exactly, and a survivor can adopt
  a dead engine's stream from disk alone;
* router integration -- a multi-process cluster serves histograms
  bit-identical to one-shot ``summarize()``, across live handoff and
  across a SIGKILL'd worker whose streams a survivor adopts with zero
  acknowledged appends lost.
"""

import collections
import threading
import time

import pytest

from repro.api import summarize
from repro.exceptions import InvalidParameterError
from repro.service import ClusterRouter, ServiceClient, StreamEngine
from repro.service.cluster.rebalance import Rebalancer
from repro.service.cluster.ring import HashRing, stable_hash


def _dataset(n=3000, universe=512, seed=0):
    # First value pinned to universe-1 so summarize() infers the same
    # universe the service streams are configured with.
    return [universe - 1] + [
        (37 * i + 101 * seed + (i * i) % 89) % universe for i in range(1, n)
    ]


def _same_histogram(a, b):
    return a.segments == b.segments and a.error == b.error


# -- consistent-hash ring -----------------------------------------------------


class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # Golden value: blake2b is keyed by content only, so this must
        # never change across runs, machines, or PYTHONHASHSEED.
        assert stable_hash("load-0001") == 0x05C661D07C3EC8A4

    def test_placement_is_deterministic_across_ring_objects(self):
        keys = [f"stream-{i}" for i in range(500)]
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # construction order is irrelevant
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_every_key_maps_to_exactly_one_node(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for i in range(200):
            owner = ring.node_for(f"s{i}")
            assert owner in ring.nodes
            assert ring.node_for(f"s{i}") == owner  # no flapping

    def test_removal_moves_only_the_dead_nodes_keys(self):
        keys = [f"stream-{i}" for i in range(2000)]
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {k: ring.node_for(k) for k in keys}
        shrunk = ring.without("w2")
        moved = 0
        for k in keys:
            after = shrunk.node_for(k)
            if before[k] == "w2":
                assert after != "w2"  # orphans must be re-homed
                moved += 1
            else:
                # The consistent-hash property: surviving keys stay put.
                assert after == before[k]
        # ~1/4 of the keys lived on w2; allow generous slack on 2000 keys.
        assert 0.15 <= moved / len(keys) <= 0.35

    def test_extend_is_inverse_of_without(self):
        ring = HashRing(["w0", "w1", "w2"])
        assert set(ring.without("w1").extend("w1").nodes) == set(ring.nodes)
        keys = [f"k{i}" for i in range(300)]
        rebuilt = ring.without("w1").extend("w1")
        assert [ring.node_for(k) for k in keys] == [
            rebuilt.node_for(k) for k in keys
        ]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=64)
        keys = [f"stream-{i}" for i in range(3000)]
        counts = collections.Counter(ring.node_for(k) for k in keys)
        assert set(counts) == {"w0", "w1", "w2"}
        for node in counts:
            assert counts[node] >= len(keys) // 10  # no starved node

    def test_empty_ring_rejected(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])
        with pytest.raises(InvalidParameterError):
            HashRing(["w0"]).without("w0")


# -- engine adopt/release over a shared checkpoint root -----------------------


class TestAdoptRelease:
    def test_release_then_adopt_is_bit_exact(self, tmp_path):
        values = _dataset(2500)
        donor = StreamEngine(checkpoint_dir=tmp_path, workers=0)
        taker = StreamEngine(
            checkpoint_dir=tmp_path, workers=0, owns=lambda sid: False
        )
        try:
            handle = donor.stream(
                "s", method="min-merge", buckets=16, universe=512
            )
            handle.append(values[:2000])
            donor.release("s")
            assert "s" not in donor.streams()

            adopted = taker.adopt("s")
            assert adopted.items_seen == 2000
            adopted.append(values[2000:])
            taker.drain()
            served = taker.histogram("s")
            assert _same_histogram(served, summarize(values, 16, method="min-merge"))
        finally:
            donor.close()
            taker.close()

    def test_adopt_after_unclean_death_replays_journal(self, tmp_path):
        # Simulate a crash: the donor never releases (no final snapshot);
        # the survivor must recover snapshot + journal tail from disk.
        values = _dataset(2200)
        donor = StreamEngine(
            checkpoint_dir=tmp_path, checkpoint_every=500, workers=0
        )
        handle = donor.stream("s", method="min-merge", buckets=16, universe=512)
        handle.append(values)
        donor.drain()
        expected = donor.histogram("s")
        # No close/release: drop the engine like a SIGKILL would.
        taker = StreamEngine(
            checkpoint_dir=tmp_path, workers=0, owns=lambda sid: False
        )
        try:
            adopted = taker.adopt("s")
            assert adopted.items_seen == len(values)
            assert _same_histogram(taker.histogram("s"), expected)
        finally:
            taker.close()
            donor.close()

    def test_adopt_unknown_stream_rejected(self, tmp_path):
        engine = StreamEngine(checkpoint_dir=tmp_path, workers=0)
        try:
            with pytest.raises(InvalidParameterError):
                engine.adopt("never-manifested")
        finally:
            engine.close()


# -- multi-process router integration -----------------------------------------


class TestClusterRouter:
    def test_cluster_serves_bit_identical_histograms(self, tmp_path):
        streams = {f"t{i}": _dataset(1200, seed=i) for i in range(6)}
        with ClusterRouter(tmp_path, workers=3) as router:
            owners = {sid: router.owner_of(sid) for sid in streams}
            # The ring should actually shard this workload.
            assert len(set(owners.values())) > 1
            with ServiceClient(port=router.port) as client:
                for sid, values in streams.items():
                    for lo in range(0, len(values), 400):
                        client.append(
                            sid,
                            values[lo : lo + 400],
                            method="min-merge",
                            buckets=16,
                            universe=512,
                        )
                for sid, values in streams.items():
                    served = client.query(sid, drain=True).histogram
                    oracle = summarize(values, 16, method="min-merge")
                    assert _same_histogram(served, oracle), sid
                    assert served.meta.items_seen == len(values)
                stats = client.stats().data
                assert stats["cluster"]["deaths"] == 0
                assert stats["stream_count"] == len(streams)

    def test_handoff_preserves_stream_bit_exactly(self, tmp_path):
        values = _dataset(1800, seed=3)
        with ClusterRouter(tmp_path, workers=2) as router:
            with ServiceClient(port=router.port) as client:
                client.append(
                    "mv", values[:1000], method="min-merge",
                    buckets=16, universe=512,
                )
                source = router.owner_of("mv")
                target = next(
                    w for w in router.workers() if w != source
                )
                assert router.handoff("mv", target) == source
                assert router.owner_of("mv") == target
                client.append(
                    "mv", values[1000:], method="min-merge",
                    buckets=16, universe=512,
                )
                served = client.query("mv", drain=True).histogram
                assert _same_histogram(served, summarize(values, 16, method="min-merge"))
                assert client.stats().data["cluster"]["handoffs"] == 1

    def test_kill_worker_adoption_matches_serial_oracle(self, tmp_path):
        streams = {f"k{i}": _dataset(1000, seed=10 + i) for i in range(6)}
        with ClusterRouter(tmp_path, workers=3) as router:
            with ServiceClient(port=router.port) as client:
                for sid, values in streams.items():
                    client.append(
                        sid, values[:600], method="min-merge",
                        buckets=16, universe=512,
                    )
                client.query(next(iter(streams)), drain=True)
                victim = router.owner_of(next(iter(streams)))
                orphans = [
                    sid for sid in streams if router.owner_of(sid) == victim
                ]
                assert orphans
                router.kill_worker(victim)
                # An idempotent op (stats fan-out) trips death detection
                # and adoption; an *append* would instead surface
                # "unavailable", because appends are never auto-retried.
                client.stats()
                # With adoption complete and nothing in flight at kill
                # time, every further batch must land and the final
                # state must equal the serial oracle.
                for sid, values in streams.items():
                    client.append(
                        sid, values[600:], method="min-merge",
                        buckets=16, universe=512,
                    )
                for sid, values in streams.items():
                    served = client.query(sid, drain=True).histogram
                    assert _same_histogram(served, summarize(values, 16, method="min-merge")), sid
                    assert served.meta.items_seen == len(values)
                stats = client.stats().data["cluster"]
                assert stats["deaths"] == 1
                assert victim not in stats["workers"]
                for sid in orphans:
                    assert stats["adoptions"][sid] != victim


# -- self-healing: restart and ring growth -------------------------------------


class TestSelfHealing:
    def test_restart_worker_hands_streams_back(self, tmp_path):
        streams = {f"r{i}": _dataset(900, seed=20 + i) for i in range(6)}
        with ClusterRouter(tmp_path, workers=3) as router:
            with ServiceClient(port=router.port) as client:
                for sid, values in streams.items():
                    client.append(
                        sid, values[:500], method="min-merge",
                        buckets=16, universe=512,
                    )
                victim = router.owner_of(next(iter(streams)))
                natural = [
                    sid for sid in streams if router.owner_of(sid) == victim
                ]
                assert natural
                router.kill_worker(victim)
                # restart_worker detects the undetected crash itself:
                # adoption, re-spawn, ring extension, handoff home.
                result = router.restart_worker(victim)
                assert result["worker"] == victim
                assert set(result["moved"]) == set(natural)
                assert victim in router.workers()
                for sid in natural:
                    assert router.owner_of(sid) == victim
                # The handback dropped the pins: no overrides linger.
                assert not router._overrides
                for sid, values in streams.items():
                    client.append(
                        sid, values[500:], method="min-merge",
                        buckets=16, universe=512,
                    )
                for sid, values in streams.items():
                    served = client.query(sid, drain=True).histogram
                    oracle = summarize(values, 16, method="min-merge")
                    assert _same_histogram(served, oracle), sid
                    assert served.meta.items_seen == len(values)
                stats = client.stats().data["cluster"]
                assert stats["deaths"] == 1
                assert stats["restarts"] == 1

    def test_graceful_restart_is_not_a_death(self, tmp_path):
        values = _dataset(1200, seed=31)
        with ClusterRouter(tmp_path, workers=2) as router:
            with ServiceClient(port=router.port) as client:
                client.append(
                    "g", values[:700], method="min-merge",
                    buckets=16, universe=512,
                )
                owner = router.owner_of("g")
                # Rolling restart of a *live* worker: drain, recycle.
                router.restart_worker(owner)
                client.append(
                    "g", values[700:], method="min-merge",
                    buckets=16, universe=512,
                )
                served = client.query("g", drain=True).histogram
                assert _same_histogram(
                    served, summarize(values, 16, method="min-merge")
                )
                stats = client.stats().data["cluster"]
                assert stats["deaths"] == 0
                assert stats["restarts"] == 1

    def test_grow_migrates_only_minimal_keys(self, tmp_path):
        streams = {f"x{i}": _dataset(800, seed=40 + i) for i in range(8)}
        with ClusterRouter(tmp_path, workers=2) as router:
            with ServiceClient(port=router.port) as client:
                for sid, values in streams.items():
                    client.append(
                        sid, values[:400], method="min-merge",
                        buckets=16, universe=512,
                    )
                before = {sid: router.owner_of(sid) for sid in streams}
                result = router.grow(1)
                (joined,) = result["workers"]
                assert joined not in before.values()
                assert joined in router.workers()
                moved = set(result["moved"])
                for sid in streams:
                    after = router.owner_of(sid)
                    if sid in moved:
                        # Moved keys go only *to* the joining node.
                        assert after == joined
                    else:
                        # The consistent-hash property, live: everything
                        # else stays exactly where it was.
                        assert after == before[sid]
                for sid, values in streams.items():
                    client.append(
                        sid, values[400:], method="min-merge",
                        buckets=16, universe=512,
                    )
                for sid, values in streams.items():
                    served = client.query(sid, drain=True).histogram
                    oracle = summarize(values, 16, method="min-merge")
                    assert _same_histogram(served, oracle), sid
                stats = client.stats().data["cluster"]
                assert stats["grown"] == 1
                assert stats["deaths"] == 0


# -- load-driven auto-rebalancing ----------------------------------------------


class TestRebalancer:
    def test_rebalance_moves_hot_stream_off_most_loaded_worker(self, tmp_path):
        with ClusterRouter(tmp_path, workers=3) as router:
            with ServiceClient(port=router.port) as client:
                # Seed 9 small streams, then inflate every stream of one
                # worker so it is unambiguously the hottest.
                data = {}
                for i in range(9):
                    sid = f"h{i}"
                    data[sid] = _dataset(100, seed=50 + i)
                    client.append(
                        sid, data[sid], method="min-merge",
                        buckets=16, universe=512,
                    )
                by_owner = collections.Counter(
                    router.owner_of(sid) for sid in data
                )
                hot_worker = by_owner.most_common(1)[0][0]
                hot_streams = [
                    sid for sid in data if router.owner_of(sid) == hot_worker
                ]
                assert len(hot_streams) >= 2
                for sid in hot_streams:
                    extra = [v % 512 for v in range(700)]
                    data[sid] = data[sid] + extra
                    client.append(sid, extra)
                client.query(hot_streams[0], drain=True)

                rebalancer = Rebalancer(router, max_moves=1)
                worker_load, _weights, _owners = rebalancer.load_snapshot()
                assert max(worker_load, key=worker_load.get) == hot_worker
                moves = rebalancer.rebalance_once()
                assert len(moves) == 1
                (move,) = moves
                assert move.source == hot_worker
                assert router.owner_of(move.stream) == move.target
                # The migrated stream is bit-identical on its new owner.
                served = client.query(move.stream, drain=True).histogram
                oracle = summarize(data[move.stream], 16, method="min-merge")
                assert _same_histogram(served, oracle)
                # The gap strictly shrank: a second snapshot agrees.
                after_load, _w, _o = rebalancer.load_snapshot()
                assert (
                    max(after_load.values()) - min(after_load.values())
                    < max(worker_load.values()) - min(worker_load.values())
                )

    def test_balanced_cluster_plans_no_moves(self, tmp_path):
        with ClusterRouter(tmp_path, workers=2) as router:
            with ServiceClient(port=router.port) as client:
                client.append(
                    "only", _dataset(400, seed=60), method="min-merge",
                    buckets=16, universe=512,
                )
                client.query("only", drain=True)
                # One stream: moving it cannot strictly shrink the gap
                # (weight == gap), so the planner must stay put.
                assert Rebalancer(router).plan() == []

    def test_daemon_loop_start_stop(self, tmp_path):
        with ClusterRouter(tmp_path, workers=2) as router:
            with Rebalancer(router, interval=0.05) as rebalancer:
                time.sleep(0.2)  # a few no-op passes on an empty cluster
            assert rebalancer.moves_done == 0


# -- acceptance: mixed-transport load across kill/restart/grow -----------------


class TestSelfHealingUnderLoad:
    def test_mixed_rest_binary_load_survives_kill_restart_grow(self, tmp_path):
        """The PR's acceptance run (``ISSUE``): REST + binary + JSON
        clients drive a 3-worker cluster while a worker is SIGKILL'd,
        restarted, and the ring grown -- zero acked appends lost, final
        state bit-identical to the serial oracle."""
        from repro.loadgen import LoadGenerator, verify_report

        with ClusterRouter(tmp_path, workers=3, http_port=0) as router:
            gen = LoadGenerator(
                port=router.port,
                http_port=router.http_port,
                clients=9,
                batches_per_client=9,
                batch_size=60,
                buckets=16,
                universe=512,
                transports=("binary", "rest", "json"),
                query_every=4,
            )
            total = gen.clients * gen.batches_per_client
            victim = router.workers()[0]
            chaos_done = threading.Event()
            chaos_error = []

            def chaos():
                try:
                    deadline = time.monotonic() + 60.0
                    while (
                        gen.batches_done < total // 3
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    router.kill_worker(victim)
                    router.restart_worker(victim)
                    router.grow(1)
                except BaseException as exc:  # surfaced after join
                    chaos_error.append(exc)
                finally:
                    chaos_done.set()

            thread = threading.Thread(target=chaos, daemon=True)
            thread.start()
            report = gen.run()
            assert chaos_done.wait(timeout=120.0)
            thread.join(timeout=10.0)
            assert not chaos_error, chaos_error

            # Every stream's served state matches a consistent ledger
            # interpretation: zero acknowledged appends were lost, no
            # batch was torn -- across kill, restart, and growth.
            matches = verify_report(report, buckets=16)
            assert len(matches) == gen.clients

            with ServiceClient(port=router.port) as client:
                stats = client.stats().data["cluster"]
            assert stats["restarts"] == 1
            assert stats["grown"] == 1
            assert victim in stats["workers"]
            assert len(stats["workers"]) == 4
