"""Checkpoint round-trips: restored summaries are behaviourally identical."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import from_json, restore, state_dict, to_json
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.exceptions import InvalidParameterError, UnsupportedCheckpointError

UNIVERSE = 512
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=150)


def _snapshot(summary) -> tuple:
    """Observable state: buckets of the answer, error, memory."""
    hist = summary.histogram()
    return (
        [(s.beg, s.end, s.left, s.right) for s in hist],
        hist.error,
        summary.memory_bytes(),
        summary.items_seen,
    )


class TestValidation:
    def test_unsupported_type(self):
        with pytest.raises(UnsupportedCheckpointError) as excinfo:
            state_dict(object())
        # The error names the offending type and the supported set.
        assert "object" in str(excinfo.value)
        assert "min-merge" in str(excinfo.value)

    def test_unsupported_type_is_invalid_parameter(self):
        # Subclass relationship keeps pre-existing handlers working.
        with pytest.raises(InvalidParameterError):
            state_dict(object())

    def test_unknown_kind(self):
        with pytest.raises(UnsupportedCheckpointError) as excinfo:
            restore({"kind": "count-min-sketch"})
        assert "count-min-sketch" in str(excinfo.value)

    def test_malformed_payload(self):
        with pytest.raises(InvalidParameterError):
            restore({"kind": "min-merge"})
        with pytest.raises(InvalidParameterError):
            restore([])

    def test_malformed_json(self):
        with pytest.raises(InvalidParameterError):
            from_json("{")


class TestMinMerge:
    @given(streams)
    def test_round_trip_at_rest_is_exact(self, values):
        """Restoring without further inserts reproduces the exact state."""
        summary = MinMergeHistogram(buckets=4)
        summary.extend(values)
        resumed = restore(state_dict(summary))
        assert _snapshot(resumed) == _snapshot(summary)
        resumed.check_heap_consistency()

    @given(streams, streams)
    def test_restore_then_continue_keeps_guarantees(self, prefix, suffix):
        """Pause/restore preserves the algorithm's guarantees.

        Heap *tie-breaking* order is not serialized, so when merge keys tie
        the resumed run may pick a different (equally minimal) pair and the
        partitions can diverge -- but both runs must keep the min-merge
        invariant and Theorem 1's error bound.
        """
        from repro.offline.optimal import optimal_error

        continuous = MinMergeHistogram(buckets=4)
        continuous.extend(prefix)
        continuous.extend(suffix)

        paused = MinMergeHistogram(buckets=4)
        paused.extend(prefix)
        resumed = restore(state_dict(paused))
        resumed.extend(suffix)

        assert resumed.items_seen == continuous.items_seen
        assert resumed.bucket_count == continuous.bucket_count
        assert resumed.memory_bytes() == continuous.memory_bytes()
        resumed.check_heap_consistency()
        resumed.check_min_merge_property()
        best = optimal_error(prefix + suffix, 4)
        assert resumed.error <= best + 1e-12
        assert continuous.error <= best + 1e-12

    def test_linear_findmin_round_trip(self):
        summary = MinMergeHistogram(buckets=3, findmin="linear")
        summary.extend(range(100))
        resumed = restore(state_dict(summary))
        assert resumed.findmin == "linear"
        assert _snapshot(resumed) == _snapshot(summary)

    def test_json_round_trip(self):
        summary = MinMergeHistogram(buckets=3)
        summary.extend([5, 99, 2, 47, 13])
        resumed = from_json(to_json(summary))
        assert _snapshot(resumed) == _snapshot(summary)


class TestMinIncrement:
    @settings(max_examples=30)
    @given(streams, streams)
    def test_restore_then_continue_matches_uninterrupted(self, prefix, suffix):
        kwargs = {"buckets": 4, "epsilon": 0.2, "universe": UNIVERSE}
        continuous = MinIncrementHistogram(**kwargs)
        continuous.extend(prefix)
        continuous.extend(suffix)

        paused = MinIncrementHistogram(**kwargs)
        paused.extend(prefix)
        resumed = restore(state_dict(paused))
        resumed.extend(suffix)

        assert _snapshot(resumed) == _snapshot(continuous)
        assert resumed.alive_levels == continuous.alive_levels

    def test_buffered_summary_preserves_pending_items(self):
        kwargs = {
            "buckets": 4, "epsilon": 0.2, "universe": UNIVERSE,
            "batch_size": 64,
        }
        summary = MinIncrementHistogram(**kwargs)
        summary.extend([1, 2, 3])  # still sitting in the buffer
        resumed = restore(state_dict(summary))
        assert resumed.items_seen == 3
        assert resumed.histogram().coverage == 3


class TestSlidingWindow:
    @settings(max_examples=30)
    @given(streams, streams, st.integers(4, 64))
    def test_restore_then_continue_matches_uninterrupted(
        self, prefix, suffix, window
    ):
        kwargs = {
            "buckets": 4, "epsilon": 0.2, "universe": UNIVERSE,
            "window": window,
        }
        continuous = SlidingWindowMinIncrement(**kwargs)
        continuous.extend(prefix)
        continuous.extend(suffix)

        paused = SlidingWindowMinIncrement(**kwargs)
        paused.extend(prefix)
        resumed = restore(state_dict(paused))
        resumed.extend(suffix)

        assert _snapshot(resumed) == _snapshot(continuous)

    def test_window_position_preserved(self):
        summary = SlidingWindowMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=10
        )
        summary.extend(range(50))
        resumed = restore(state_dict(summary))
        assert resumed.window_start == summary.window_start
        assert resumed.histogram().beg == 40
