"""Documentation coverage: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable so it cannot regress.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

IGNORED_MEMBER_NAMES = {
    # dataclass-generated or inherited machinery
    "__init__", "__repr__", "__eq__", "__hash__",
}


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; documented at home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_public_module_has_a_docstring():
    missing = [m.__name__ for m in _public_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_has_a_docstring():
    missing = []
    for module in _public_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or name in IGNORED_MEMBER_NAMES:
                    continue
                func = member
                if isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not callable(func):
                    continue
                if not inspect.getdoc(func):
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
