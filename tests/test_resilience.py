"""Crash-anywhere recovery: every summary, every fault point, bit-identical.

The central property: for any registry algorithm and any named fault point
in the checkpoint write protocol, crashing there, re-opening the store in a
"fresh process", recovering, and finishing the stream yields a summary
whose ``state_dict`` is *bit-identical* to an uninterrupted run's.  The
corruption tests add the fallback guarantee: a torn or bit-flipped newest
snapshot is skipped and the previous good generation (plus journal replay)
still reproduces the oracle exactly.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import state_dict
from repro.exceptions import (
    CheckpointCorruptionError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.harness.runner import ALGORITHM_NAMES, make_algorithm
from repro.resilience import (
    CHECKPOINT_FAULT_POINTS,
    CheckpointStore,
    FaultPlan,
    ItemJournal,
    inject_bit_flip,
    inject_torn_write,
)

UNIVERSE = 512
WINDOW = 96

#: Store-level fault points that fire during a plain ingest/save cycle
#: (``snapshot.prune`` needs retention pressure and is exercised separately).
CYCLE_FAULTS = tuple(
    p for p in CHECKPOINT_FAULT_POINTS if p != "snapshot.prune"
)


def _make(name):
    return make_algorithm(
        name, buckets=4, epsilon=0.25, universe=UNIVERSE, window=WINDOW
    )


def _values(n=300):
    return [(i * 37) % 211 for i in range(n)]


def _oracle_state(name, values, split):
    oracle = _make(name)
    oracle.extend(values[:split])
    oracle.extend(values[split:])
    return state_dict(oracle)


def _crash_then_recover(name, fault, values, split, directory, *, keep=2):
    """Ingest/save, crash at ``fault``, recover in a fresh store, finish."""
    occurrence = 1 if fault == "snapshot.prune" else 2
    plan = FaultPlan.crash_at(fault, occurrence=occurrence)
    store = CheckpointStore(
        directory, keep=keep, journal=True, fault_plan=plan
    )
    running = _make(name)
    crashed = False
    try:
        store.ingest(running, values[:split])
        store.save(running)
        store.ingest(running, values[split:])
        store.save(running)
    except InjectedFaultError:
        crashed = True
    assert crashed, f"fault {fault!r} never fired"
    assert plan.fired == [fault]

    # A fresh store models the restarted process; "auto" finds the journal.
    fresh = CheckpointStore(directory, keep=keep)
    recovered = fresh.recover(factory=lambda: _make(name))
    rest = values[recovered.items_seen:]
    if rest:
        recovered.extend(rest)
    return recovered, fresh.last_recovery


class TestCrashMatrix:
    """The tentpole guarantee, enumerated exhaustively."""

    @pytest.mark.parametrize("fault", CYCLE_FAULTS)
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_crash_anywhere_recovers_bit_identical(self, name, fault, tmp_path):
        values = _values()
        recovered, report = _crash_then_recover(
            name, fault, values, 150, tmp_path
        )
        assert state_dict(recovered) == _oracle_state(name, values, 150)
        assert recovered.items_seen == len(values)
        assert report.skipped_generations == 0

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_crash_during_prune_recovers_bit_identical(self, name, tmp_path):
        # keep=1 forces the second save to prune the first generation.
        values = _values()
        recovered, _ = _crash_then_recover(
            name, "snapshot.prune", values, 150, tmp_path, keep=1
        )
        assert state_dict(recovered) == _oracle_state(name, values, 150)

    def test_crash_before_first_snapshot_uses_factory(self, tmp_path):
        values = _values(120)
        plan = FaultPlan.crash_at("journal.append", occurrence=2)
        store = CheckpointStore(tmp_path, journal=True, fault_plan=plan)
        running = _make("min-merge")
        with pytest.raises(InjectedFaultError):
            store.ingest(running, values[:60])
            store.ingest(running, values[60:])

        fresh = CheckpointStore(tmp_path)
        recovered = fresh.recover(factory=lambda: _make("min-merge"))
        assert fresh.last_recovery.generation is None
        recovered.extend(values[recovered.items_seen:])
        assert state_dict(recovered) == _oracle_state("min-merge", values, 60)

    @settings(max_examples=5, deadline=None)
    @given(
        values=st.lists(st.integers(0, UNIVERSE - 1), min_size=20, max_size=120),
        cut=st.floats(0.1, 0.9),
        fault=st.sampled_from(CYCLE_FAULTS),
        name=st.sampled_from(("min-merge", "pwl-min-increment", "rehist")),
    )
    def test_crash_recovery_property(self, values, cut, fault, name):
        split = max(1, int(len(values) * cut))
        with tempfile.TemporaryDirectory() as directory:
            recovered, _ = _crash_then_recover(
                name, fault, values, split, directory
            )
        assert state_dict(recovered) == _oracle_state(name, values, split)


class TestCorruptionFallback:
    """Bad newest snapshot -> previous good generation + journal tail."""

    def _store_with_two_generations(self, name, values, directory):
        store = CheckpointStore(directory, journal=True)
        running = _make(name)
        store.ingest(running, values[:150])
        store.save(running)
        store.ingest(running, values[150:])
        store.save(running)
        return store

    @pytest.mark.parametrize("corrupt", ["bit-flip", "torn"])
    @pytest.mark.parametrize("name", ["min-merge", "sliding-window-pwl"])
    def test_corrupt_newest_falls_back_a_generation(
        self, name, corrupt, tmp_path
    ):
        values = _values()
        store = self._store_with_two_generations(name, values, tmp_path)
        newest = store.generations()[-1]
        path = os.path.join(str(tmp_path), f"snapshot-{newest:08d}.json")
        if corrupt == "bit-flip":
            inject_bit_flip(path, offset=-20)
        else:
            inject_torn_write(path, keep_fraction=0.6)

        fresh = CheckpointStore(tmp_path)
        recovered = fresh.recover()
        report = fresh.last_recovery
        assert report.skipped_generations == 1
        assert report.generation == newest - 1
        # The journal tail still covers everything past the older snapshot.
        assert state_dict(recovered) == _oracle_state(name, values, 150)

    def test_all_generations_corrupt_raises(self, tmp_path):
        values = _values()
        store = self._store_with_two_generations(
            "min-merge", values, tmp_path
        )
        for generation in store.generations():
            inject_torn_write(
                os.path.join(
                    str(tmp_path), f"snapshot-{generation:08d}.json"
                ),
                keep_fraction=0.3,
            )
        with pytest.raises(CheckpointCorruptionError):
            CheckpointStore(tmp_path).recover()

    def test_empty_store_without_factory_raises(self, tmp_path):
        with pytest.raises(CheckpointCorruptionError):
            CheckpointStore(tmp_path).recover()

    def test_journal_gap_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, journal=True)
        running = _make("min-merge")
        running.extend(range(5))
        store.save(running)
        # A record claiming to start past what the snapshot covers.
        store.journal.append([1, 2, 3], start=10)
        with pytest.raises(CheckpointCorruptionError):
            CheckpointStore(tmp_path).recover()


class TestCheckpointStore:
    def test_retention_prunes_old_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2, journal=False)
        running = _make("min-merge")
        for round_no in range(4):
            running.extend(_values(50))
            store.save(running)
        assert store.generations() == [3, 4]

    def test_crashed_save_leaves_no_temp_after_next_save(self, tmp_path):
        plan = FaultPlan.crash_at("snapshot.tmp-write")
        store = CheckpointStore(tmp_path, journal=False, fault_plan=plan)
        running = _make("min-merge")
        running.extend(_values(50))
        with pytest.raises(InjectedFaultError):
            store.save(running)
        assert any(n.endswith(".json.tmp") for n in os.listdir(tmp_path))
        store.save(running)
        assert not any(n.endswith(".json.tmp") for n in os.listdir(tmp_path))

    def test_save_without_journal_then_recover_restarts_at_snapshot(
        self, tmp_path
    ):
        store = CheckpointStore(tmp_path, journal=False)
        running = _make("min-merge")
        running.extend(_values(100))
        store.save(running)
        recovered = CheckpointStore(tmp_path).recover()
        assert recovered.items_seen == 100
        assert state_dict(recovered) == state_dict(running)

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            CheckpointStore(tmp_path, keep=0)


class TestItemJournal:
    def test_replay_round_trips_batches(self, tmp_path):
        journal = ItemJournal(tmp_path / "journal.log")
        journal.append([1.5, 2, 3], start=0)
        journal.append([4, 5], start=3)
        assert list(journal.replay()) == [(0, [1.5, 2, 3]), (3, [4, 5])]

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = ItemJournal(path)
        journal.append([1, 2], start=0)
        journal.append([3, 4], start=2)
        size = os.path.getsize(path)
        inject_torn_write(path, keep_fraction=(size - 4) / size)
        replayed = list(journal.replay())
        assert replayed == [(0, [1, 2])]
        assert journal.ignored_tail_bytes() > 0

    def test_bit_flip_stops_replay_at_bad_record(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = ItemJournal(path)
        journal.append([1, 2], start=0)
        first_record = os.path.getsize(path)
        journal.append([3, 4], start=2)
        inject_bit_flip(path, offset=first_record + 12)
        assert list(journal.replay()) == [(0, [1, 2])]

    def test_compact_keeps_needed_tail(self, tmp_path):
        journal = ItemJournal(tmp_path / "journal.log")
        journal.append([0, 1, 2], start=0)
        journal.append([3, 4, 5], start=3)
        journal.append([6, 7], start=6)
        journal.compact(5)  # record 2 straddles the cutoff: keep it
        assert list(journal.replay()) == [(3, [3, 4, 5]), (6, [6, 7])]
        journal.compact(8)
        assert list(journal.replay()) == []


class TestFaultPlan:
    def test_counts_and_order(self):
        plan = FaultPlan({"a": 2, "b": 1})
        assert plan.take("a") and plan.take("b") and plan.take("a")
        assert not plan.take("a") and not plan.take("b")
        assert plan.fired == ["a", "b", "a"]

    def test_skip_then_fail(self):
        plan = FaultPlan.crash_at("p", occurrence=3)
        assert [plan.take("p") for _ in range(4)] == [
            False, False, True, False,
        ]

    def test_iterable_constructor_counts_duplicates(self):
        plan = FaultPlan(["x", "x", "y"])
        assert plan.remaining("x") == 2 and plan.remaining("y") == 1

    def test_fire_raises_only_with_budget(self):
        plan = FaultPlan.crash_once("p")
        with pytest.raises(InjectedFaultError):
            plan.fire("p")
        plan.fire("p")  # budget spent: no-op

    @pytest.mark.parametrize(
        "bad", [{"p": 0}, {"p": -1}, {"p": (-1, 1)}, {"p": (0, 0)}]
    )
    def test_invalid_budgets_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            FaultPlan(bad)

    def test_crash_at_rejects_nonpositive_occurrence(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.crash_at("p", occurrence=0)


class TestInjectors:
    def test_torn_write_truncates(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"0123456789")
        assert inject_torn_write(path, keep_fraction=0.5) == 5
        assert path.read_bytes() == b"01234"

    def test_bit_flip_flips_one_bit(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"\x00\x00")
        assert inject_bit_flip(path, offset=-1, bit=3) == 1
        assert path.read_bytes() == b"\x00\x08"

    def test_injector_validation(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"ab")
        with pytest.raises(InvalidParameterError):
            inject_torn_write(path, keep_fraction=1.0)
        with pytest.raises(InvalidParameterError):
            inject_bit_flip(path, offset=7)
        with pytest.raises(InvalidParameterError):
            inject_bit_flip(path, bit=8)


class TestWorkerFailureRecovery:
    """Dead/poisoned shards are retried; the result matches the oracle."""

    def _data(self, n=20_000):
        import numpy as np

        return (np.arange(n) * 37) % 211

    @staticmethod
    def _observable(summary):
        return (
            [(b.beg, b.end) for b in summary.buckets_snapshot()],
            summary.items_seen,
            summary.error,
        )

    @pytest.mark.parametrize("shard", [0, 1, 2, 3])
    def test_poisoned_shard_is_retried(self, shard):
        from repro.parallel import ParallelSummarizer

        data = self._data()
        reference = ParallelSummarizer(
            "min-merge", buckets=8, workers=4, backend="thread"
        ).reference(data)
        summarizer = ParallelSummarizer(
            "min-merge",
            buckets=8,
            workers=4,
            backend="thread",
            fault_plan=FaultPlan({f"shard:{shard}": 1}),
            retry_backoff=0.0,
            metrics=True,
        )
        result = summarizer.summarize(data)
        assert self._observable(result) == self._observable(reference)
        assert result.metrics.counter_totals()["failures_retried"] == 1

    def test_degrades_to_in_process_after_retries(self):
        from repro.parallel import ParallelSummarizer

        data = self._data()
        reference = ParallelSummarizer(
            "min-merge", buckets=8, workers=4, backend="thread"
        ).reference(data)
        summarizer = ParallelSummarizer(
            "min-merge",
            buckets=8,
            workers=4,
            backend="thread",
            fault_plan=FaultPlan({"shard:2": 2}),
            retry_backoff=0.0,
            max_shard_retries=2,
            metrics=True,
        )
        result = summarizer.summarize(data)
        assert self._observable(result) == self._observable(reference)
        # Counters aggregated up through the tree_reduce merges.
        assert result.metrics.counter_totals()["failures_retried"] == 2

    def test_in_process_failure_propagates(self):
        from repro.parallel import ParallelSummarizer

        summarizer = ParallelSummarizer(
            "min-merge",
            buckets=8,
            workers=4,
            backend="thread",
            fault_plan=FaultPlan({"shard:1": 5}),
            retry_backoff=0.0,
            max_shard_retries=2,
        )
        with pytest.raises(InjectedFaultError):
            summarizer.summarize(self._data())

    def test_killed_process_worker_is_retried(self):
        from repro.parallel import ParallelSummarizer
        from repro.parallel.executor import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        data = self._data()
        reference = ParallelSummarizer(
            "min-merge", buckets=8, workers=2, backend="process"
        ).reference(data)
        summarizer = ParallelSummarizer(
            "min-merge",
            buckets=8,
            workers=2,
            backend="process",
            fault_plan=FaultPlan({"shard.kill:1": 1}),
            retry_backoff=0.0,
            metrics=True,
        )
        result = summarizer.summarize(data)
        assert self._observable(result) == self._observable(reference)
        # A dead worker breaks the whole pool, so innocent shards may be
        # collateral failures: at least the killed shard was retried.
        assert result.metrics.counter_totals()["failures_retried"] >= 1

    def test_retry_parameters_validated(self):
        from repro.parallel import ParallelSummarizer

        with pytest.raises(InvalidParameterError):
            ParallelSummarizer("min-merge", buckets=8, max_shard_retries=0)
        with pytest.raises(InvalidParameterError):
            ParallelSummarizer("min-merge", buckets=8, retry_backoff=-0.1)


class TestRecoverCli:
    def test_recover_subcommand_reports(self, tmp_path, capsys):
        from repro.cli import main

        store = CheckpointStore(tmp_path, journal=True)
        running = _make("min-merge")
        store.ingest(running, _values(200)[:120])
        store.save(running)
        store.ingest(running, _values(200)[120:])

        assert main(["recover", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "min-merge" in out
        assert "200" in out

    def test_recover_subcommand_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        store = CheckpointStore(tmp_path, journal=False)
        running = _make("sliding-window")
        running.extend(_values(150))
        store.save(running)

        assert main(["recover", "--dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sliding-window"
        assert payload["items_seen"] == 150
        assert payload["generation"] == 1
