"""Tests for the REHIST comparator (approximate streaming DP)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rehist import RehistHistogram, _BreakpointList
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.offline.optimal import optimal_error

UNIVERSE = 512
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=150)


class TestConstruction:
    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            RehistHistogram(buckets=0, epsilon=0.2, universe=UNIVERSE)

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            RehistHistogram(buckets=4, epsilon=0.0, universe=UNIVERSE)

    def test_invalid_universe(self):
        with pytest.raises(InvalidParameterError):
            RehistHistogram(buckets=4, epsilon=0.2, universe=1)

    def test_delta_is_eps_over_2b(self):
        rehist = RehistHistogram(buckets=10, epsilon=0.2, universe=UNIVERSE)
        assert rehist.delta == pytest.approx(0.01)

    def test_delta_override(self):
        rehist = RehistHistogram(
            buckets=10, epsilon=0.2, universe=UNIVERSE, delta=0.05
        )
        assert rehist.delta == 0.05
        with pytest.raises(InvalidParameterError):
            RehistHistogram(
                buckets=10, epsilon=0.2, universe=UNIVERSE, delta=0.0
            )

    def test_coarser_delta_uses_less_memory(self):
        stream = [(i * 31) % UNIVERSE for i in range(1500)]
        tight = RehistHistogram(buckets=8, epsilon=0.2, universe=UNIVERSE)
        coarse = RehistHistogram(
            buckets=8, epsilon=0.2, universe=UNIVERSE, delta=0.2
        )
        tight.extend(stream)
        coarse.extend(stream)
        assert coarse.memory_bytes() < tight.memory_bytes()
        # Both still upper-bound the true optimum.
        from repro.offline.optimal import optimal_error

        best = optimal_error(stream, 8)
        assert tight.error >= best - 1e-9
        assert coarse.error >= best - 1e-9

    def test_empty_raises(self):
        rehist = RehistHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(EmptySummaryError):
            _ = rehist.error
        with pytest.raises(EmptySummaryError):
            rehist.histogram([])

    def test_domain_check(self):
        rehist = RehistHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(DomainError):
            rehist.insert(UNIVERSE)


class TestBreakpointList:
    def test_same_class_replaces_tail(self):
        bp = _BreakpointList(delta=0.1)
        bp.record(1, 10.0)
        bp.record(2, 10.5)  # within 10 * 1.1
        assert len(bp) == 1
        assert bp.positions == [2]
        assert bp.values == [10.5]

    def test_new_class_appends(self):
        bp = _BreakpointList(delta=0.1)
        bp.record(1, 10.0)
        bp.record(2, 12.0)
        assert len(bp) == 2

    def test_zero_class_is_exact(self):
        bp = _BreakpointList(delta=0.1)
        bp.record(1, 0.0)
        bp.record(2, 0.0)
        assert len(bp) == 1
        bp.record(3, 0.5)
        assert len(bp) == 2

    def test_values_clamped_monotone(self):
        bp = _BreakpointList(delta=0.1)
        bp.record(1, 10.0)
        bp.record(2, 9.0)  # approximation jitter; clamp up
        assert bp.values[-1] == 10.0

    def test_anchor_prevents_ratchet_drift(self):
        bp = _BreakpointList(delta=0.1)
        bp.record(1, 10.0)
        # Many small steps, each within (1 + delta) of its predecessor but
        # compounding: the anchored class must split once past 11.
        for i, value in enumerate([10.5, 10.9, 11.5], start=2):
            bp.record(i, value)
        assert len(bp) == 2


class TestGuarantee:
    @given(streams, st.integers(1, 8))
    def test_error_brackets_optimal(self, values, buckets):
        """opt <= REHIST error <= (1 + eps) * opt."""
        epsilon = 0.2
        rehist = RehistHistogram(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE
        )
        rehist.extend(values)
        best = optimal_error(values, buckets)
        assert rehist.error >= best - 1e-9
        assert rehist.error <= (1.0 + epsilon) * best + 1e-9

    @settings(max_examples=20)
    @given(streams)
    def test_error_monotone_over_stream(self, values):
        rehist = RehistHistogram(buckets=3, epsilon=0.2, universe=UNIVERSE)
        previous = 0.0
        for v in values:
            rehist.insert(v)
            assert rehist.error >= previous - 1e-12
            previous = rehist.error

    def test_single_bucket_equals_global_range(self):
        rehist = RehistHistogram(buckets=1, epsilon=0.2, universe=UNIVERSE)
        rehist.extend([5, 100, 40])
        assert rehist.error == (100 - 5) / 2.0

    def test_fewer_items_than_buckets_is_exact_zero(self):
        rehist = RehistHistogram(buckets=8, epsilon=0.2, universe=UNIVERSE)
        rehist.extend([3, 99, 7])
        assert rehist.error == 0.0


class TestHistogramMaterialization:
    @given(streams, st.integers(1, 6))
    def test_histogram_respects_budget_and_error(self, values, buckets):
        rehist = RehistHistogram(
            buckets=buckets, epsilon=0.2, universe=UNIVERSE
        )
        rehist.extend(values)
        hist = rehist.histogram(values)
        assert len(hist) <= buckets
        assert hist.max_error_against(values) <= rehist.error + 1e-9

    def test_wrong_length_rejected(self):
        rehist = RehistHistogram(buckets=2, epsilon=0.2, universe=UNIVERSE)
        rehist.extend([1, 2, 3])
        with pytest.raises(InvalidParameterError):
            rehist.histogram([1, 2])


class TestMemoryProfile:
    def test_memory_grows_superlinearly_in_buckets(self):
        """The Theta(B^2) driver the paper's Figure 5 exhibits.

        Two factors multiply: the level count (B - 1) and the per-level
        class count (delta = eps / 2B refines with B).  At small test
        sizes the second factor is partly saturated by the realized value
        range, so we assert clear super-linearity rather than a clean 4x.
        """
        import random

        universe = 1 << 15
        walk = random.Random(13)
        value, stream = universe // 2, []
        for _ in range(3000):
            value = min(universe - 1, max(0, value + walk.randint(-200, 200)))
            stream.append(value)
        memories = []
        breakpoints = []
        for buckets in (4, 16):
            rehist = RehistHistogram(
                buckets=buckets, epsilon=0.2, universe=universe
            )
            rehist.extend(stream)
            memories.append(rehist.memory_bytes())
            breakpoints.append(rehist.breakpoint_count())
        # 4x the buckets: memory more than 4x, breakpoints more than 5x
        # (level count alone grows (16-1)/(4-1) = 5x; classes refine on top).
        assert memories[1] > 4.0 * memories[0]
        assert breakpoints[1] > 5.0 * breakpoints[0]

    def test_memory_much_larger_than_min_merge(self):
        from repro.core.min_merge import MinMergeHistogram

        import random

        walk = random.Random(14)
        value, stream = UNIVERSE // 2, []
        for _ in range(2000):
            value = min(UNIVERSE - 1, max(0, value + walk.randint(-6, 6)))
            stream.append(value)
        rehist = RehistHistogram(buckets=16, epsilon=0.2, universe=UNIVERSE)
        rehist.extend(stream)
        mm = MinMergeHistogram(buckets=16)
        mm.extend(stream)
        assert rehist.memory_bytes() > 10 * mm.memory_bytes()

    def test_breakpoint_count_accounted(self):
        rehist = RehistHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        rehist.extend([(i * 31) % UNIVERSE for i in range(200)])
        assert rehist.breakpoint_count() > 0
        assert rehist.memory_bytes() >= 16 * rehist.breakpoint_count()
