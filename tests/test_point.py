"""Tests for the planar point primitives (exactness included)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import cross, orientation


class TestCross:
    def test_left_turn_positive(self):
        assert cross((0, 0), (1, 0), (1, 1)) > 0

    def test_right_turn_negative(self):
        assert cross((0, 0), (1, 0), (1, -1)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0

    def test_exact_for_huge_integers(self):
        # Python ints are arbitrary precision: the predicate stays exact
        # far beyond float mantissas (where a C implementation would lie).
        big = 10 ** 20
        assert cross((0, 0), (big, 1), (2 * big, 2)) == 0
        assert cross((0, 0), (big, 1), (2 * big, 3)) == big
        assert cross((0, 0), (big, 1), (2 * big, 1)) == -big

    @given(
        st.tuples(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9)),
        st.tuples(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9)),
        st.tuples(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9)),
    )
    def test_antisymmetry(self, o, a, b):
        assert cross(o, a, b) == -cross(o, b, a)


class TestOrientation:
    def test_signs(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1
        assert orientation((0, 0), (1, 0), (1, -1)) == -1
        assert orientation((0, 0), (1, 0), (2, 0)) == 0

    @given(
        st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
        st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
        st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
    )
    def test_matches_cross_sign(self, o, a, b):
        c = cross(o, a, b)
        expected = 1 if c > 0 else (-1 if c < 0 else 0)
        assert orientation(o, a, b) == expected


class TestHullWithHugeCoordinates:
    def test_streaming_hull_exact_at_extreme_scale(self):
        from repro.geometry.convex_hull import StreamingHull, convex_hull

        big = 10 ** 18
        points = [(i, (i * big) + (1 if i == 2 else 0)) for i in range(5)]
        hull = StreamingHull.from_points(points)
        hull.check_invariant()
        # Only the bump at x=2 joins the endpoints on the upper chain.
        assert sorted(hull.vertices()) == sorted(convex_hull(points))
        assert (2, 2 * big + 1) in hull.vertices()
