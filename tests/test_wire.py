"""Tests for the binary wire protocol (framing, transports, negotiation).

Covers the contracts documented in ``docs/WIRE.md``:

* frame round trips, and every malformed-frame class (truncated header,
  bad magic, version mismatch, unknown opcode, oversized length, ragged
  value region, non-finite payloads) maps to a clean ``bad-request``;
* the zero-copy append path: the decoded ndarray is a read-only view
  over the frame payload, no copies on either side;
* both client transports survive deliberately fragmenting sockets
  (single-byte reads, chopped writes);
* protocol negotiation, including fallback against a JSON-only server
  and rejection of binary frames sent before negotiation;
* mixed-protocol bit-identity: JSON and binary clients interleaved on
  one stream produce the exact ``summarize()`` histogram.
"""

import json
import socket
import struct

import numpy as np
import pytest

from repro.api import summarize
from repro.service import (
    BinaryTransport,
    JsonTransport,
    ServiceClient,
    ServiceError,
    StreamEngine,
    StreamServer,
)
from repro.service import wire
from repro.service.client import _BufferedSocket, negotiate_transport
from repro.service.wire import WireError


def _dataset(n=4000, universe=512):
    return [(37 * i + (i * i) % 11) % universe for i in range(n)]


class TestFrameCodec:
    def test_json_frame_round_trip(self):
        payload = {"op": "query", "stream": "s", "drain": True}
        frame = wire.encode_json_frame(wire.OP_JSON, payload)
        opcode, length = wire.decode_header(frame[: wire.HEADER_BYTES])
        assert opcode == wire.OP_JSON
        assert length == len(frame) - wire.HEADER_BYTES
        assert wire.decode_json_payload(frame[wire.HEADER_BYTES :]) == payload

    def test_empty_payload_frame(self):
        frame = wire.encode_frame(wire.OP_OK)
        opcode, length = wire.decode_header(frame)
        assert (opcode, length) == (wire.OP_OK, 0)

    def test_truncated_header_rejected(self):
        frame = wire.encode_frame(wire.OP_JSON, b"{}")
        with pytest.raises(WireError, match="truncated"):
            wire.decode_header(frame[:5])

    def test_bad_magic_rejected(self):
        bad = struct.pack("!HBBI", 0x1234, wire.WIRE_VERSION, wire.OP_JSON, 0)
        with pytest.raises(WireError, match="magic"):
            wire.decode_header(bad)

    def test_version_mismatch_rejected(self):
        bad = struct.pack("!HBBI", wire.MAGIC, 99, wire.OP_JSON, 0)
        with pytest.raises(WireError, match="version"):
            wire.decode_header(bad)

    def test_unknown_opcode_rejected(self):
        bad = struct.pack("!HBBI", wire.MAGIC, wire.WIRE_VERSION, 0x7F, 0)
        with pytest.raises(WireError, match="opcode"):
            wire.decode_header(bad)

    def test_oversized_length_rejected(self):
        bad = struct.pack(
            "!HBBI", wire.MAGIC, wire.WIRE_VERSION, wire.OP_JSON,
            wire.MAX_PAYLOAD_BYTES + 1,
        )
        with pytest.raises(WireError, match="cap"):
            wire.decode_header(bad)

    def test_non_object_json_payload_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            wire.decode_json_payload(b"[1, 2]")
        with pytest.raises(WireError, match="not valid JSON"):
            wire.decode_json_payload(b"{nope")


class TestAppendPayload:
    def _frame_payload(self, meta, values):
        head, value_bytes = wire.encode_append_payload(meta, values)
        return head[wire.HEADER_BYTES :] + bytes(value_bytes)

    def test_round_trip(self):
        values = np.arange(100, dtype="<f8")
        payload = self._frame_payload({"stream": "s", "buckets": 8}, values)
        meta, decoded = wire.decode_append_payload(payload)
        assert meta == {"stream": "s", "buckets": 8}
        assert decoded.dtype == wire.VALUE_DTYPE
        np.testing.assert_array_equal(decoded, values)

    def test_decode_is_zero_copy_readonly_view(self):
        values = np.arange(16, dtype="<f8")
        payload = self._frame_payload({"stream": "s"}, values)
        _meta, decoded = wire.decode_append_payload(payload)
        assert not decoded.flags.writeable
        assert decoded.base is not None  # a view, not a copy

    def test_encode_is_zero_copy_for_contiguous_float64(self):
        values = np.arange(8, dtype="<f8")
        _head, value_bytes = wire.encode_append_payload({"stream": "s"}, values)
        # The memoryview aliases the array's own buffer: no copy was made.
        assert value_bytes.obj is values or value_bytes.obj is memoryview(
            values
        ).obj

    def test_int_input_converted_once_and_exact(self):
        values = [0, 1, 2, 2**53 - 1]
        payload = self._frame_payload({"stream": "s"}, np.asarray(values))
        _meta, decoded = wire.decode_append_payload(payload)
        assert decoded.tolist() == [float(v) for v in values]

    def test_missing_stream_rejected(self):
        payload = self._frame_payload({"buckets": 8}, np.arange(4.0))
        with pytest.raises(WireError, match="stream"):
            wire.decode_append_payload(payload)

    def test_truncated_meta_rejected(self):
        payload = self._frame_payload({"stream": "s"}, np.arange(4.0))
        with pytest.raises(WireError, match="truncated"):
            wire.decode_append_payload(payload[:2])
        # Meta length pointing past the end of the payload.
        bad = struct.pack("!I", 10_000) + b"{}"
        with pytest.raises(WireError, match="overruns"):
            wire.decode_append_payload(bad)

    def test_ragged_value_region_rejected(self):
        payload = self._frame_payload({"stream": "s"}, np.arange(4.0))
        with pytest.raises(WireError, match="whole number"):
            wire.decode_append_payload(payload[:-3])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_values_rejected(self, bad):
        payload = self._frame_payload(
            {"stream": "s"}, np.asarray([1.0, bad, 2.0])
        )
        with pytest.raises(WireError, match="non-finite"):
            wire.decode_append_payload(payload)

    def test_2d_input_rejected(self):
        with pytest.raises(WireError, match="1-D"):
            wire.encode_append_payload({"stream": "s"}, np.zeros((2, 2)))


class TestNegotiateFunction:
    def test_picks_highest_common(self):
        assert wire.negotiate([1, 2], (1, 2)) == 2
        assert wire.negotiate([1], (1, 2)) == 1
        assert wire.negotiate([2, 1], (1,)) == 1

    def test_unknown_protocols_ignored(self):
        assert wire.negotiate([1, 2, 3, 99], (1, 2)) == 2

    def test_disjoint_is_none(self):
        assert wire.negotiate([3], (1, 2)) is None
        assert wire.negotiate([], (1, 2)) is None
        assert wire.negotiate("junk-type", (1, 2)) in (None, 1)


class _FragmentingSocket:
    """Socket shim that dribbles I/O in tiny chunks (worst-case TCP)."""

    def __init__(self, sock, chunk=3):
        self._sock = sock
        self._chunk = chunk
        self.recv_calls = 0

    def recv(self, n):
        self.recv_calls += 1
        return self._sock.recv(min(n, self._chunk))

    def sendall(self, data):
        data = bytes(data)
        for i in range(0, len(data), self._chunk):
            self._sock.sendall(data[i : i + self._chunk])

    def close(self):
        self._sock.close()


@pytest.fixture()
def server():
    engine = StreamEngine(workers=1)
    srv = StreamServer(engine).start_in_background()
    yield srv
    srv.stop()
    engine.close()


def _connect(server, **kwargs):
    return socket.create_connection(
        ("127.0.0.1", server.port), timeout=10.0, **kwargs
    )


class TestFragmentation:
    """Both transports must be correct over arbitrarily fragmented links."""

    @pytest.mark.parametrize("prefer", ["json", "binary"])
    def test_transport_over_fragmenting_socket(self, server, prefer):
        shim = _FragmentingSocket(_connect(server), chunk=3)
        transport, info = negotiate_transport(shim, prefer=prefer)
        try:
            expected_cls = (
                JsonTransport if prefer == "json" else BinaryTransport
            )
            assert isinstance(transport, expected_cls)
            values = _dataset(500)
            response = transport.append(
                "frag", values, {"method": "min-merge", "buckets": 8}
            )
            assert response["accepted"] == len(values)
            hist = transport.call(
                {"op": "query", "stream": "frag", "drain": True}
            )["histogram"]
            oracle = summarize(values, 8, method="min-merge")
            assert hist["error"] == oracle.error
            assert shim.recv_calls > 10  # the link really fragmented
        finally:
            transport.close()

    def test_recv_exactly_and_recv_line_reassemble(self):
        class Dribble:
            def __init__(self, chunks):
                self._chunks = list(chunks)

            def recv(self, n):
                return self._chunks.pop(0) if self._chunks else b""

            def sendall(self, data):
                pass

            def close(self):
                pass

        io = _BufferedSocket(Dribble([b"he", b"llo\nwor", b"ld!"]))
        assert io.recv_line(1024) == b"hello\n"
        assert io.recv_exactly(6) == b"world!"
        with pytest.raises(ConnectionError, match="closed"):
            io.recv_exactly(1)

    def test_short_read_mid_frame_raises_cleanly(self):
        class Half:
            def __init__(self):
                self._sent = False

            def recv(self, n):
                if self._sent:
                    return b""
                self._sent = True
                return b"\x00\x01\x02"

            def sendall(self, data):
                pass

            def close(self):
                pass

        io = _BufferedSocket(Half())
        with pytest.raises(ConnectionError, match="3 of 8"):
            io.recv_exactly(8)


class TestServerFraming:
    def _negotiate_binary(self, server):
        sock = _connect(server)
        io = _BufferedSocket(sock)
        io.send_all(b'{"op": "hello", "proto": [1, 2]}\n')
        response = json.loads(io.recv_line(1 << 16))
        assert response["ok"] and response["proto"] == 2
        return io

    def test_binary_frame_before_negotiation_is_refused(self, server):
        sock = _connect(server)
        io = _BufferedSocket(sock)
        io.send_all(wire.encode_json_frame(wire.OP_JSON, {"op": "ping"}))
        response = json.loads(io.recv_line(1 << 16))
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert "hello" in response["message"]
        io.close()

    def test_bad_magic_after_negotiation_errors_and_closes(self, server):
        io = self._negotiate_binary(server)
        io.send_all(struct.pack("!HBBI", 0xDEAD, 1, wire.OP_JSON, 0))
        opcode, length = wire.decode_header(
            io.recv_exactly(wire.HEADER_BYTES)
        )
        assert opcode == wire.OP_ERR
        response = wire.decode_json_payload(io.recv_exactly(length))
        assert response["error"] == "bad-request"
        assert "magic" in response["message"]
        # Framing errors desynchronize the stream: the server closes.
        with pytest.raises(ConnectionError):
            io.send_all(
                wire.encode_json_frame(wire.OP_JSON, {"op": "ping"})
            )
            io.recv_exactly(wire.HEADER_BYTES)
        io.close()

    def test_version_mismatch_is_bad_request(self, server):
        io = self._negotiate_binary(server)
        io.send_all(
            struct.pack("!HBBI", wire.MAGIC, 99, wire.OP_JSON, 0)
        )
        opcode, length = wire.decode_header(
            io.recv_exactly(wire.HEADER_BYTES)
        )
        assert opcode == wire.OP_ERR
        response = wire.decode_json_payload(io.recv_exactly(length))
        assert response["error"] == "bad-request"
        assert "version" in response["message"]
        io.close()

    def test_response_opcode_in_request_is_bad_request(self, server):
        io = self._negotiate_binary(server)
        io.send_all(wire.encode_json_frame(wire.OP_OK, {"ok": True}))
        opcode, length = wire.decode_header(
            io.recv_exactly(wire.HEADER_BYTES)
        )
        assert opcode == wire.OP_ERR
        response = wire.decode_json_payload(io.recv_exactly(length))
        assert response["error"] == "bad-request"
        io.close()

    def test_nan_append_frame_is_bad_request(self, server):
        io = self._negotiate_binary(server)
        head, value_bytes = wire.encode_append_payload(
            {"stream": "n", "method": "min-merge", "buckets": 4},
            np.asarray([1.0, float("nan")]),
        )
        io.send_all(head, value_bytes)
        opcode, length = wire.decode_header(
            io.recv_exactly(wire.HEADER_BYTES)
        )
        assert opcode == wire.OP_ERR
        response = wire.decode_json_payload(io.recv_exactly(length))
        assert response["error"] == "bad-request"
        assert "non-finite" in response["message"]
        # Payload errors do NOT desynchronize framing: connection lives.
        io.send_all(wire.encode_json_frame(wire.OP_JSON, {"op": "ping"}))
        opcode, length = wire.decode_header(
            io.recv_exactly(wire.HEADER_BYTES)
        )
        assert opcode == wire.OP_OK
        assert wire.decode_json_payload(io.recv_exactly(length))["pong"]
        io.close()

    def test_no_common_protocol_is_bad_request(self, server):
        sock = _connect(server)
        io = _BufferedSocket(sock)
        io.send_all(b'{"op": "hello", "proto": [42]}\n')
        response = json.loads(io.recv_line(1 << 16))
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert "no common protocol" in response["message"]
        io.close()


class TestMixedProtocols:
    def test_json_and_binary_clients_bit_identical_to_summarize(self):
        """JSON and binary connections interleaved on one stream must
        build the exact summarize() histogram: ints below 2**53 are
        exact in float64 and bucket arithmetic is float throughout."""
        engine = StreamEngine(workers=1)
        srv = StreamServer(engine).start_in_background()
        values = _dataset(4000)
        try:
            with ServiceClient(port=srv.port, transport="json") as cj, \
                    ServiceClient(port=srv.port, transport="binary") as cb:
                assert cj.info.proto == 1
                assert cb.info.proto == 2
                chunk = 250
                for i, off in enumerate(range(0, len(values), chunk)):
                    client = cj if i % 2 == 0 else cb
                    part = values[off : off + chunk]
                    result = client.append(
                        "mixed", part, method="min-merge", buckets=8,
                        universe=512,
                    )
                    assert result.accepted == len(part)
                    # Lockstep: drain before the other protocol appends,
                    # so arrival order equals submission order.
                    engine.drain()
                hist = cb.query("mixed", drain=True).histogram
                oracle = summarize(values, 8, method="min-merge")
                assert hist.segments == oracle.segments
                assert hist.error == oracle.error
                assert hist.meta.items_seen == len(values)
        finally:
            srv.stop()
            engine.close()

    def test_binary_append_matches_json_append_exactly(self, server):
        values = _dataset(1500)
        with ServiceClient(port=server.port, transport="json") as cj:
            cj.append("vj", values, method="min-merge", buckets=8)
            hj = cj.query("vj", drain=True).histogram
        with ServiceClient(port=server.port, transport="binary") as cb:
            cb.append(
                "vb", np.asarray(values, dtype="<f8"), method="min-merge",
                buckets=8,
            )
            hb = cb.query("vb", drain=True).histogram
        assert hj.segments == hb.segments
        assert hj.error == hb.error
