"""Tests for the sliding-window PWL histogram extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.offline.optimal_pwl import optimal_pwl_error

UNIVERSE = 256
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=120)


class TestConstruction:
    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowPwlMinIncrement(
                buckets=4, epsilon=0.2, universe=UNIVERSE, window=0
            )

    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowPwlMinIncrement(
                buckets=0, epsilon=0.2, universe=UNIVERSE, window=8
            )

    def test_empty_raises(self):
        summary = SlidingWindowPwlMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=8
        )
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_domain_check(self):
        summary = SlidingWindowPwlMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=8
        )
        with pytest.raises(DomainError):
            summary.insert(-1)


class TestWindowSemantics:
    def test_histogram_covers_exactly_the_window(self):
        summary = SlidingWindowPwlMinIncrement(
            buckets=4, epsilon=0.2, universe=UNIVERSE, window=25
        )
        for i in range(90):
            summary.insert((i * 7) % UNIVERSE)
        hist = summary.histogram()
        assert hist.beg == 65
        assert hist.end == 89

    def test_linear_window_after_noise_is_exact(self):
        # A noisy prefix followed by a perfectly linear window: the PWL
        # summary must recover the line exactly (error 0 at level 0).
        summary = SlidingWindowPwlMinIncrement(
            buckets=2, epsilon=0.2, universe=UNIVERSE, window=40
        )
        for i in range(100):
            summary.insert((i * 131) % UNIVERSE)
        for i in range(40):
            summary.insert(2 * i)
        hist = summary.histogram()
        expected = [2.0 * i for i in range(40)]
        assert hist.max_error_against(expected) <= 1e-9

    def test_clipped_first_segment_keeps_slope(self):
        summary = SlidingWindowPwlMinIncrement(
            buckets=2, epsilon=0.2, universe=UNIVERSE, window=10
        )
        for i in range(30):
            summary.insert(3 * i % UNIVERSE)
        hist = summary.histogram()
        # All covered values lie on y = 3x (mod wrap avoided: 3*29 < 256).
        tail = [3 * i for i in range(20, 30)]
        assert hist.max_error_against(tail) <= 1e-9


class TestGuarantee:
    @settings(max_examples=25)
    @given(streams, st.integers(1, 4), st.integers(4, 48))
    def test_window_guarantee(self, values, buckets, window):
        epsilon = 0.2
        summary = SlidingWindowPwlMinIncrement(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE, window=window
        )
        summary.extend(values)
        hist = summary.histogram()
        tail = values[-window:]
        assert len(hist) <= buckets + 1
        best = optimal_pwl_error(tail, buckets, tol=1e-3)
        bound = max((1.0 + epsilon) * (best + 1e-3), 0.5)
        assert hist.max_error_against(tail) <= bound + 1e-9


class TestMemory:
    def test_memory_independent_of_window(self):
        stream = [((i * 37) % UNIVERSE) for i in range(2500)]
        memories = []
        for window in (100, 400, 1600):
            summary = SlidingWindowPwlMinIncrement(
                buckets=6, epsilon=0.3, universe=UNIVERSE, window=window,
                hull_epsilon=0.2,
            )
            summary.extend(stream)
            memories.append(summary.memory_bytes())
        assert max(memories) <= 2 * min(memories)

    def test_bucket_cap_enforced(self):
        summary = SlidingWindowPwlMinIncrement(
            buckets=3, epsilon=0.2, universe=UNIVERSE, window=300
        )
        for i in range(1200):
            summary.insert((i * 113) % UNIVERSE)
            for level in summary._summaries:
                assert level.bucket_count <= 4
