"""Negative tests: the invariant checkers must catch real corruption.

The property suite leans on ``check_*`` helpers; if those silently passed
on broken state, the whole suite would be weaker than it looks.  Each test
here corrupts a structure deliberately and asserts the checker objects.
"""

from __future__ import annotations

import pytest

from repro.baselines.gk_quantile import GKQuantileSketch
from repro.core.bucket import Bucket
from repro.core.min_merge import MinMergeHistogram
from repro.geometry.convex_hull import StreamingHull
from repro.structures.heap import AddressableMinHeap
from repro.structures.monotone_stack import SuffixExtremaStack


class TestHeapChecker:
    def test_detects_order_violation(self):
        heap = AddressableMinHeap()
        heap.push(1)
        heap.push(2)
        heap._keys[0] = 99  # corrupt the root
        with pytest.raises(AssertionError):
            heap.check_invariant()

    def test_detects_handle_map_corruption(self):
        heap = AddressableMinHeap()
        h1 = heap.push(1)
        heap.push(2)
        heap._slot_of[h1] = 1  # point the handle at the wrong slot
        with pytest.raises(AssertionError):
            heap.check_invariant()


class TestMinMergeCheckers:
    def test_detects_min_merge_violation(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend([0, 0, 0, 0])  # four identical singleton-ish buckets
        # Corrupt the *tail* bucket to a huge error: now the cheap pair at
        # the head (merge error 0) undercuts err(S) = 5000.
        summary._list.tail.bucket = Bucket(3, 3, 0, 10_000)
        with pytest.raises(AssertionError):
            summary.check_min_merge_property()

    def test_detects_stale_heap_key(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend(range(20))
        node = summary._list.head
        summary._heap.update(node.pair_handle, (-123.0, node.bucket.beg))
        with pytest.raises(AssertionError):
            summary.check_heap_consistency()

    def test_detects_missing_pair_key(self):
        summary = MinMergeHistogram(buckets=2)
        summary.extend(range(20))
        node = summary._list.head
        summary._heap.remove(node.pair_handle)
        node.pair_handle = None
        with pytest.raises(AssertionError):
            summary.check_heap_consistency()

    def test_linear_mode_rejects_populated_heap(self):
        summary = MinMergeHistogram(buckets=2, findmin="linear")
        summary.extend(range(20))
        summary._heap.push(1.0, None)
        with pytest.raises(AssertionError):
            summary.check_heap_consistency()


class TestHullChecker:
    def test_detects_non_convex_chain(self):
        hull = StreamingHull.from_points([(0, 0), (1, 5), (2, 0)])
        hull.upper.insert(1, (0.5, -100))  # a reflex vertex
        with pytest.raises(AssertionError):
            hull.check_invariant()

    def test_detects_endpoint_mismatch(self):
        hull = StreamingHull.from_points([(0, 0), (1, 5), (2, 0)])
        hull.lower[0] = (-1, 0)
        with pytest.raises(AssertionError):
            hull.check_invariant()


class TestStackChecker:
    def test_detects_value_monotonicity_violation(self):
        stack = SuffixExtremaStack("max")
        for v in (9, 5, 2):
            stack.append(v)
        stack._values[1] = 100  # no longer decreasing
        with pytest.raises(AssertionError):
            stack.check_invariant()

    def test_detects_position_violation(self):
        stack = SuffixExtremaStack("min")
        for v in (1, 2, 3):
            stack.append(v)
        stack._positions[:] = [0, 0]
        stack._values[:] = [1, 2]
        with pytest.raises(AssertionError):
            stack.check_invariant()


class TestGKChecker:
    def test_detects_gap_miscount(self):
        sketch = GKQuantileSketch(0.1)
        sketch.extend(range(100))
        sketch._entries[0].g += 5
        with pytest.raises(AssertionError):
            sketch.check_invariant()

    def test_detects_disorder(self):
        sketch = GKQuantileSketch(0.1)
        sketch.extend(range(100))
        sketch._entries[0], sketch._entries[-1] = (
            sketch._entries[-1],
            sketch._entries[0],
        )
        with pytest.raises(AssertionError):
            sketch.check_invariant()
