"""Tests for the capacity-planning module."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compression_profile, plan_summary
from repro.exceptions import InvalidParameterError

streams = st.lists(st.integers(0, 300), min_size=4, max_size=120)


class TestValidation:
    def test_empty_sample(self):
        with pytest.raises(InvalidParameterError):
            plan_summary([], 1.0)
        with pytest.raises(InvalidParameterError):
            compression_profile([], [4])

    def test_negative_target(self):
        with pytest.raises(InvalidParameterError):
            plan_summary([1, 2], -1.0)

    def test_empty_sweep(self):
        with pytest.raises(InvalidParameterError):
            compression_profile([1, 2], [])


class TestPlanSummary:
    def test_plan_has_all_algorithms(self):
        plan = plan_summary([((i * 37) % 100) for i in range(200)], 10.0)
        names = {o.algorithm for o in plan.options}
        assert names == {
            "min-merge", "min-increment", "pwl-min-merge", "pwl-min-increment"
        }

    def test_best_picks_smallest_memory(self):
        plan = plan_summary([((i * 37) % 100) for i in range(200)], 10.0)
        best = plan.best()
        assert best.projected_memory_bytes == min(
            o.projected_memory_bytes for o in plan.options
        )

    def test_pwl_needs_no_more_buckets_than_serial(self):
        plan = plan_summary([3 * i for i in range(300)], 5.0)
        assert plan.pwl_buckets_needed <= plan.serial_buckets_needed

    @settings(max_examples=20)
    @given(streams, st.sampled_from([1.0, 5.0, 25.0]))
    def test_planned_min_merge_budget_meets_target(self, values, target):
        """Deploying the plan on the sample itself hits the target."""
        from repro.core.min_merge import MinMergeHistogram

        plan = plan_summary(values, target)
        option = next(
            o for o in plan.options if o.algorithm == "min-merge"
        )
        summary = MinMergeHistogram(buckets=option.buckets)
        summary.extend(values)
        assert summary.error <= target + 1e-9

    @settings(max_examples=15)
    @given(streams, st.sampled_from([2.0, 10.0]))
    def test_planned_min_increment_budget_meets_target(self, values, target):
        from repro.core.min_increment import MinIncrementHistogram

        epsilon = 0.2
        plan = plan_summary(values, target, epsilon=epsilon)
        option = next(
            o for o in plan.options if o.algorithm == "min-increment"
        )
        universe = max(2, max(values) + 1)
        summary = MinIncrementHistogram(
            buckets=option.buckets, epsilon=epsilon, universe=universe
        )
        summary.extend(values)
        # Sized against target/(1+eps), so the (1+eps) answer fits the
        # target (up to the ladder's 0.5 granularity floor).
        assert summary.error <= max(target, 0.5) + 1e-9

    def test_zero_target_counts_runs(self):
        plan = plan_summary([1, 1, 2, 2, 3], 0.0)
        assert plan.serial_buckets_needed == 3


class TestCompressionProfile:
    def test_rows_match_sweep(self):
        values = [((i * 53) % 211) for i in range(150)]
        rows = compression_profile(values, [2, 4, 8])
        assert [r["buckets"] for r in rows] == [2, 4, 8]

    def test_errors_monotone_in_buckets(self):
        values = [((i * 53) % 211) for i in range(150)]
        rows = compression_profile(values, [2, 4, 8, 16])
        serial = [r["serial-error"] for r in rows]
        assert serial == sorted(serial, reverse=True)

    def test_pwl_ratio_at_most_one_plus_tol(self):
        values = [((i * 53) % 211) for i in range(150)]
        for row in compression_profile(values, [4, 8]):
            if not math.isnan(row["pwl-ratio"]):
                assert row["pwl-ratio"] <= 1.0 + 1e-6

    def test_trending_data_shows_pwl_advantage(self):
        values = [5 * i + ((i * 31) % 7) for i in range(300)]
        rows = compression_profile(values, [4])
        assert rows[0]["pwl-ratio"] < 0.2  # lines crush trends

    def test_zero_error_gives_nan_ratio(self):
        rows = compression_profile([5, 5, 5, 5], [2])
        assert math.isnan(rows[0]["pwl-ratio"])
