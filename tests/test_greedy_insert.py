"""Tests for GREEDY-INSERT: Lemma 2's exact dual optimality."""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.greedy_insert import GreedyInsertSummary, greedy_bucket_count
from repro.exceptions import EmptySummaryError, InvalidParameterError


def brute_force_min_buckets(values: tuple, error: float) -> int:
    """Exponential-ish reference: DP over split positions."""

    @lru_cache(maxsize=None)
    def solve(start: int) -> int:
        if start == len(values):
            return 0
        best = len(values)
        lo = hi = values[start]
        for end in range(start, len(values)):
            v = values[end]
            lo = v if v < lo else lo
            hi = v if v > hi else hi
            if (hi - lo) / 2.0 > error:
                break
            best = min(best, 1 + solve(end + 1))
        return best

    return solve(0)


class TestConstruction:
    def test_negative_error_raises(self):
        with pytest.raises(InvalidParameterError):
            GreedyInsertSummary(-0.5)

    def test_empty_summary(self):
        summary = GreedyInsertSummary(1.0)
        assert summary.bucket_count == 0
        with pytest.raises(EmptySummaryError):
            _ = summary.error
        with pytest.raises(EmptySummaryError):
            summary.histogram()


class TestGreedyBehaviour:
    def test_zero_error_splits_on_any_change(self):
        summary = GreedyInsertSummary(0.0)
        summary.extend([1, 1, 2, 2, 2, 3])
        assert summary.bucket_count == 3
        assert summary.error == 0.0

    def test_large_error_single_bucket(self):
        summary = GreedyInsertSummary(1000.0)
        summary.extend([1, 500, 999])
        assert summary.bucket_count == 1

    def test_bucket_boundaries(self):
        summary = GreedyInsertSummary(1.0)
        summary.extend([0, 1, 2, 10, 11, 12])
        buckets = summary.buckets_snapshot()
        assert [(b.beg, b.end) for b in buckets] == [(0, 2), (3, 5)]

    def test_error_never_exceeds_target(self):
        summary = GreedyInsertSummary(5.0)
        summary.extend([((i * 31) % 97) for i in range(200)])
        assert summary.error <= 5.0
        for bucket in summary.buckets_snapshot():
            assert bucket.error <= 5.0

    def test_histogram_roundtrip(self):
        summary = GreedyInsertSummary(2.0)
        values = [0, 1, 2, 3, 9, 9, 8, 20]
        summary.extend(values)
        hist = summary.histogram()
        assert hist.max_error_against(values) <= 2.0

    def test_start_index_offsets_buckets(self):
        summary = GreedyInsertSummary(0.0, start_index=100)
        summary.extend([5, 5, 7])
        buckets = summary.buckets_snapshot()
        assert buckets[0].beg == 100
        assert buckets[-1].end == 102


class TestOptimality:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=40),
        st.sampled_from([0.0, 0.5, 1.0, 2.0, 5.0, 10.0]),
    )
    def test_matches_brute_force_minimum(self, values, error):
        """Lemma 2: greedy bucket count is the exact minimum."""
        assert greedy_bucket_count(values, error) == brute_force_min_buckets(
            tuple(values), error
        )

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    def test_monotone_in_error(self, values):
        counts = [
            greedy_bucket_count(values, e) for e in (0.0, 1.0, 5.0, 25.0, 50.0)
        ]
        assert counts == sorted(counts, reverse=True)


class TestBatchPath:
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=150),
        st.integers(1, 10),
        st.sampled_from([0.0, 1.0, 4.0, 16.0]),
    )
    def test_batched_equals_per_item(self, values, batch, error):
        """insert_batch must land in exactly the same state as insert."""
        reference = GreedyInsertSummary(error)
        reference.extend(values)
        batched = GreedyInsertSummary(error)
        for i in range(0, len(values), batch):
            chunk = values[i:i + batch]
            batched.insert_batch(chunk, min(chunk), max(chunk))
        # The fast path is state-identical to per-item insertion: if the
        # whole chunk fits the open bucket, every prefix of it does too,
        # and Case 1 installs the exact union min/max.
        assert batched.buckets_snapshot() == reference.buckets_snapshot()

    def test_case1_fast_path_taken(self):
        summary = GreedyInsertSummary(10.0)
        summary.insert(5)
        assert summary.insert_batch([6, 7, 8], 6, 8) is True
        assert summary.bucket_count == 1

    def test_case2_falls_back_to_scan(self):
        summary = GreedyInsertSummary(1.0)
        summary.insert(5)
        assert summary.insert_batch([50, 51, 90], 50, 90) is False
        assert summary.bucket_count == 3

    def test_empty_batch_is_noop(self):
        summary = GreedyInsertSummary(1.0)
        summary.insert(5)
        assert summary.insert_batch([], 0, 0) is True
        assert summary.bucket_count == 1

    def test_batch_into_empty_summary(self):
        summary = GreedyInsertSummary(5.0)
        assert summary.insert_batch([1, 2, 3], 1, 3) is True
        buckets = summary.buckets_snapshot()
        assert (buckets[0].beg, buckets[0].end) == (0, 2)


class TestMemory:
    def test_memory_counts_closed_and_open(self):
        summary = GreedyInsertSummary(0.0)
        summary.extend([1, 2, 3])  # two closed + one open
        assert summary.memory_bytes() == 2 * 4 * 4 + 3 * 4
