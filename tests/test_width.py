"""Tests for rotating-calipers Euclidean width and the tbr."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull, convex_hull
from repro.geometry.width import euclidean_width, thinnest_bounding_rectangle


def brute_force_width(points) -> float:
    """Reference: min over hull edges of max point distance to edge line."""
    hull = convex_hull(points)
    if len(hull) < 3:
        return 0.0
    best = math.inf
    n = len(hull)
    for i in range(n):
        ax, ay = hull[i]
        bx, by = hull[(i + 1) % n]
        length = math.hypot(bx - ax, by - ay)
        if length == 0:
            continue
        farthest = max(
            abs((bx - ax) * (py - ay) - (by - ay) * (px - ax)) / length
            for px, py in points
        )
        best = min(best, farthest)
    return best


point_sets = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
    min_size=1,
    max_size=40,
)


class TestDegenerate:
    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            euclidean_width([])
        with pytest.raises(InvalidParameterError):
            thinnest_bounding_rectangle([])

    def test_single_point(self):
        assert euclidean_width([(3, 4)]) == 0.0
        width, corners = thinnest_bounding_rectangle([(3, 4)])
        assert width == 0.0
        assert corners == [(3.0, 4.0)] * 4

    def test_two_points(self):
        assert euclidean_width([(0, 0), (3, 4)]) == 0.0

    def test_collinear(self):
        assert euclidean_width([(i, i) for i in range(5)]) == 0.0


class TestKnownShapes:
    def test_axis_aligned_rectangle(self):
        pts = [(0, 0), (10, 0), (10, 3), (0, 3)]
        assert euclidean_width(pts) == pytest.approx(3.0)

    def test_rotated_rectangle(self):
        # 45-degree square of side sqrt(2): width = sqrt(2).
        pts = [(0, 0), (1, 1), (2, 0), (1, -1)]
        assert euclidean_width(pts) == pytest.approx(math.sqrt(2.0))

    def test_triangle_width_is_smallest_height(self):
        pts = [(0, 0), (4, 0), (0, 3)]
        # Heights: 3 (base 4), 4 (base 3), 12/5 (hypotenuse).
        assert euclidean_width(pts) == pytest.approx(12.0 / 5.0)

    def test_accepts_streaming_hull(self):
        hull = StreamingHull.from_points([(0, 0), (1, 3), (2, 0)])
        assert euclidean_width(hull) == pytest.approx(brute_force_width(
            [(0, 0), (1, 3), (2, 0)]
        ))


class TestAgainstBruteForce:
    @given(point_sets)
    def test_width_matches_reference(self, points):
        assert euclidean_width(points) == pytest.approx(
            brute_force_width(points), abs=1e-9
        )


class TestBoundingRectangle:
    @given(point_sets)
    def test_rectangle_contains_all_points(self, points):
        width, corners = thinnest_bounding_rectangle(points)
        if width == 0.0:
            return
        (ax, ay), (bx, by), _, (dx, dy) = corners
        ux, uy = bx - ax, by - ay
        vx, vy = dx - ax, dy - ay
        uu = ux * ux + uy * uy
        vv = vx * vx + vy * vy
        for px, py in points:
            s = ((px - ax) * ux + (py - ay) * uy) / uu
            t = ((px - ax) * vx + (py - ay) * vy) / vv
            assert -1e-9 <= s <= 1 + 1e-9
            assert -1e-9 <= t <= 1 + 1e-9

    @given(point_sets)
    def test_rectangle_short_side_is_width(self, points):
        width, corners = thinnest_bounding_rectangle(points)
        if width == 0.0:
            return
        (ax, ay), _, _, (dx, dy) = corners
        short = math.hypot(dx - ax, dy - ay)
        assert short == pytest.approx(width, abs=1e-9)
