"""Tests for the scenario DSL, generators, runner, and conformance suite.

The differential conformance matrix at the bottom is the PR's standing
gate: every bundled scenario runs through object/soa x serial/parallel x
scalar/batched ingest and must produce bit-identical buckets plus
bounded error against the offline-optimal oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import SeedLike, brownian_walk, uniform_noise
from repro.exceptions import InvalidParameterError
from repro.scenarios import (
    ArrivalSpec,
    DriftSpec,
    OrderingSpec,
    RegimeSpec,
    ScenarioRunner,
    ScenarioSpec,
    TenantsSpec,
    ValueSpec,
    apply_ordering,
    batch_schedule,
    bundled_scenarios,
    check_conformance,
    child_rng,
    conformance_scenarios,
    fingerprint,
    generate,
    generate_stream,
    load_bundled,
    resolve_spec,
    run_conformance,
    run_scenario,
    schedules,
    stream_lengths,
)

# Golden generator digests: any change to the seeded synthesis pipeline
# (spec seed -> SeedSequence -> process -> drift -> ordering -> quantize)
# must be deliberate and show up here.
GOLDEN_FINGERPRINTS = {
    "steady-brownian": "8493c7fbd3c0978c2c319146b2db7a1d",
    "heavy-tail-zipf": "09b4a7a4c1e89cbd9e2b6ec705ea4324",
    "hot-cold-tenants": "4e36c600e9b4828b46f40633d3a306b2",
}


# -- the DSL ------------------------------------------------------------------


class TestSpec:
    def test_yaml_round_trip_bundled(self):
        for name in bundled_scenarios():
            spec = load_bundled(name)
            assert ScenarioSpec.from_yaml(spec.to_yaml()) == spec
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            ScenarioSpec.from_dict({"name": "x", "lenght": 100})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            ScenarioSpec.from_dict(
                {"name": "x", "arrival": {"pattern": "steady", "btach": 4}}
            )

    def test_invalid_enum_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            ArrivalSpec(pattern="torrential")
        with pytest.raises(InvalidParameterError):
            ValueSpec(process="lava-lamp")
        with pytest.raises(InvalidParameterError):
            OrderingSpec(kind="backwards-ish")
        with pytest.raises(InvalidParameterError):
            DriftSpec(kind="sideways")

    def test_hot_cold_must_agree(self):
        with pytest.raises(InvalidParameterError, match="hot_fraction"):
            TenantsSpec(streams=4, hot_fraction=0.5, hot_weight=0.0)

    def test_stream_names(self):
        spec = ScenarioSpec(name="t", tenants=TenantsSpec(streams=3))
        assert spec.stream_names == ("t/000", "t/001", "t/002")

    def test_with_overrides(self):
        spec = load_bundled("steady-brownian")
        small = spec.with_overrides(length=512, seed=7)
        assert small.length == 512 and small.seed == 7
        assert small.arrival == spec.arrival

    def test_resolve_spec_path_and_name(self, tmp_path):
        spec = load_bundled("steady-brownian")
        path = tmp_path / "local.yaml"
        spec.with_overrides(name="local-copy").save(path)
        assert resolve_spec(str(path)).name == "local-copy"
        assert resolve_spec("steady-brownian").name == "steady-brownian"
        with pytest.raises(InvalidParameterError, match="no bundled scenario"):
            resolve_spec("no-such-scenario")

    @given(
        length=st.integers(8, 4000),
        seed=st.integers(0, 2**31 - 1),
        buckets=st.integers(1, 64),
        pattern=st.sampled_from(("steady", "bursty", "heavy-tailed")),
        process=st.sampled_from(("brownian", "uniform", "sine", "zipf")),
        kind=st.sampled_from(("natural", "sorted", "reverse", "shuffled")),
        drift=st.sampled_from(("none", "linear", "jump")),
        out_of_order=st.floats(0.0, 1.0),
        streams=st.integers(1, 5),
    )
    def test_yaml_round_trip_generated(
        self, length, seed, buckets, pattern, process, kind, drift,
        out_of_order, streams,
    ):
        spec = ScenarioSpec(
            name="gen",
            length=max(length, streams),
            seed=seed,
            buckets=buckets,
            arrival=ArrivalSpec(pattern=pattern),
            values=ValueSpec(
                process=process, drift=DriftSpec(kind=drift, magnitude=3.0)
            ),
            ordering=OrderingSpec(kind=kind, out_of_order=out_of_order),
            tenants=TenantsSpec(streams=streams),
        )
        assert ScenarioSpec.from_yaml(spec.to_yaml()) == spec


# -- deterministic generation -------------------------------------------------


class TestGenerate:
    def test_two_runs_byte_identical(self):
        for name in bundled_scenarios():
            spec = load_bundled(name)
            first = generate(spec)
            second = generate(spec)
            assert first.keys() == second.keys()
            for stream in first:
                assert np.array_equal(first[stream], second[stream])
                assert first[stream].dtype == second[stream].dtype

    def test_golden_fingerprints(self):
        for name, digest in GOLDEN_FINGERPRINTS.items():
            assert fingerprint(load_bundled(name)) == digest, name

    def test_seed_changes_stream(self):
        spec = load_bundled("steady-brownian")
        a = generate_stream(spec)
        b = generate_stream(spec.with_overrides(seed=spec.seed + 1))
        assert not np.array_equal(a, b)

    def test_streams_are_independent(self):
        spec = load_bundled("hot-cold-tenants")
        streams = generate(spec)
        arrays = list(streams.values())
        n = min(len(a) for a in arrays)
        assert not np.array_equal(arrays[0][:n], arrays[1][:n])

    def test_generator_seed_plumbing_byte_identical(self):
        """Regression for the shared-Generator seed plumbing.

        The data generators accept a ``numpy.random.Generator`` in place
        of an int seed and must consume *that* generator's stream, so a
        spec-level seed fans out deterministically over processes.
        """
        seq = np.random.SeedSequence([42, 0, 0])
        via_generator = brownian_walk(256, seed=np.random.default_rng(seq))
        again = brownian_walk(256, seed=np.random.default_rng(seq))
        assert via_generator == again
        # Passing the *same live* generator twice advances its state:
        # the two halves must differ (proof the shared stream is used).
        rng = np.random.default_rng(7)
        first = uniform_noise(128, seed=rng)
        second = uniform_noise(128, seed=rng)
        assert first != second
        # And an int seed still means an independent fresh generator.
        assert uniform_noise(128, seed=7) == uniform_noise(128, seed=7)

    def test_seedlike_exported(self):
        assert SeedLike is not None

    def test_child_rng_purposes_disjoint(self):
        spec = load_bundled("steady-brownian")
        a = child_rng(spec, 0, 0).integers(0, 1 << 30, 64)
        b = child_rng(spec, 0, 1).integers(0, 1 << 30, 64)
        c = child_rng(spec, 1, 0).integers(0, 1 << 30, 64)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_stream_lengths_sum_to_length(self):
        for name in bundled_scenarios():
            spec = load_bundled(name)
            lengths = stream_lengths(spec)
            assert sum(lengths) == spec.length
            assert all(n >= 1 for n in lengths)

    def test_hot_cold_split_is_skewed(self):
        spec = load_bundled("hot-cold-tenants")
        lengths = stream_lengths(spec)
        hot_streams = int(np.ceil(spec.tenants.hot_fraction
                                  * spec.tenants.streams))
        hot = sum(sorted(lengths, reverse=True)[:hot_streams])
        assert hot / spec.length == pytest.approx(
            spec.tenants.hot_weight, abs=0.05
        )

    def test_values_lie_in_universe(self):
        for name in bundled_scenarios():
            spec = load_bundled(name)
            for values in generate(spec).values():
                assert values.min() >= 0
                assert values.max() < spec.universe

    def test_zipf_universe_is_sparse(self):
        spec = load_bundled("heavy-tail-zipf")
        values = generate_stream(spec)
        support = spec.values.params["support"]
        assert len(np.unique(values)) <= support

    @given(
        kind=st.sampled_from(("natural", "sorted", "reverse", "shuffled",
                              "adversarial")),
        out_of_order=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 2000),
    )
    def test_orderings_preserve_multiset(self, kind, out_of_order, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 4096, n)
        spec = OrderingSpec(kind=kind, out_of_order=out_of_order)
        reordered = apply_ordering(values, spec, np.random.default_rng(seed))
        assert sorted(reordered.tolist()) == sorted(values.tolist())

    def test_sorted_and_reverse_orderings(self):
        values = np.array([5, 1, 4, 2, 3])
        rng = np.random.default_rng(0)
        asc = apply_ordering(values, OrderingSpec(kind="sorted"), rng)
        desc = apply_ordering(values, OrderingSpec(kind="reverse"), rng)
        assert asc.tolist() == [1, 2, 3, 4, 5]
        assert desc.tolist() == [5, 4, 3, 2, 1]

    def test_adversarial_interleaves_extremes(self):
        values = np.arange(10)
        out = apply_ordering(
            values, OrderingSpec(kind="adversarial"), np.random.default_rng(0)
        )
        assert out.tolist() == [0, 9, 1, 8, 2, 7, 3, 6, 4, 5]

    def test_out_of_order_displacement_bounded(self):
        n, displacement = 5000, 16
        spec = OrderingSpec(kind="natural", out_of_order=0.3,
                            displacement=displacement)
        values = np.arange(n)
        out = apply_ordering(values, spec, np.random.default_rng(3))
        # Identity values: each item's new index reveals its displacement.
        shift = np.abs(out - np.arange(n))
        assert int(shift.max()) <= displacement
        assert int(shift.max()) > 0  # some reordering actually happened

    @given(
        pattern=st.sampled_from(("steady", "bursty", "heavy-tailed")),
        n=st.integers(1, 20000),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batch_schedule_partitions_stream(self, pattern, n, seed):
        spec = ScenarioSpec(
            name="s", length=max(n, 1), arrival=ArrivalSpec(pattern=pattern)
        )
        schedule = batch_schedule(spec, n, np.random.default_rng(seed))
        assert sum(schedule) == n
        assert all(b >= 1 for b in schedule)

    def test_schedules_match_stream_lengths(self):
        spec = load_bundled("hot-cold-tenants")
        streams = generate(spec)
        for name, schedule in schedules(spec).items():
            assert sum(schedule) == len(streams[name])


# -- the runner ---------------------------------------------------------------


class TestRunner:
    def test_local_report_verified_against_oracle(self):
        spec = load_bundled("steady-brownian").with_overrides(length=2048)
        report = run_scenario(spec, "min-merge")
        assert report.all_bounds_ok
        (stream,) = report.streams
        assert stream.items == 2048
        assert stream.oracle_error > 0
        assert stream.true_error <= stream.error_bound
        assert stream.memory_bytes > 0
        assert stream.append.count == stream.batches
        payload = report.to_dict()
        assert payload["scenario"] == spec.name
        assert payload["streams"][0]["bound_ok"] is True

    def test_soa_backend_matches_object(self):
        spec = load_bundled("steady-brownian").with_overrides(length=2048)
        obj = run_scenario(spec, "min-merge", backend="object")
        soa = run_scenario(spec, "min-merge", backend="soa")
        assert obj.streams[0].error == soa.streams[0].error
        assert obj.streams[0].buckets_used == soa.streams[0].buckets_used

    def test_parallel_run_bounded(self):
        spec = load_bundled("steady-brownian").with_overrides(length=4096)
        report = run_scenario(spec, "min-merge", workers=2)
        assert report.workers == 2
        assert report.all_bounds_ok

    def test_windowed_run_bounded(self):
        spec = load_bundled("out-of-order-window").with_overrides(length=3000)
        report = run_scenario(spec, "min-increment")
        assert report.all_bounds_ok

    def test_fault_scenario_recovers_bit_identical(self):
        spec = load_bundled("crash-recovery")
        report = run_scenario(spec, "min-merge")
        assert report.faults_fired == ("snapshot.rename",)
        (stream,) = report.streams
        assert stream.recovered_identical is True
        assert report.all_bounds_ok

    def test_service_target_matches_local(self):
        spec = load_bundled("steady-brownian").with_overrides(length=2048)
        local = run_scenario(spec, "min-merge")
        served = run_scenario(spec, "min-merge", target="service")
        assert served.streams[0].error == local.streams[0].error
        assert served.streams[0].buckets_used == local.streams[0].buckets_used
        assert served.streams[0].memory_bytes > 0

    def test_service_target_soa_backend(self):
        """The wire must carry the backend key (server config regression)."""
        spec = load_bundled("steady-brownian").with_overrides(length=1024)
        local = run_scenario(spec, "min-merge", backend="soa")
        served = run_scenario(spec, "min-merge", target="service",
                              backend="soa")
        assert served.streams[0].error == local.streams[0].error

    def test_invalid_runner_configs_rejected(self):
        spec = load_bundled("steady-brownian")
        with pytest.raises(InvalidParameterError):
            ScenarioRunner(target="cloud")
        with pytest.raises(InvalidParameterError):
            ScenarioRunner(target="service", workers=2)
        with pytest.raises(InvalidParameterError):
            run_scenario(spec, "min-increment", workers=2)
        with pytest.raises(InvalidParameterError):
            run_scenario(spec, "min-increment", backend="soa")
        windowed = load_bundled("out-of-order-window")
        with pytest.raises(InvalidParameterError):
            run_scenario(windowed, "min-merge", workers=2)


# -- differential conformance -------------------------------------------------


class TestConformance:
    @pytest.mark.parametrize("name", sorted(conformance_scenarios()))
    @pytest.mark.parametrize("method", ("min-merge", "pwl-min-merge"))
    def test_full_matrix_bit_identical(self, name, method):
        """The PR's acceptance gate: every bundled scenario x both
        merge-capable methods through object/soa x serial/parallel x
        scalar/batched ingest -- bit-identical within each family,
        bounded against the DP-verified oracle."""
        spec = load_bundled(name)
        if spec.length > 4000:  # keep the per-PR matrix fast; nightly
            spec = spec.with_overrides(length=4000)  # runs full lengths
        result = check_conformance(spec, method)
        assert result.ok
        for cells in result.cells.values():
            assert "serial/object/scalar" in cells
            assert "serial/soa/batch" in cells
            assert "parallel/object" in cells
            assert "parallel/soa" in cells

    def test_windowed_scenario_serial_cells(self):
        spec = load_bundled("out-of-order-window").with_overrides(length=3000)
        result = check_conformance(spec, "min-increment")
        (cells,) = result.cells.values()
        assert set(cells) == {"serial/object/scalar", "serial/object/batch"}

    def test_fault_scenario_conformance_includes_recovery(self):
        result = check_conformance(load_bundled("crash-recovery"), "min-merge")
        assert result.recovered_identical is True

    def test_mismatch_is_reported_not_raised_by_run(self):
        spec = load_bundled("steady-brownian").with_overrides(length=512)
        result = run_conformance(spec, "min-merge")
        assert result.ok and result.mismatches == []
        assert result.to_dict()["cells"] == result.cell_count

    def test_conformance_scenarios_excludes_windowed(self):
        eligible = conformance_scenarios()
        assert "out-of-order-window" not in eligible
        assert len(eligible) >= 6


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_scenario_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in bundled_scenarios():
            assert name in out

    def test_scenario_run_text(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "crash-recovery", "--method", "min-merge"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bounds OK" in out
        assert "snapshot.rename" in out

    def test_scenario_run_json_with_conformance(self, capsys):
        import json

        from repro.cli import main

        code = main(
            ["scenario", "run", "steady-brownian.yaml", "--method",
             "min-merge", "--json", "--conformance"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["all_bounds_ok"] is True
        assert payload["conformance"]["ok"] is True
