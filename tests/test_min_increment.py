"""Tests for MIN-INCREMENT: Theorem 2's (1 + eps, 1) guarantee."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.min_increment import MinIncrementHistogram
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.offline.optimal import optimal_error

UNIVERSE = 1024
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=300)
epsilons = st.sampled_from([0.1, 0.2, 0.5])
bucket_counts = st.integers(1, 10)


class TestConstruction:
    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            MinIncrementHistogram(buckets=0, epsilon=0.2, universe=UNIVERSE)

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            MinIncrementHistogram(buckets=4, epsilon=1.5, universe=UNIVERSE)

    def test_invalid_batch_size(self):
        with pytest.raises(InvalidParameterError):
            MinIncrementHistogram(
                buckets=4, epsilon=0.2, universe=UNIVERSE, batch_size=0
            )

    def test_empty_summary(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(EmptySummaryError):
            summary.histogram()


class TestDomainChecks:
    def test_value_below_domain(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(DomainError):
            summary.insert(-1)

    def test_value_at_universe_rejected(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(DomainError):
            summary.insert(UNIVERSE)

    def test_boundary_values_accepted(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        summary.insert(0)
        summary.insert(UNIVERSE - 1)
        assert summary.items_seen == 2


class TestGuarantee:
    @given(streams, bucket_counts, epsilons)
    def test_error_within_eps_of_optimal(self, values, buckets, epsilon):
        """Theorem 2: error <= (1 + eps) * optimal, with <= B buckets."""
        summary = MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE
        )
        summary.extend(values)
        hist = summary.histogram()
        best = optimal_error(values, buckets)
        assert len(hist) <= buckets
        assert hist.error <= (1.0 + epsilon) * best + 1e-9

    @given(streams)
    def test_reported_error_matches_measured(self, values):
        summary = MinIncrementHistogram(buckets=5, epsilon=0.2, universe=UNIVERSE)
        summary.extend(values)
        hist = summary.histogram()
        assert hist.max_error_against(values) == pytest.approx(hist.error)

    def test_half_integer_optimum_regression(self):
        # Regression: [0, 2, 3] with B = 2 has optimal error 0.5; without
        # the exact 0.5 ladder level the answer would be 1.0 (factor 2).
        summary = MinIncrementHistogram(buckets=2, epsilon=0.2, universe=16)
        summary.extend([0, 2, 3])
        assert summary.error == 0.5

    def test_constant_stream_exact(self):
        summary = MinIncrementHistogram(buckets=2, epsilon=0.2, universe=UNIVERSE)
        summary.extend([7] * 100)
        assert summary.error == 0.0
        assert len(summary.histogram()) == 1

    def test_piecewise_constant_exact_with_zero_level(self):
        stream = [10] * 40 + [500] * 40
        summary = MinIncrementHistogram(buckets=2, epsilon=0.2, universe=UNIVERSE)
        summary.extend(stream)
        assert summary.error == 0.0
        assert len(summary.histogram()) == 2

    def test_levels_die_monotonically(self):
        summary = MinIncrementHistogram(buckets=2, epsilon=0.2, universe=UNIVERSE)
        alive_counts = []
        for i in range(300):
            summary.insert((i * 37) % UNIVERSE)
            alive_counts.append(len(summary.alive_levels))
        assert alive_counts == sorted(alive_counts, reverse=True)
        # The coarsest level always survives.
        assert alive_counts[-1] >= 1

    def test_answer_uses_smallest_surviving_level(self):
        summary = MinIncrementHistogram(buckets=3, epsilon=0.2, universe=UNIVERSE)
        summary.extend([0, 100, 200, 300, 400, 500] * 10)
        best = summary.best_summary()
        assert best.target_error == min(summary.alive_levels)


class TestDualQuery:
    def test_empty_raises(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        with pytest.raises(EmptySummaryError):
            summary.buckets_for_error(1.0)

    def test_negative_error_rejected(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        summary.insert(1)
        with pytest.raises(InvalidParameterError):
            summary.buckets_for_error(-1.0)

    def test_constant_stream_needs_one_bucket(self):
        summary = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        summary.extend([5] * 50)
        lower, upper = summary.buckets_for_error(0.0)
        assert lower == upper == 1

    @given(streams, st.sampled_from([0.0, 0.5, 2.0, 10.0, 100.0]))
    def test_bounds_bracket_the_true_dual(self, values, error):
        from repro.offline.optimal import min_buckets_for_error

        summary = MinIncrementHistogram(buckets=8, epsilon=0.2, universe=UNIVERSE)
        summary.extend(values)
        lower, upper = summary.buckets_for_error(error)
        truth = min_buckets_for_error(values, error)
        assert lower <= truth
        if upper is not None:
            assert truth <= upper

    def test_upper_none_when_all_fine_levels_dead(self):
        # Uniform noise kills every fine level; asking for a tiny error
        # can only be answered with a lower bound.
        summary = MinIncrementHistogram(buckets=2, epsilon=0.2, universe=UNIVERSE)
        summary.extend([(i * 389) % UNIVERSE for i in range(500)])
        lower, upper = summary.buckets_for_error(0.0)
        assert upper is None
        assert lower >= 1


class TestBatching:
    @given(streams, st.integers(1, 16))
    def test_batched_result_equals_unbuffered(self, values, batch_size):
        plain = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        plain.extend(values)
        batched = MinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, batch_size=batch_size
        )
        batched.extend(values)
        batched.flush()
        assert batched.alive_levels == plain.alive_levels
        assert batched.error == plain.error
        assert [
            (b.beg, b.end, b.min, b.max)
            for b in batched.best_summary().buckets_snapshot()
        ] == [
            (b.beg, b.end, b.min, b.max)
            for b in plain.best_summary().buckets_snapshot()
        ]

    def test_auto_batch_size_is_ladder_length(self):
        summary = MinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, batch_size="auto"
        )
        assert summary._batch_size == len(summary.ladder)

    def test_histogram_flushes_pending_buffer(self):
        summary = MinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, batch_size=64
        )
        summary.extend([1, 2, 3])
        hist = summary.histogram()  # implicit flush
        assert hist.end == 2

    def test_flush_is_idempotent(self):
        summary = MinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, batch_size=8
        )
        summary.extend([1, 2, 3])
        summary.flush()
        summary.flush()
        assert summary.items_seen == 3


class TestMemory:
    def test_memory_independent_of_stream_length(self):
        summary = MinIncrementHistogram(buckets=8, epsilon=0.2, universe=UNIVERSE)
        peak_early = 0
        for i in range(4000):
            summary.insert((i * 101) % UNIVERSE)
            if i == 500:
                peak_early = summary.memory_bytes()
        # Levels only die over time; memory can only shrink after warmup.
        assert summary.memory_bytes() <= peak_early

    def test_memory_scales_with_bucket_budget(self):
        # A random walk keeps intermediate ladder levels alive, so a larger
        # bucket budget genuinely stores more (uniform noise would collapse
        # every level for both budgets).
        import random

        walk = random.Random(9)
        value, stream = UNIVERSE // 2, []
        for _ in range(2000):
            value = min(UNIVERSE - 1, max(0, value + walk.randint(-8, 8)))
            stream.append(value)
        small = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE)
        large = MinIncrementHistogram(buckets=16, epsilon=0.2, universe=UNIVERSE)
        small.extend(stream)
        large.extend(stream)
        assert large.memory_bytes() > small.memory_bytes()
