"""Tests for the PWL MIN-INCREMENT algorithm (Theorem 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pwl_min_increment import (
    PwlGreedyInsertSummary,
    PwlMinIncrementHistogram,
)
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.offline.optimal_pwl import (
    min_pwl_buckets_for_error,
    optimal_pwl_error,
)

UNIVERSE = 256
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=80)


class TestGreedySummary:
    def test_negative_target_raises(self):
        with pytest.raises(InvalidParameterError):
            PwlGreedyInsertSummary(-1.0)

    def test_empty_raises(self):
        summary = PwlGreedyInsertSummary(1.0)
        with pytest.raises(EmptySummaryError):
            _ = summary.error
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_linear_run_single_bucket(self):
        summary = PwlGreedyInsertSummary(0.0)
        summary.extend([5 * i for i in range(40)])
        assert summary.bucket_count == 1

    def test_closed_buckets_drop_hulls(self):
        """Theorem 4's memory trick: closed buckets cost 4 words."""
        summary = PwlGreedyInsertSummary(0.5)
        summary.extend([0, 0, 100, 100, 0, 0, 100, 100])
        assert len(summary.closed) >= 1
        # 4 words per closed bucket; the open hull is charged separately.
        from repro.memory.model import DEFAULT_MODEL

        closed_only = DEFAULT_MODEL.buckets(len(summary.closed))
        assert summary.memory_bytes() >= closed_only

    @given(streams, st.sampled_from([0.0, 1.0, 4.0, 16.0]))
    def test_greedy_is_optimal_for_target(self, values, target):
        """Lemma 2 carries over: greedy bucket count == offline minimum."""
        summary = PwlGreedyInsertSummary(target)
        summary.extend(values)
        assert summary.bucket_count == min_pwl_buckets_for_error(values, target)

    @given(streams, st.sampled_from([0.5, 2.0, 8.0]))
    def test_error_within_target(self, values, target):
        summary = PwlGreedyInsertSummary(target)
        summary.extend(values)
        assert summary.error <= target + 1e-9
        hist = summary.histogram()
        assert hist.max_error_against(values) <= target + 1e-9


class TestMinIncrement:
    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            PwlMinIncrementHistogram(buckets=0, epsilon=0.2, universe=UNIVERSE)

    def test_domain_check(self):
        summary = PwlMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        with pytest.raises(DomainError):
            summary.insert(UNIVERSE)

    def test_empty_raises(self):
        summary = PwlMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_linear_stream_single_bucket_zero_error(self):
        summary = PwlMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        summary.extend([2 * i for i in range(100)])
        hist = summary.histogram()
        assert len(hist) == 1
        assert hist.error == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=25)
    @given(streams, st.integers(1, 4))
    def test_theorem4_guarantee(self, values, buckets):
        """(1 + eps, 1): <= B buckets, error <= (1+eps) * optimal PWL."""
        epsilon = 0.2
        summary = PwlMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE
        )
        summary.extend(values)
        hist = summary.histogram()
        assert len(hist) <= buckets
        best = optimal_pwl_error(values, buckets, tol=1e-4)
        # PWL optima are real-valued; below the ladder's exact 0.5 level the
        # answer can only promise the next level up (the paper implicitly
        # assumes unit error granularity), hence the max(..., 0.5) floor.
        assert hist.error <= max((1.0 + epsilon) * (best + 1e-4), 0.5) + 1e-9

    @settings(max_examples=10)
    @given(streams)
    def test_measured_error_within_reported(self, values):
        summary = PwlMinIncrementHistogram(
            buckets=3, epsilon=0.2, universe=UNIVERSE
        )
        summary.extend(values)
        hist = summary.histogram()
        assert hist.max_error_against(values) <= hist.error + 1e-9

    def test_capped_hull_variant_runs(self):
        summary = PwlMinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, hull_epsilon=0.2
        )
        summary.extend([(i * 13) % UNIVERSE for i in range(400)])
        assert len(summary.histogram()) <= 4

    def test_memory_is_bounded_by_ladder_times_buckets(self):
        summary = PwlMinIncrementHistogram(
            buckets=4, epsilon=0.2, universe=UNIVERSE, hull_epsilon=0.2
        )
        for i in range(3000):
            summary.insert((i * i) % UNIVERSE)
        levels = len(summary.ladder)
        # Per level: <= B closed buckets (16 bytes) + one capped hull.
        hull_cap_bytes = 2 * (2 * 16 + 4) * 2 * 4
        bound = levels * (4 * 16 + hull_cap_bytes + 4)
        assert summary.memory_bytes() <= bound
