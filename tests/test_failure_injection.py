"""Failure injection: malformed inputs must fail loudly, not corrupt state.

The summaries run unattended for millions of items (sensors, stream
processors); a silent NaN or a duplicate-index bug would quietly poison
every later answer, so the typed-error surface matters as much as the
happy path.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
    MinIncrementHistogram,
    MinMergeHistogram,
    PwlMinIncrementHistogram,
    RehistHistogram,
    SlidingWindowMinIncrement,
    SlidingWindowPwlMinIncrement,
)

UNIVERSE = 1024

DOMAIN_CHECKED = [
    lambda: MinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE),
    lambda: PwlMinIncrementHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE),
    lambda: RehistHistogram(buckets=4, epsilon=0.2, universe=UNIVERSE),
    lambda: SlidingWindowMinIncrement(
        buckets=4, epsilon=0.2, universe=UNIVERSE, window=16
    ),
    lambda: SlidingWindowPwlMinIncrement(
        buckets=4, epsilon=0.2, universe=UNIVERSE, window=16
    ),
]


class TestNanAndInfinity:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    @pytest.mark.parametrize("factory", DOMAIN_CHECKED)
    def test_non_finite_values_rejected(self, factory, bad):
        summary = factory()
        with pytest.raises(DomainError):
            summary.insert(bad)

    @pytest.mark.parametrize("factory", DOMAIN_CHECKED)
    def test_state_unchanged_after_rejection(self, factory):
        summary = factory()
        summary.insert(5)
        with pytest.raises(DomainError):
            summary.insert(math.nan)
        summary.insert(7)
        assert summary.items_seen == 2


class TestOutOfDomain:
    @pytest.mark.parametrize("factory", DOMAIN_CHECKED)
    @pytest.mark.parametrize("bad", [-1, UNIVERSE, UNIVERSE + 10_000])
    def test_out_of_domain_rejected(self, factory, bad):
        with pytest.raises(DomainError):
            factory().insert(bad)


class TestEmptyQueries:
    @pytest.mark.parametrize("factory", DOMAIN_CHECKED)
    def test_empty_histogram_raises_typed_error(self, factory):
        summary = factory()
        with pytest.raises(EmptySummaryError):
            if isinstance(summary, RehistHistogram):
                _ = summary.error
            else:
                summary.histogram()


class TestConstructorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buckets": -3, "epsilon": 0.2, "universe": UNIVERSE},
            {"buckets": 4, "epsilon": 0.0, "universe": UNIVERSE},
            {"buckets": 4, "epsilon": 1.0, "universe": UNIVERSE},
            {"buckets": 4, "epsilon": 0.2, "universe": 1},
        ],
    )
    def test_min_increment_bad_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            MinIncrementHistogram(**kwargs)

    def test_min_merge_needs_no_universe_but_validates_buckets(self):
        with pytest.raises(InvalidParameterError):
            MinMergeHistogram(buckets=0)

    def test_errors_catchable_as_value_error(self):
        # Library users who don't import our hierarchy still catch these.
        with pytest.raises(ValueError):
            MinIncrementHistogram(buckets=4, epsilon=5.0, universe=UNIVERSE)
