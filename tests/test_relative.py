"""Tests for the relative-error histogram subpackage."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.relative.algorithms import (
    RelativeMinIncrementHistogram,
    RelativeMinMergeHistogram,
    optimal_relative_error,
)
from repro.relative.bucket import (
    RelativeBucket,
    brute_force_min_relative_buckets,
    min_relative_buckets_for_error,
    relative_error_ladder,
)

UNIVERSE = 1024
streams = st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=150)


class TestRelativeBucket:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RelativeBucket(1, 0, 0, 1)
        with pytest.raises(InvalidParameterError):
            RelativeBucket(0, 1, 5, 4)
        with pytest.raises(InvalidParameterError):
            RelativeBucket(0, 1, -1, 4)
        with pytest.raises(InvalidParameterError):
            RelativeBucket(0, 1, 0, 4, sanity=0.0)

    def test_singleton_is_exact(self):
        bucket = RelativeBucket.singleton(3, 100)
        assert bucket.error == 0.0
        assert bucket.representative == 100.0

    def test_closed_form_error(self):
        # [50, 100], c = 1: err = 50 / 150 = 1/3, v* = (50*100 + 100*50)/150.
        bucket = RelativeBucket(0, 1, 50, 100)
        assert bucket.error == pytest.approx(1.0 / 3.0)
        assert bucket.representative == pytest.approx(10_000.0 / 150.0)

    def test_sanity_constant_guards_zero(self):
        bucket = RelativeBucket(0, 1, 0, 10, sanity=1.0)
        # a = max(0, 1) = 1, b = 10: err = 10 / 11 < 1.
        assert bucket.error == pytest.approx(10.0 / 11.0)

    @given(
        st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)
    )
    def test_representative_is_optimal(self, x, y, z):
        lo, hi = min(x, y), max(x, y)
        bucket = RelativeBucket(0, 1, lo, hi)
        v = bucket.representative

        def cost(rep):
            return max(
                abs(lo - rep) / max(lo, 1.0), abs(hi - rep) / max(hi, 1.0)
            )

        assert cost(v) == pytest.approx(bucket.error, abs=1e-12)
        # Perturbing the representative never helps.
        for other in (v - 1, v + 1, lo, hi, z):
            assert cost(other) >= bucket.error - 1e-12

    @given(st.integers(0, 500), st.integers(0, 500), st.integers(0, 500))
    def test_error_monotone_under_extension(self, a, b, c):
        lo, hi = min(a, b), max(a, b)
        bucket = RelativeBucket(0, 1, lo, hi)
        before = bucket.error
        predicted = bucket.would_extend_error(c)
        bucket.extend(c)
        assert bucket.error == pytest.approx(predicted)
        assert bucket.error >= before - 1e-12

    def test_merge_error_dominates_parts(self):
        left = RelativeBucket(0, 2, 10, 20)
        right = RelativeBucket(3, 5, 50, 90)
        merged = left.merged_with(right)
        assert merged.error >= left.error
        assert merged.error >= right.error
        assert left.merge_error_with(right) == pytest.approx(merged.error)

    def test_non_adjacent_merge_raises(self):
        with pytest.raises(InvalidParameterError):
            RelativeBucket(0, 1, 1, 2).merged_with(RelativeBucket(3, 4, 1, 2))


class TestLadder:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            relative_error_ladder(0.0, UNIVERSE)
        with pytest.raises(InvalidParameterError):
            relative_error_ladder(0.2, 1)

    def test_spans_zero_to_one(self):
        levels = relative_error_ladder(0.2, UNIVERSE)
        assert levels[0] == 0.0
        assert levels[1] == pytest.approx(1.0 / (2 * UNIVERSE))
        assert levels[-1] >= 1.0

    def test_geometric_spacing(self):
        levels = relative_error_ladder(0.5, UNIVERSE)
        for a, b in zip(levels[1:], levels[2:]):
            assert b == pytest.approx(1.5 * a)


class TestGreedyOptimality:
    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=30),
        st.sampled_from([0.0, 0.05, 0.2, 0.5, 0.9]),
    )
    def test_greedy_matches_reference_dp(self, values, error):
        assert min_relative_buckets_for_error(values, error) == (
            brute_force_min_relative_buckets(values, error)
        )

    @given(streams)
    def test_monotone_in_error(self, values):
        counts = [
            min_relative_buckets_for_error(values, e)
            for e in (0.0, 0.01, 0.1, 0.5, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)


class TestRelativeMinMerge:
    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            RelativeMinMergeHistogram(buckets=2).histogram()

    def test_negative_rejected(self):
        with pytest.raises(DomainError):
            RelativeMinMergeHistogram(buckets=2).insert(-1)

    @given(streams, st.integers(1, 6))
    def test_1_2_guarantee(self, values, buckets):
        """The (1, 2) theorem transfers to the relative metric."""
        summary = RelativeMinMergeHistogram(buckets=buckets)
        summary.extend(values)
        summary.check_min_merge_property()
        assert summary.error <= optimal_relative_error(values, buckets) + 1e-9

    @given(streams)
    def test_reported_error_matches_measured_relative_error(self, values):
        summary = RelativeMinMergeHistogram(buckets=4)
        summary.extend(values)
        hist = summary.histogram()
        approx = hist.reconstruct()
        measured = max(
            abs(v - a) / max(v, 1.0) for v, a in zip(values, approx)
        )
        assert measured <= hist.error + 1e-9


class TestRelativeMinIncrement:
    def test_empty_raises(self):
        summary = RelativeMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        with pytest.raises(EmptySummaryError):
            summary.histogram()

    def test_domain_check(self):
        summary = RelativeMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        with pytest.raises(DomainError):
            summary.insert(UNIVERSE)

    @given(streams, st.integers(1, 8))
    def test_guarantee_with_ladder_floor(self, values, buckets):
        """(1 + eps) down to the ladder floor 1 / (2U)."""
        epsilon = 0.2
        summary = RelativeMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=UNIVERSE
        )
        summary.extend(values)
        hist = summary.histogram()
        best = optimal_relative_error(values, buckets)
        floor = (1.0 + epsilon) / (2.0 * UNIVERSE)
        assert len(hist) <= buckets
        assert hist.error <= max((1.0 + epsilon) * best, floor) + 1e-12

    def test_constant_stream_exact(self):
        summary = RelativeMinIncrementHistogram(
            buckets=2, epsilon=0.2, universe=UNIVERSE
        )
        summary.extend([7] * 50)
        assert summary.error == 0.0

    def test_memory_independent_of_n(self):
        summary = RelativeMinIncrementHistogram(
            buckets=8, epsilon=0.2, universe=UNIVERSE
        )
        summary.extend([(i * 97) % UNIVERSE for i in range(500)])
        early = summary.memory_bytes()
        summary.extend([(i * 97) % UNIVERSE for i in range(4000)])
        assert summary.memory_bytes() <= early


class TestOptimalRelativeError:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            optimal_relative_error([], 2)
        with pytest.raises(InvalidParameterError):
            optimal_relative_error([1], 0)

    def test_plateaus_are_free(self):
        assert optimal_relative_error([5] * 10 + [900] * 10, 2) == 0.0

    @given(st.lists(st.integers(0, 60), min_size=1, max_size=25), st.integers(1, 4))
    def test_result_is_achievable_and_tight(self, values, buckets):
        error = optimal_relative_error(values, buckets)
        assert min_relative_buckets_for_error(values, error + 1e-12) <= buckets
        if error > 1e-9:
            assert (
                min_relative_buckets_for_error(values, error * (1 - 1e-6))
                > buckets
            )
