"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for exc in (InvalidParameterError, DomainError, EmptySummaryError):
        assert issubclass(exc, ReproError)


def test_value_errors_are_value_errors():
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(DomainError, ValueError)


def test_empty_summary_is_runtime_error():
    assert issubclass(EmptySummaryError, RuntimeError)


def test_catching_base_class():
    from repro import MinMergeHistogram

    with pytest.raises(ReproError):
        MinMergeHistogram(buckets=0)
