"""Tests for the directional-kernel approximate hull (property 3)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.fit import vertical_width
from repro.geometry.kernel import (
    ApproximateHull,
    directional_kernel,
    kernel_direction_count,
)
from repro.geometry.width import euclidean_width


def xy_streams(min_size=1, max_size=120, value_range=500):
    return st.lists(
        st.integers(-value_range, value_range),
        min_size=min_size,
        max_size=max_size,
    ).map(lambda ys: [(i, y) for i, y in enumerate(ys)])


class TestDirectionCount:
    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            kernel_direction_count(0.0)
        with pytest.raises(InvalidParameterError):
            kernel_direction_count(1.5)

    def test_scales_as_inverse_sqrt(self):
        k_coarse = kernel_direction_count(0.4)
        k_fine = kernel_direction_count(0.01)
        assert k_fine > k_coarse
        assert k_fine == pytest.approx(
            math.pi * math.sqrt(5.0 / 0.01), abs=1.0
        )


class TestDirectionalKernel:
    def test_small_input_returned_verbatim(self):
        pts = [(0, 0), (1, 5), (2, -3)]
        assert directional_kernel(pts, 8) == pts

    def test_output_is_subset(self):
        rng = random.Random(3)
        pts = sorted(
            {(i, rng.randint(-100, 100)) for i in range(200)}
        )
        hull = StreamingHull.from_points(pts)
        kept = directional_kernel(hull.vertices(), 8)
        assert set(kept) <= set(hull.vertices())
        assert [p[0] for p in kept] == sorted(p[0] for p in kept)

    def test_extreme_points_retained(self):
        rng = random.Random(4)
        pts = [(i, rng.randint(-100, 100)) for i in range(300)]
        hull = StreamingHull.from_points(pts)
        kept = set(directional_kernel(hull.vertices(), 6))
        verts = hull.vertices()
        assert min(verts, key=lambda p: p[0]) in kept
        assert max(verts, key=lambda p: p[0]) in kept
        assert min(verts, key=lambda p: p[1]) in kept
        assert max(verts, key=lambda p: p[1]) in kept


class TestApproximateHull:
    def test_invalid_compress_factor(self):
        with pytest.raises(InvalidParameterError):
            ApproximateHull(0.1, compress_factor=0.5)

    def test_mirrors_streaming_interface(self):
        hull = ApproximateHull(0.2)
        assert not hull
        hull.add(0, 5)
        assert hull
        assert hull.point_count == 1
        assert hull.vertices() == [(0, 5)]
        hull.undo_last_add()
        assert not hull

    def test_size_stays_bounded(self):
        rng = random.Random(5)
        hull = ApproximateHull(0.2)
        for i in range(3000):
            hull.add(i, rng.randint(-10_000, 10_000))
            hull.maybe_compress()
        assert hull.stored_entries <= hull._threshold + 2

    def test_compress_reports_activity(self):
        hull = ApproximateHull(0.5)
        assert hull.maybe_compress() is False
        compressed = False
        # A convex arc keeps every point on the hull, forcing compression
        # (random data's hull stays tiny and correctly never compresses).
        for i in range(2000):
            hull.add(i, i * i)
            compressed = hull.maybe_compress() or compressed
        assert compressed

    def test_union_compresses(self):
        rng = random.Random(7)
        left = ApproximateHull(0.3)
        right = ApproximateHull(0.3)
        for i in range(500):
            left.add(i, rng.randint(-100, 100))
            left.maybe_compress()
        for i in range(500, 1000):
            right.add(i, rng.randint(-100, 100))
            right.maybe_compress()
        merged = left.union(right)
        assert merged.point_count == 1000
        assert merged.stored_entries <= merged._threshold + 2

    def test_union_type_check(self):
        with pytest.raises(InvalidParameterError):
            from repro.geometry.kernel import _inner_of

            _inner_of([(0, 0)])


class TestWidthProperty:
    """Property (3): (1 - eps) width(h) <= width(kernel) <= width(h)."""

    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2, 0.5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_walk_buckets(self, epsilon, seed):
        rng = random.Random(seed)
        exact = StreamingHull()
        approx = ApproximateHull(epsilon)
        value = 0
        for i in range(1500):
            value += rng.randint(-40, 40)
            exact.add(i, value)
            approx.add(i, value)
            approx.maybe_compress()
        self._check_bounds(exact, approx, epsilon)

    @pytest.mark.parametrize("epsilon", [0.1, 0.3])
    def test_thin_diagonal_needle(self, epsilon):
        # Adversarial for unnormalized kernels: a nearly-degenerate sliver
        # along a steep diagonal.  The affine normalization must handle it.
        rng = random.Random(11)
        exact = StreamingHull()
        approx = ApproximateHull(epsilon)
        for i in range(1200):
            y = 1000 * i + rng.randint(-3, 3)
            exact.add(i, y)
            approx.add(i, y)
            approx.maybe_compress()
        self._check_bounds(exact, approx, epsilon)

    @pytest.mark.parametrize("epsilon", [0.1, 0.3])
    def test_convex_arc(self, epsilon):
        # Every input point is a hull vertex -- maximum pressure on the cap.
        exact = StreamingHull()
        approx = ApproximateHull(epsilon)
        for i in range(800):
            y = i * i
            exact.add(i, y)
            approx.add(i, y)
            approx.maybe_compress()
        self._check_bounds(exact, approx, epsilon)

    @given(xy_streams(min_size=3, max_size=150))
    def test_hypothesis_streams(self, points):
        epsilon = 0.2
        exact = StreamingHull()
        approx = ApproximateHull(epsilon)
        for x, y in points:
            exact.add(x, y)
            approx.add(x, y)
            approx.maybe_compress()
        self._check_bounds(exact, approx, epsilon)

    @staticmethod
    def _check_bounds(exact, approx, epsilon):
        true_vw = vertical_width(exact)
        approx_vw = vertical_width(approx._inner)
        assert approx_vw <= true_vw + 1e-9
        assert approx_vw >= (1.0 - epsilon) * true_vw - 1e-9
        true_ew = euclidean_width(exact.vertices())
        approx_ew = euclidean_width(approx.vertices())
        assert approx_ew <= true_ew + 1e-9
        assert approx_ew >= (1.0 - epsilon) * true_ew - 1e-9
