"""Tests for the multi-stream fleet manager."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.fleet import StreamFleet
from repro.metrics.errors import linf_error


class TestStreamManagement:
    def test_empty_fleet(self):
        fleet = StreamFleet(buckets=4)
        assert len(fleet) == 0
        assert fleet.ids == []
        assert fleet.total_memory_bytes() == 0

    def test_insert_auto_registers(self):
        fleet = StreamFleet(buckets=4)
        fleet.insert("sensor-1", 5)
        assert "sensor-1" in fleet
        assert len(fleet) == 1

    def test_add_duplicate_rejected(self):
        fleet = StreamFleet(buckets=4)
        fleet.add_stream("a")
        with pytest.raises(InvalidParameterError):
            fleet.add_stream("a")

    def test_remove_stream(self):
        fleet = StreamFleet(buckets=4)
        fleet.insert("a", 1)
        fleet.remove_stream("a")
        assert "a" not in fleet
        with pytest.raises(InvalidParameterError):
            fleet.remove_stream("a")

    def test_unknown_stream_query(self):
        with pytest.raises(InvalidParameterError):
            StreamFleet(buckets=4).histogram("ghost")

    def test_summary_accessor_supports_checkpointing(self):
        from repro.checkpoint import restore, state_dict

        fleet = StreamFleet(buckets=4)
        fleet.extend("a", range(100))
        resumed = restore(state_dict(fleet.summary("a")))
        assert resumed.items_seen == 100
        with pytest.raises(InvalidParameterError):
            fleet.summary("ghost")

    def test_bad_configuration_caught_eagerly(self):
        with pytest.raises(InvalidParameterError):
            StreamFleet(buckets=4, algorithm="t-digest")

    def test_sliding_window_algorithm(self):
        fleet = StreamFleet(buckets=4, algorithm="sliding-window", window=16)
        fleet.extend("a", range(100))
        hist = fleet.histogram("a")
        assert hist.beg == 84

    def test_insertion_order_preserved(self):
        fleet = StreamFleet(buckets=2)
        for name in ("z", "a", "m"):
            fleet.insert(name, 1)
        assert fleet.ids == ["z", "a", "m"]


class TestIngestion:
    def test_insert_row_lockstep(self):
        fleet = StreamFleet(buckets=4)
        for t in range(50):
            fleet.insert_row({"a": t % 5, "b": (t + 1) % 5})
        assert fleet.histogram("a").coverage == 50
        assert fleet.histogram("b").coverage == 50

    def test_extend(self):
        fleet = StreamFleet(buckets=4)
        fleet.extend("a", [1, 2, 3])
        assert fleet.histogram("a").coverage == 3

    def test_memory_sums_summaries(self):
        fleet = StreamFleet(buckets=4)
        fleet.extend("a", range(100))
        one = fleet.total_memory_bytes()
        fleet.extend("b", range(100))
        assert fleet.total_memory_bytes() == 2 * one


class TestSimilarity:
    @staticmethod
    def _lockstep_fleet(series: dict) -> StreamFleet:
        fleet = StreamFleet(buckets=8)
        length = len(next(iter(series.values())))
        for t in range(length):
            fleet.insert_row({k: v[t] for k, v in series.items()})
        return fleet

    def test_identical_streams_have_zero_lower_bound(self):
        data = [((i * 17) % 100) for i in range(200)]
        fleet = self._lockstep_fleet({"a": data, "b": list(data)})
        low, high = fleet.distance_bounds("a", "b")
        assert low == 0.0
        assert high >= 0.0

    def test_range_mismatch_raises(self):
        fleet = StreamFleet(buckets=4)
        fleet.extend("a", range(10))
        fleet.extend("b", range(20))
        with pytest.raises(InvalidParameterError):
            fleet.distance_bounds("a", "b")

    @settings(max_examples=20)
    @given(
        st.lists(st.integers(0, 500), min_size=2, max_size=80),
        st.lists(st.integers(0, 500), min_size=2, max_size=80),
    )
    def test_bounds_contain_truth(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        fleet = self._lockstep_fleet({"a": a, "b": b})
        low, high = fleet.distance_bounds("a", "b")
        true = linf_error(a, b)
        assert low - 1e-9 <= true <= high + 1e-9

    def test_nearest_ranks_by_upper_bound(self):
        base = [i % 50 for i in range(300)]
        near = [v + 1 for v in base]
        far = [v + 400 for v in base]
        fleet = self._lockstep_fleet({"q": base, "near": near, "far": far})
        ranked = fleet.nearest("q", k=2)
        assert [sid for sid, _l, _h in ranked] == ["near", "far"]

    def test_nearest_k_validation(self):
        fleet = StreamFleet(buckets=4)
        fleet.extend("a", [1, 2])
        with pytest.raises(InvalidParameterError):
            fleet.nearest("a", k=0)

    def test_provably_nearest_certifies_clear_winner(self):
        base = [i % 40 for i in range(400)]
        twin = list(base)
        distant = [v + 5000 for v in base]
        fleet = self._lockstep_fleet(
            {"q": base, "twin": twin, "distant": distant}
        )
        assert fleet.provably_nearest("q") == "twin"

    def test_provably_nearest_declines_ambiguity(self):
        base = [i % 40 for i in range(100)]
        near_a = [v + 3 for v in base]
        near_b = [v + 4 for v in base]
        fleet = StreamFleet(buckets=2)  # coarse summaries: wide bounds
        for t in range(100):
            fleet.insert_row(
                {"q": base[t], "a": near_a[t], "b": near_b[t]}
            )
        # With only 4 working buckets the 3-vs-4 offset gap is far below
        # the summary slack; certification must refuse.
        assert fleet.provably_nearest("q") is None

    def test_provably_nearest_empty_fleet(self):
        fleet = StreamFleet(buckets=4)
        fleet.extend("only", [1, 2, 3])
        assert fleet.provably_nearest("only") is None
