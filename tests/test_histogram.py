"""Unit tests for Segment and Histogram result objects."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import Histogram, Segment
from repro.exceptions import InvalidParameterError


class TestSegment:
    def test_constant_segment(self):
        seg = Segment(0, 4, 3.0, 3.0)
        assert seg.is_constant
        assert seg.slope == 0.0
        assert seg.count == 5
        assert all(seg.value_at(i) == 3.0 for i in range(5))

    def test_sloped_segment(self):
        seg = Segment(10, 14, 0.0, 8.0)
        assert not seg.is_constant
        assert seg.slope == 2.0
        assert seg.value_at(10) == 0.0
        assert seg.value_at(12) == 4.0
        assert seg.value_at(14) == 8.0

    def test_singleton_segment(self):
        seg = Segment(3, 3, 7.0, 7.0)
        assert seg.slope == 0.0
        assert seg.value_at(3) == 7.0

    def test_empty_range_raises(self):
        with pytest.raises(InvalidParameterError):
            Segment(5, 4, 0.0, 0.0)

    def test_value_at_outside_raises(self):
        seg = Segment(0, 2, 0.0, 1.0)
        with pytest.raises(IndexError):
            seg.value_at(3)


class TestHistogramConstruction:
    def test_requires_segments(self):
        with pytest.raises(InvalidParameterError):
            Histogram([], 0.0)

    def test_requires_contiguity(self):
        segs = [Segment(0, 2, 1.0, 1.0), Segment(4, 5, 2.0, 2.0)]
        with pytest.raises(InvalidParameterError):
            Histogram(segs, 0.0)

    def test_rejects_overlap(self):
        segs = [Segment(0, 2, 1.0, 1.0), Segment(2, 5, 2.0, 2.0)]
        with pytest.raises(InvalidParameterError):
            Histogram(segs, 0.0)

    def test_rejects_negative_error(self):
        with pytest.raises(InvalidParameterError):
            Histogram([Segment(0, 1, 0.0, 0.0)], -1.0)

    def test_basic_properties(self):
        hist = Histogram(
            [Segment(2, 4, 1.0, 1.0), Segment(5, 9, 0.0, 4.0)], 1.5
        )
        assert len(hist) == 2
        assert hist.beg == 2
        assert hist.end == 9
        assert hist.coverage == 8
        assert hist.error == 1.5
        assert hist.boundaries() == [4, 9]
        assert "buckets=2" in repr(hist)

    def test_indexing_and_iteration(self):
        segs = [Segment(0, 1, 1.0, 1.0), Segment(2, 3, 2.0, 2.0)]
        hist = Histogram(segs, 0.0)
        assert hist[0] == segs[0]
        assert list(hist) == segs


class TestValueAtAndReconstruct:
    def test_value_at_picks_correct_segment(self):
        hist = Histogram(
            [
                Segment(0, 2, 5.0, 5.0),
                Segment(3, 3, 9.0, 9.0),
                Segment(4, 7, 0.0, 3.0),
            ],
            0.0,
        )
        assert hist.value_at(0) == 5.0
        assert hist.value_at(2) == 5.0
        assert hist.value_at(3) == 9.0
        assert hist.value_at(4) == 0.0
        assert hist.value_at(7) == 3.0

    def test_value_at_outside_raises(self):
        hist = Histogram([Segment(0, 1, 0.0, 0.0)], 0.0)
        with pytest.raises(IndexError):
            hist.value_at(2)

    def test_reconstruct_matches_value_at(self):
        hist = Histogram(
            [Segment(0, 2, 1.0, 5.0), Segment(3, 5, 7.0, 7.0)], 0.0
        )
        recon = hist.reconstruct()
        assert len(recon) == hist.coverage
        for i in range(hist.beg, hist.end + 1):
            assert recon[i - hist.beg] == pytest.approx(hist.value_at(i))

    def test_reconstruct_nonzero_start(self):
        hist = Histogram([Segment(10, 12, 2.0, 2.0)], 0.0)
        assert hist.reconstruct() == [2.0, 2.0, 2.0]


class TestSliceAndBounds:
    @staticmethod
    def _hist():
        return Histogram(
            [
                Segment(0, 4, 2.0, 2.0),
                Segment(5, 9, 0.0, 8.0),
                Segment(10, 12, 1.0, 1.0),
            ],
            1.5,
        )

    def test_segment_at(self):
        hist = self._hist()
        assert hist.segment_at(0) == hist[0]
        assert hist.segment_at(7) == hist[1]
        assert hist.segment_at(12) == hist[2]
        with pytest.raises(IndexError):
            hist.segment_at(13)

    def test_value_bounds_contain_reconstruction(self):
        hist = self._hist()
        for i in range(hist.beg, hist.end + 1):
            low, high = hist.value_bounds(i)
            assert low <= hist.value_at(i) <= high
            assert high - low == pytest.approx(2 * hist.error)

    def test_value_bounds_contain_truth_for_real_summary(self):
        from repro.core.min_merge import MinMergeHistogram

        values = [((i * 37) % 101) for i in range(300)]
        summary = MinMergeHistogram(buckets=4)
        summary.extend(values)
        hist = summary.histogram()
        for i in range(0, 300, 17):
            low, high = hist.value_bounds(i)
            assert low - 1e-9 <= values[i] <= high + 1e-9

    def test_slice_midrange(self):
        hist = self._hist()
        sliced = hist.slice(3, 11)
        assert sliced.beg == 3
        assert sliced.end == 11
        # Reconstruction is unchanged over the slice.
        for i in range(3, 12):
            assert sliced.value_at(i) == pytest.approx(hist.value_at(i))

    def test_slice_single_index(self):
        hist = self._hist()
        sliced = hist.slice(7, 7)
        assert len(sliced) == 1
        assert sliced.value_at(7) == pytest.approx(hist.value_at(7))

    def test_slice_clips_sloped_segment(self):
        hist = self._hist()
        sliced = hist.slice(6, 8)
        seg = sliced[0]
        assert seg.left == pytest.approx(hist.value_at(6))
        assert seg.right == pytest.approx(hist.value_at(8))

    def test_slice_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            self._hist().slice(0, 13)
        with pytest.raises(InvalidParameterError):
            self._hist().slice(5, 3)


class TestRangeBounds:
    @staticmethod
    def _summary_of(values, buckets=4):
        from repro.core.min_merge import MinMergeHistogram

        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        return summary.histogram()

    @given(
        st.lists(st.integers(0, 500), min_size=3, max_size=150),
        st.data(),
    )
    def test_range_sum_bounds_contain_truth(self, values, data):
        hist = self._summary_of(values)
        beg = data.draw(st.integers(0, len(values) - 1))
        end = data.draw(st.integers(beg, len(values) - 1))
        low, high = hist.range_sum_bounds(beg, end)
        true_sum = sum(values[beg:end + 1])
        assert low - 1e-6 <= true_sum <= high + 1e-6

    @given(
        st.lists(st.integers(0, 500), min_size=3, max_size=150),
        st.data(),
    )
    def test_range_max_bounds_contain_truth(self, values, data):
        hist = self._summary_of(values)
        beg = data.draw(st.integers(0, len(values) - 1))
        end = data.draw(st.integers(beg, len(values) - 1))
        low, high = hist.range_max_bounds(beg, end)
        true_max = max(values[beg:end + 1])
        assert low - 1e-9 <= true_max <= high + 1e-9

    def test_range_bounds_validation(self):
        hist = Histogram([Segment(0, 4, 1.0, 1.0)], 0.0)
        with pytest.raises(InvalidParameterError):
            hist.range_sum_bounds(0, 5)
        with pytest.raises(InvalidParameterError):
            hist.range_max_bounds(3, 2)

    def test_exact_summary_gives_exact_sum(self):
        hist = Histogram([Segment(0, 3, 5.0, 5.0)], 0.0)
        low, high = hist.range_sum_bounds(1, 2)
        assert low == high == 10.0

    def test_sloped_segment_sum(self):
        hist = Histogram([Segment(0, 4, 0.0, 8.0)], 0.0)
        low, high = hist.range_sum_bounds(0, 4)
        assert low == high == pytest.approx(0 + 2 + 4 + 6 + 8)

    def test_spike_detectable_from_bounds(self):
        values = [10] * 50 + [500] + [10] * 49
        hist = self._summary_of(values, buckets=2)
        low, _high = hist.range_max_bounds(40, 60)
        # The spike must be provably present: lower bound far above base.
        assert low > 100


class TestMaxErrorAgainst:
    def test_exact_match_is_zero(self):
        hist = Histogram([Segment(0, 2, 4.0, 4.0)], 0.0)
        assert hist.max_error_against([4, 4, 4]) == 0.0

    def test_constant_segment_error(self):
        hist = Histogram([Segment(0, 2, 4.0, 4.0)], 2.0)
        assert hist.max_error_against([2, 4, 6]) == 2.0

    def test_sloped_segment_error(self):
        hist = Histogram([Segment(0, 2, 0.0, 4.0)], 0.0)
        assert hist.max_error_against([0, 3, 4]) == 1.0

    def test_length_mismatch_raises(self):
        hist = Histogram([Segment(0, 2, 4.0, 4.0)], 0.0)
        with pytest.raises(InvalidParameterError):
            hist.max_error_against([1, 2])

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_measured_error_equals_reported_for_exact_summary(self, values):
        # A one-bucket midpoint histogram's reported error is exact.
        lo, hi = min(values), max(values)
        rep = (lo + hi) / 2.0
        hist = Histogram(
            [Segment(0, len(values) - 1, rep, rep)], (hi - lo) / 2.0
        )
        assert hist.max_error_against(values) == hist.error
