"""Figure 7: approximation error as a function of the histogram size B.

Paper setting: Dow-Jones, eps = 0.2; OPTIMAL vs REHIST vs MIN-INCREMENT
vs MIN-MERGE.  Expected shape: REHIST and MIN-INCREMENT hug the optimal
curve (well under the 1.2x guarantee); MIN-MERGE is marginally worse at
small B, converging for larger B; its error always beats the optimal
because it holds 2B buckets.
"""

from __future__ import annotations

from repro.harness.experiments import fig7_error_vs_buckets


def test_fig7_error_vs_buckets(benchmark, paper_scale, save_series):
    series = benchmark.pedantic(
        lambda: fig7_error_vs_buckets(paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    text = save_series("fig7_error_vs_b", series)
    print("\n" + text)
    for row in series.rows:
        best = row["optimal"]
        # MIN-MERGE is charged its total buckets here (see the driver), so
        # it reads between the B-bucket and the B/2-bucket optima.
        assert row["min-merge"] >= best - 1e-9
        assert best - 1e-9 <= row["min-increment"] <= 1.2 * best + 1e-9
        assert best - 1e-9 <= row["rehist"] <= 1.2 * best + 1e-9
    optima = series.column("optimal")
    assert optima == sorted(optima, reverse=True)
