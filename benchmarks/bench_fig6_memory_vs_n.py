"""Figure 6: memory usage as a function of the stream size n.

Paper setting: Brownian data, n from 4000 to 512000, B = 32.  Expected
shape: MIN-MERGE exactly flat, MIN-INCREMENT flat (it can only shed
ladder levels), REHIST growing slowly (log n more realized error classes).
"""

from __future__ import annotations

from repro.harness.experiments import fig6_memory_vs_stream_size


def test_fig6_memory_vs_stream_size(benchmark, paper_scale, save_series):
    series = benchmark.pedantic(
        lambda: fig6_memory_vs_stream_size(paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    text = save_series("fig6_memory_vs_n", series)
    print("\n" + text)
    mm = series.column("min-merge")
    mi = series.column("min-increment")
    # Space essentially independent of n (the paper's point).
    assert max(mm) == min(mm)
    assert max(mi) <= 2 * min(mi)
    rehist = [r for r in series.column("rehist") if r is not None]
    growth_n = series.rows[-1]["n"] / series.rows[0]["n"]
    # REHIST grows, but far sublinearly in n.
    assert rehist[-1] <= rehist[0] * growth_n
