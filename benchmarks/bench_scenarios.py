"""Scenario-suite gate: simulate bundled workloads, verify conformance.

Runs bundled scenarios from ``repro.scenarios`` through the workload
simulator and the differential conformance matrix, then writes the
machine-readable ``BENCH_SCENARIO.json`` artifact CI uploads (validated
by ``validate_bench_json.py``).  The gate fails when any scenario's
realized error exceeds its method's guarantee against the offline
oracle, or when any conformance cell (object/soa x serial/parallel x
scalar/batched) is not bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke \
        --json BENCH_SCENARIO.json

``--smoke`` runs the fast three-scenario subset used in the per-PR CI
job; the default runs every bundled scenario and the full conformance
matrix (the nightly configuration).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.scenarios import (
    bundled_scenarios,
    load_bundled,
    run_conformance,
    run_scenario,
)

#: The fast per-PR subset: a baseline, a fault schedule, and the
#: sliding-window spec (the one shape the full matrix cannot cover).
SMOKE_SCENARIOS = ("steady-brownian", "crash-recovery", "out-of-order-window")


def _method_for(spec) -> str:
    """Method driven per scenario (windowed specs need a ladder variant)."""
    return "min-increment" if spec.window is not None else "min-merge"


def _fail_section(name: str, section) -> None:
    print(f"gate failure in report section {name!r}:", file=sys.stderr)
    print(
        json.dumps({name: section}, indent=2, sort_keys=True), file=sys.stderr
    )


def run(names, json_path, label) -> int:
    specs = [load_bundled(name) for name in names]
    failures = 0
    scenario_rows = []
    print(f"scenario suite ({label}): {', '.join(names)}")

    for spec in specs:
        method = _method_for(spec)
        start = time.perf_counter()
        report = run_scenario(spec, method)
        elapsed = time.perf_counter() - start
        row = report.to_dict()
        row["suite_seconds"] = elapsed
        scenario_rows.append(row)
        ok = report.all_bounds_ok
        recovered = [
            s.recovered_identical
            for s in report.streams
            if s.recovered_identical is not None
        ]
        if recovered and not all(recovered):
            ok = False
        print(
            f"{spec.name:<24} {method:<14} items={report.items:>6,} "
            f"streams={len(report.streams)} "
            f"worst-ratio={report.worst_error_ratio:6.4f} "
            f"{'ok' if ok else 'FAIL'} ({elapsed:.2f}s)"
        )
        if not ok:
            failures += 1
            _fail_section(spec.name, row)

    cells = 0
    mismatches = []
    checked = 0
    for spec in specs:
        result = run_conformance(spec, _method_for(spec))
        checked += 1
        cells += result.cell_count
        mismatches.extend(result.mismatches)
    bit_identical = not mismatches
    print(
        f"conformance: {checked} scenario(s), {cells} cells, "
        f"{'bit-identical' if bit_identical else 'MISMATCH'}"
    )
    conformance = {
        "scenarios_checked": checked,
        "cells_checked": cells,
        "bit_identical": bit_identical,
        "mismatches": mismatches,
    }
    if not bit_identical:
        failures += 1
        _fail_section("conformance", conformance)

    report_doc = {
        "schema": "scenario-v1",
        "mode": label,
        "scenarios": scenario_rows,
        "conformance": conformance,
        "generated_unix": time.time(),
    }
    if json_path is not None:
        json_path.write_text(
            json.dumps(report_doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {json_path}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast CI subset instead of every bundled scenario",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only this bundled scenario (repeatable)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the report to this path"
    )
    args = parser.parse_args()
    if args.scenario:
        names, label = tuple(args.scenario), "custom"
    elif args.smoke:
        names, label = SMOKE_SCENARIOS, "smoke"
    else:
        names, label = bundled_scenarios(), "full"
    return run(names, args.json, label)


if __name__ == "__main__":
    raise SystemExit(main())
