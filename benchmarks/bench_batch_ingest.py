"""Batch-ingest throughput: vectorized ``extend()`` vs the scalar loop.

The batch kernels (``repro.core.batch``) promise two things: byte-identical
summary state to the per-item ``insert()`` path, and a large throughput
win on contiguous chunks.  This file measures both -- items/sec for the
scalar loop and for one ``extend(ndarray)`` call -- and *guards* the
equivalence on randomized streams before trusting any timing.

Run directly for the standalone gate (used by CI's benchmark smoke job)::

    PYTHONPATH=src python benchmarks/bench_batch_ingest.py \
        --smoke --json BENCH_PR.json --min-speedup 2.0

or through pytest-benchmark (``make bench``) for repeated-measurement
statistics.  ``REPRO_BENCH_SCALE=paper`` raises the stream length to the
paper's n = 1e6, where the acceptance target is a >= 5x speedup for
MIN-MERGE and MIN-INCREMENT.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import brownian
from repro.harness.runner import make_algorithm

from conftest import PAPER_SCALE

BUCKETS = 32
EPSILON = 0.2
UNIVERSE = 1 << 15

FULL_ITEMS = 1_000_000
SMOKE_ITEMS = 60_000

#: Algorithms under the throughput gate.  The acceptance targets (>= 5x at
#: paper scale) apply to the two serial workhorses; the rest are reported
#: for visibility but not gated (their scalar baselines are already slow
#: enough that CI smoke runs would dominate the job).
GATED = ["min-merge", "min-increment"]
REPORTED = GATED + ["min-increment-batched", "sliding-window"]


def _make(name: str, items: int):
    return make_algorithm(
        name,
        buckets=BUCKETS,
        epsilon=EPSILON,
        universe=UNIVERSE,
        window=items // 4,
    )


def _equivalence_guard(name: str, seed: int = 0, items: int = 4_000) -> None:
    """Fail loudly if batch and scalar ingest diverge on a random stream."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, UNIVERSE, items)
    scalar = _make(name, items)
    for v in data.tolist():
        scalar.insert(v)
    batched = _make(name, items)
    batched.extend(data)
    state = lambda s: (  # noqa: E731 - local one-liner
        s.items_seen,
        [(x.beg, x.end, x.left, x.right) for x in s.histogram()],
        s.error,
        s.memory_bytes(),
    )
    if state(scalar) != state(batched):
        raise AssertionError(
            f"{name}: batch ingest diverged from scalar ingest on a "
            f"randomized stream (seed {seed}); timings would be meaningless"
        )


def _measure(name: str, values: list, arr: np.ndarray) -> dict:
    items = len(values)
    scalar = _make(name, items)
    insert = scalar.insert
    start = time.perf_counter()
    for v in values:
        insert(v)
    scalar_s = time.perf_counter() - start

    batched = _make(name, items)
    start = time.perf_counter()
    batched.extend(arr)
    batch_s = time.perf_counter() - start

    assert scalar.items_seen == batched.items_seen == items
    return {
        "algorithm": name,
        "items": items,
        "scalar_items_per_sec": items / scalar_s,
        "batch_items_per_sec": items / batch_s,
        "speedup": scalar_s / batch_s,
    }


def run(items: int, min_speedup: float, json_path: Path | None) -> int:
    for name in REPORTED:
        _equivalence_guard(name)
    print(f"batch vs scalar ingest, brownian n={items}")
    values = brownian(items)
    arr = np.asarray(values)
    results = []
    failures = 0
    for name in REPORTED:
        row = _measure(name, values, arr)
        results.append(row)
        gated = name in GATED
        ok = (not gated) or row["speedup"] >= min_speedup
        if not ok:
            failures += 1
            # Surface the failing numbers in the job log itself, so a CI
            # gate failure is diagnosable without downloading artifacts.
            print(
                f"gate failure ({name}: speedup {row['speedup']:.2f}x "
                f"< {min_speedup:g}x); offending result:",
                file=sys.stderr,
            )
            print(json.dumps(row, indent=2, sort_keys=True), file=sys.stderr)
        print(
            f"{name:<24} scalar {row['scalar_items_per_sec'] / 1e3:9.1f}k/s   "
            f"batch {row['batch_items_per_sec'] / 1e6:7.2f}M/s   "
            f"speedup {row['speedup']:7.1f}x   "
            f"{'ok' if ok else 'FAIL'}{'' if gated else ' (ungated)'}"
        )
    if json_path is not None:
        payload = {
            "benchmark": "batch_ingest",
            "items": items,
            "min_speedup": min_speedup,
            "results": results,
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {json_path}")
    return 1 if failures else 0


# -- pytest-benchmark surface (make bench) --------------------------------

_BENCH_ITEMS = FULL_ITEMS if PAPER_SCALE else SMOKE_ITEMS


@pytest.fixture(scope="module")
def bench_stream():
    values = brownian(_BENCH_ITEMS)
    return values, np.asarray(values)


@pytest.mark.parametrize("name", REPORTED)
def test_equivalence_guard(name):
    _equivalence_guard(name)


@pytest.mark.parametrize("name", REPORTED)
def test_batch_ingest_speedup(benchmark, bench_stream, name):
    values, arr = bench_stream

    def ingest():
        algo = _make(name, len(values))
        algo.extend(arr)
        return algo

    algo = benchmark(ingest)
    assert algo.items_seen == len(values)
    row = _measure(name, values, arr)
    benchmark.extra_info.update(row)
    if name in GATED:
        # Paper-scale acceptance: >= 5x at n = 1e6; the quick profile
        # gates at the CI smoke threshold.
        floor = 5.0 if PAPER_SCALE else 2.0
        assert row["speedup"] >= floor, (
            f"{name}: batch speedup {row['speedup']:.1f}x below {floor}x "
            f"at n={len(values)}"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"use the small CI stream (n={SMOKE_ITEMS}) instead of n={FULL_ITEMS}",
    )
    parser.add_argument(
        "--items", type=int, default=None, help="override the stream length"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail if a gated algorithm's batch speedup is below this",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write results to this JSON file"
    )
    args = parser.parse_args()
    items = args.items or (SMOKE_ITEMS if args.smoke else FULL_ITEMS)
    return run(items, args.min_speedup, args.json)


if __name__ == "__main__":
    raise SystemExit(main())
