"""Schema check for the ``BENCH_*.json`` CI artifacts.

The benchmark gates upload machine-readable reports so runs stay
comparable across PRs -- which only works if the artifacts stay
well-formed.  This validator fails the job when a report:

* is not valid JSON, or smuggles in ``NaN``/``Infinity`` (legal for
  Python's ``json`` module, poison for everything downstream);
* contains any non-finite number anywhere in the tree;
* is missing the required keys for its artifact family (matched on
  file name, e.g. ``BENCH_LOAD.json``); or
* has a ``timeline`` whose timestamps are not monotone non-decreasing
  in event order, or a ``generated_unix`` stamp earlier than the events
  it claims to summarize.

Usage::

    python benchmarks/validate_bench_json.py BENCH_LOAD.json BENCH_SERVICE.json

Unknown ``BENCH_*.json`` names still get the generic checks (parse +
finite numbers), so new benchmarks are covered before anyone writes a
spec for them.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Iterator, List, Tuple

#: Per-artifact-family required key paths.  ``a.b`` descends into dicts;
#: every listed path must exist.  Timeline ordering is expressed
#: separately because it constrains *values*, not presence.
SPECS = {
    "BENCH_LOAD.json": {
        "required": [
            "schema",
            "mode",
            "config.clients",
            "config.batch_size",
            "load.append.count",
            "load.append.p50_ms",
            "load.append.p99_ms",
            "load.query.count",
            "load.query.p50_ms",
            "load.query.p99_ms",
            "load.throughput_items_per_second",
            "verification.streams_verified",
            "verification.bit_identical",
            "slo",
            "slo_violations",
            "timeline",
            "generated_unix",
        ],
        "timeline": [
            "timeline.started_unix",
            "timeline.load_started_unix",
            "timeline.load_finished_unix",
            "timeline.verified_unix",
            "generated_unix",
        ],
    },
    "BENCH_SERVICE.json": {
        "required": [
            "items",
            "methods",
            "checkpoints",
            "wire.speedup",
            "wire.min_speedup",
            "wire.attempts",
            "wire.transports.json.seconds",
            "wire.transports.binary.seconds",
        ],
    },
    "BENCH_WIRE.json": {
        "required": [
            "codec.items",
            "codec.chunk",
            "codec.json.seconds",
            "codec.json.values_per_second",
            "codec.binary.seconds",
            "codec.binary.values_per_second",
            "codec.speedup",
            "heap.before.seconds",
            "heap.after.seconds",
            "heap.speedup",
            "hull.before.seconds",
            "hull.after.seconds",
            "hull.speedup",
        ],
    },
    "BENCH_SOA.json": {
        "required": [
            "benchmark",
            "items",
            "min_speedup",
            "best_of",
            "scalar.object_ns_per_item",
            "scalar.soa_ns_per_item",
            "scalar.speedup",
            "scalar.gated",
            "batch.speedup",
            "pwl_scalar.speedup",
        ],
    },
    "BENCH_SCENARIO.json": {
        "required": [
            "schema",
            "mode",
            "scenarios",
            "conformance.scenarios_checked",
            "conformance.cells_checked",
            "conformance.bit_identical",
            "conformance.mismatches",
            "generated_unix",
        ],
    },
    "BENCH_REST.json": {
        "required": [
            "schema",
            "items",
            "chunk",
            "max_ratio",
            "bit_identical",
            "transports.binary.p50_ms",
            "transports.binary.p99_ms",
            "transports.binary.items_per_second",
            "transports.rest.p50_ms",
            "transports.rest.p99_ms",
            "transports.rest.items_per_second",
            "p50_ratio",
            "gate",
            "generated_unix",
        ],
    },
    "BENCH_PR.json": {"required": []},
    "BENCH_PARALLEL.json": {"required": []},
}


class ValidationError(Exception):
    """One artifact failed one check."""


def _walk_numbers(node, path: str = "$") -> Iterator[Tuple[str, float]]:
    """Yield every numeric leaf with its JSON path."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield path, float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from _walk_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from _walk_numbers(value, f"{path}[{i}]")


def _lookup(report: dict, path: str):
    """Resolve a dotted key path; raises ValidationError when absent."""
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise ValidationError(f"missing required key {path!r}")
        node = node[part]
    return node


def _reject_constant(token: str) -> float:
    raise ValidationError(f"non-finite JSON constant {token!r}")


def validate_file(path: str) -> List[str]:
    """All violations for one artifact (empty list = clean)."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle, parse_constant=_reject_constant)
    except (OSError, ValueError, ValidationError) as exc:
        return [f"unreadable: {exc}"]

    for num_path, value in _walk_numbers(report):
        if not math.isfinite(value):
            problems.append(f"non-finite number at {num_path}: {value!r}")

    spec = SPECS.get(os.path.basename(path), {})
    for key_path in spec.get("required", []):
        try:
            _lookup(report, key_path)
        except ValidationError as exc:
            problems.append(str(exc))

    ordering = spec.get("timeline", [])
    stamps = []
    for key_path in ordering:
        try:
            value = _lookup(report, key_path)
        except ValidationError:
            continue  # absence already reported via "required"
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            stamps.append((key_path, float(value)))
    for (prev_key, prev), (cur_key, cur) in zip(stamps, stamps[1:]):
        if cur < prev:
            problems.append(
                f"timeline not monotone: {cur_key}={cur!r} precedes "
                f"{prev_key}={prev!r}"
            )
    return problems


def main(argv=None) -> int:
    """Validate each artifact; non-zero exit if any check fails."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="skip (rather than fail on) paths that do not exist",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        if args.allow_missing and not os.path.exists(path):
            print(f"{path}: skipped (missing)")
            continue
        problems = validate_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
