"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and

* times the underlying work with pytest-benchmark (one round -- these are
  experiment drivers, not microbenchmarks; the throughput file holds the
  repeated-measurement microbenchmarks), and
* writes the rendered series to ``benchmarks/results/<name>.txt`` so the
  rows can be diffed against the paper (EXPERIMENTS.md quotes them).

Scale control: set ``REPRO_BENCH_SCALE=paper`` to run the paper's exact
workload sizes (minutes in pure Python); the default ``quick`` profile
keeps every file in seconds.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: True when the paper's full workload sizes were requested.
PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick") == "paper"


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def save_series():
    """Write a rendered experiment series under benchmarks/results/."""
    from repro.harness.reporting import render_series

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, series) -> str:
        text = render_series(series)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return text

    return _save
