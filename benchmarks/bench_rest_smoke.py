"""REST smoke gate: race the HTTP facade against the binary transport.

Boots one engine fronted by both the TCP server and the HTTP/REST
facade (:mod:`repro.service.http`), streams the same dataset through
each transport family, and checks two things:

* **bit identity** -- the histograms served over REST, over binary TCP,
  and by the one-shot ``summarize()`` oracle are segment-for-segment
  identical (the facade is a view of the same engine, not a fork);
* **latency** -- REST append p50 stays within ``--max-ratio`` (default
  5x) of the binary transport's p50.  HTTP/1.1 framing costs real
  parsing per request, but the octet-stream body reuses the zero-copy
  float64 decode path, so the gap must stay bounded; a blowout means
  the facade started copying or boxing values.

Exit status is non-zero on any mismatch or a ratio breach, so the
script doubles as the CI ``rest-smoke`` gate (``make rest-smoke``)::

    python benchmarks/bench_rest_smoke.py --items 60000 \
        --json BENCH_REST.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import summarize
from repro.loadgen.latency import summarize_latencies
from repro.service import (
    HttpFrontend,
    ServiceClient,
    StreamEngine,
    StreamServer,
)

SCHEMA = "repro-bench-rest/1"


def _dataset(n: int) -> list:
    return [4095] + [(37 * i + (i * i) % 89) % 4096 for i in range(1, n)]


def _segments(histogram) -> list:
    return [[s.beg, s.end, s.left, s.right] for s in histogram.segments]


def _drive(client, stream: str, values, *, chunk: int) -> dict:
    """Append ``values`` in chunks, then query; per-op latencies."""
    append_seconds = []
    for lo in range(0, len(values), chunk):
        start = time.perf_counter()
        client.append(
            stream,
            values[lo : lo + chunk],
            method="min-merge",
            buckets=16,
            universe=4096,
        )
        append_seconds.append(time.perf_counter() - start)
    start = time.perf_counter()
    served = client.query(stream, drain=True).histogram
    query_seconds = time.perf_counter() - start
    summary = summarize_latencies(append_seconds).to_dict()
    summary["query_ms"] = query_seconds * 1e3
    summary["items_per_second"] = len(values) / max(
        summary["total_seconds"], 1e-9
    )
    return {"summary": summary, "histogram": served}


def run(items: int, *, chunk: int, max_ratio: float, attempts: int) -> dict:
    """Race both transports over one engine; returns the report.

    The p50 ratio is taken from the best attempt (benchmarks on shared
    CI runners are noisy; the gate asks "can the facade keep up", not
    "did the scheduler hiccup").  Raises ``SystemExit`` on a bit-
    identity mismatch or when every attempt breaches the ratio.
    """
    values = _dataset(items)
    oracle = summarize(values, 16, method="min-merge")
    engine = StreamEngine(workers=1)
    server = StreamServer(engine).start_in_background()
    front = HttpFrontend(engine).start_in_background()
    best = None
    try:
        for attempt in range(attempts):
            with ServiceClient(port=server.port, transport="binary") as tcp:
                binary = _drive(
                    tcp, f"bin-{attempt}", values, chunk=chunk
                )
            with ServiceClient.from_url(
                f"http://127.0.0.1:{front.port}"
            ) as rest_client:
                rest = _drive(
                    rest_client, f"rest-{attempt}", values, chunk=chunk
                )
            for tag, served in (("binary", binary), ("rest", rest)):
                if (
                    _segments(served["histogram"]) != _segments(oracle)
                    or served["histogram"].error != oracle.error
                ):
                    raise SystemExit(
                        f"{tag} histogram diverges from summarize() "
                        f"(served error {served['histogram'].error}, "
                        f"oracle {oracle.error})"
                    )
            ratio = rest["summary"]["p50_ms"] / max(
                binary["summary"]["p50_ms"], 1e-9
            )
            if best is None or ratio < best["p50_ratio"]:
                best = {
                    "transports": {
                        "binary": binary["summary"],
                        "rest": rest["summary"],
                    },
                    "p50_ratio": ratio,
                    "attempt": attempt,
                }
    finally:
        front.stop()
        server.stop()
        engine.close()
    report = {
        "schema": SCHEMA,
        "items": items,
        "chunk": chunk,
        "attempts": attempts,
        "max_ratio": max_ratio,
        "bit_identical": True,  # a mismatch raised SystemExit above
        "generated_unix": time.time(),
        **best,
    }
    if best["p50_ratio"] > max_ratio:
        report["gate"] = "FAIL"
        return report
    report["gate"] = "PASS"
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=60_000)
    parser.add_argument("--chunk", type=int, default=2_000)
    parser.add_argument(
        "--max-ratio", type=float, default=5.0,
        help="REST append p50 must stay within this multiple of binary",
    )
    parser.add_argument(
        "--attempts", type=int, default=3,
        help="race repetitions; the gate takes the best attempt",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report here",
    )
    args = parser.parse_args(argv)
    report = run(
        args.items,
        chunk=args.chunk,
        max_ratio=args.max_ratio,
        attempts=args.attempts,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, allow_nan=False)
            handle.write("\n")
    binary = report["transports"]["binary"]
    rest = report["transports"]["rest"]
    print(
        f"binary: p50 {binary['p50_ms']:.3f} ms  "
        f"({binary['items_per_second']:,.0f} items/s)"
    )
    print(
        f"rest:   p50 {rest['p50_ms']:.3f} ms  "
        f"({rest['items_per_second']:,.0f} items/s)"
    )
    print(
        f"p50 ratio {report['p50_ratio']:.2f}x "
        f"(gate: <= {report['max_ratio']:g}x) -> {report['gate']}"
    )
    if report["gate"] != "PASS":
        print(
            "REST latency gate FAILED: the facade fell more than "
            f"{report['max_ratio']:g}x behind the binary transport",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
