"""Guard: disabled instrumentation must be (nearly) free.

The observability layer (docs/OBSERVABILITY.md) is opt-in; a summary
constructed without ``metrics=`` must ingest at the same speed as the
pre-instrumentation implementation.  This file enforces that by loading
the *seed* ``MinMergeHistogram`` / ``MinIncrementHistogram`` sources from
git history (commit ``a7c99d7``, before the metrics layer existed),
benchmarking them head-to-head against the current classes with metrics
disabled, and failing if the current code is more than ``TOLERANCE``
slower.

Skips cleanly when git or the seed commit is unavailable (e.g. a source
tarball), so the guard never blocks environments without history.

Run directly (no pytest-benchmark dependency on the guard path)::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
import time
from pathlib import Path

import pytest

SEED_COMMIT = "a7c99d7"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed slowdown of the disabled-metrics path vs the seed sources.
#: The budget from the issue is 3%; timing jitter in CI easily exceeds
#: that on a single pair of runs, so we take the best of several repeats
#: of each side before comparing.
TOLERANCE = 1.03
REPEATS = 5

CASES = [
    # (module path, class name, ctor kwargs, stream length)
    (
        "src/repro/core/min_merge.py",
        "MinMergeHistogram",
        {"buckets": 32},
        20_000,
    ),
    (
        "src/repro/core/min_increment.py",
        "MinIncrementHistogram",
        {"buckets": 32, "epsilon": 0.2, "universe": 1 << 15},
        6_000,
    ),
]

#: Support modules whose call signature drifted since the seed commit
#: (behaviour unchanged).  The seed classes import these names at exec
#: time, so the seed versions are substituted into the seed module's
#: namespace after exec; every other import resolves against the current
#: package.  E.g. ``ErrorLadder`` renamed ``include_zero`` to
#: ``include_zero_level`` in the service PR.
SEED_SUPPORT = [
    ("src/repro/core/error_ladder.py", ("ErrorLadder",)),
]


def _seed_source(path: str) -> str | None:
    """The file's content at the seed commit, or None if unavailable."""
    try:
        proc = subprocess.run(
            ["git", "show", f"{SEED_COMMIT}:{path}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _exec_seed_module(path: str, module_name: str):
    """Exec the seed source as a synthetic module, or None on failure.

    The seed module's own imports (``repro.core.bucket`` etc.) resolve
    against the current package -- behaviour-compatible support modules
    are shared, while signature-drifted ones (``SEED_SUPPORT``) are
    substituted afterwards by :func:`_load_seed_class`.
    """
    source = _seed_source(path)
    if source is None:
        return None
    spec = importlib.util.spec_from_loader(module_name, loader=None)
    module = importlib.util.module_from_spec(spec)
    module.__file__ = f"<{SEED_COMMIT}:{path}>"
    sys.modules[module_name] = module
    try:
        exec(compile(source, module.__file__, "exec"), module.__dict__)
    except Exception:
        del sys.modules[module_name]
        return None
    return module


def _load_seed_class(path: str, class_name: str):
    """The seed-commit class, running against seed support modules."""
    module = _exec_seed_module(path, f"_seed_{class_name.lower()}")
    if module is None:
        return None
    for support_path, names in SEED_SUPPORT:
        if not any(hasattr(module, name) for name in names):
            continue
        stem = Path(support_path).stem
        support = _exec_seed_module(support_path, f"_seed_support_{stem}")
        if support is None:
            return None
        for name in names:
            if hasattr(module, name):
                setattr(module, name, getattr(support, name))
    return getattr(module, class_name)


def _best_ingest_seconds(cls, kwargs: dict, values: list) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        summary = cls(**kwargs)
        extend = summary.extend
        start = time.perf_counter()
        extend(values)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _compare(path: str, class_name: str, kwargs: dict, length: int):
    """(seed_seconds, current_seconds) for one class, or None to skip."""
    from repro.data import brownian

    seed_cls = _load_seed_class(path, class_name)
    if seed_cls is None:
        return None
    module = importlib.import_module(
        path.removeprefix("src/").removesuffix(".py").replace("/", ".")
    )
    current_cls = getattr(module, class_name)
    values = brownian(length)
    # Warm both classes once, then interleave-measure best-of-REPEATS.
    _best_ingest_seconds(seed_cls, kwargs, values[:500])
    _best_ingest_seconds(current_cls, kwargs, values[:500])
    seed_s = _best_ingest_seconds(seed_cls, kwargs, values)
    current_s = _best_ingest_seconds(current_cls, kwargs, values)
    return seed_s, current_s


@pytest.mark.parametrize(
    "path,class_name,kwargs,length", CASES, ids=[c[1] for c in CASES]
)
def test_disabled_metrics_overhead(path, class_name, kwargs, length):
    result = _compare(path, class_name, kwargs, length)
    if result is None:
        pytest.skip("seed sources unavailable (no git history)")
    seed_s, current_s = result
    ratio = current_s / seed_s
    assert ratio < TOLERANCE, (
        f"{class_name}: disabled-metrics ingest is {ratio:.3f}x the seed "
        f"({current_s:.4f}s vs {seed_s:.4f}s); budget is {TOLERANCE}x"
    )


def main() -> int:
    """Standalone entry point: prints a table, exit 1 on budget violation."""
    failures = 0
    for path, class_name, kwargs, length in CASES:
        result = _compare(path, class_name, kwargs, length)
        if result is None:
            print(f"{class_name:<24} SKIP (seed sources unavailable)")
            continue
        seed_s, current_s = result
        ratio = current_s / seed_s
        verdict = "ok" if ratio < TOLERANCE else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"{class_name:<24} seed {seed_s * 1e3:8.2f} ms   "
            f"current {current_s * 1e3:8.2f} ms   "
            f"ratio {ratio:.3f}x   {verdict}"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
