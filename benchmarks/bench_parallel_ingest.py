"""Parallel shard-ingest throughput: serial batch vs the sharded executor.

``repro.parallel`` promises two things: the combined summary is
*bit-identical* to a serial merge of the same shard plan
(:meth:`ParallelSummarizer.reference`) while keeping the (1, 2) guarantee
against the offline optimum, and multi-core shard ingest beats one serial
``extend()`` once shards are large enough to amortize pool startup.  This
file guards both equivalence claims on randomized streams before trusting
any timing, then measures serial vs P in {2, 4, cpu_count} workers and the
merge-tree depth (arity) sensitivity.

Run directly for the standalone gate (used by CI's benchmark smoke job)::

    PYTHONPATH=src python benchmarks/bench_parallel_ingest.py \
        --quick --json BENCH_PARALLEL.json --min-speedup 1.3

The speedup gate applies to MIN-MERGE on the rough (uniform-random)
workload only -- brownian streams merge so cheaply that the serial batch
kernel is already memory-bound -- and **only when the machine has >= 2
usable cores**: on a single-core runner every configuration is measured
and reported, but the gate is skipped (there is no parallelism to gain).
Exact-hull PWL rows are reported ungated at a smaller n (its ingest is
orders of magnitude slower per item, so parallel wins come trivially).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.data import brownian
from repro.offline import optimal_error
from repro.parallel import ParallelSummarizer, available_cpus, fork_available

from conftest import PAPER_SCALE

BUCKETS = 32
UNIVERSE = 1 << 15

#: Stream lengths per method: full (default) vs --quick (CI smoke).  The
#: PWL rows run exact hulls (hull_epsilon=None), whose streaming-hull
#: ingest is ~1000x slower per item than the min-merge batch kernel, so
#: they use proportionally smaller streams.
FULL_ITEMS = {"min-merge": 10_000_000, "pwl-min-merge": 100_000}
QUICK_ITEMS = {"min-merge": 1_000_000, "pwl-min-merge": 20_000}

#: (method, workload) pairs under the speedup gate when >= 2 cores exist.
GATED = [("min-merge", "rough")]


def _workload(name: str, items: int, seed: int = 7) -> np.ndarray:
    if name == "rough":
        rng = np.random.default_rng(seed)
        return rng.integers(0, UNIVERSE, items)
    if name == "brownian":
        return np.asarray(brownian(items))
    raise ValueError(f"unknown workload {name!r}")


def _serial_summary(method: str):
    if method == "min-merge":
        return MinMergeHistogram(buckets=BUCKETS)
    return PwlMinMergeHistogram(buckets=BUCKETS, hull_epsilon=None)


def _state(summary) -> tuple:
    return (
        summary.items_seen,
        [(b.beg, b.end, b.left, b.right) for b in summary.histogram()],
        summary.error,
    )


def _equivalence_guard(method: str, seed: int = 0) -> None:
    """Fail loudly if the pooled run diverges from the serial merge oracle
    or breaks the (1, 2) bound; timings would be meaningless."""
    items = 60_000 if method == "min-merge" else 4_000
    rng = np.random.default_rng(seed)
    data = rng.integers(0, UNIVERSE, items)
    backends = ["thread"] + (["process"] if fork_available() else [])
    for backend in backends:
        runner = ParallelSummarizer(
            method, buckets=BUCKETS, workers=3, backend=backend,
            serial_cutoff=1,
        )
        got = _state(runner.summarize(data))
        want = _state(runner.reference(data))
        if got != want:
            raise AssertionError(
                f"{method}/{backend}: parallel summarize diverged from the "
                f"serial merge-of-shards reference (seed {seed})"
            )
    # Property gate: the sharded result keeps the (1, 2) guarantee -- its
    # error never exceeds the offline optimal B-bucket error.
    small = rng.integers(0, 256, 2_000)
    sharded = ParallelSummarizer(
        method, buckets=8, workers=4, backend="thread", serial_cutoff=1
    ).summarize(small)
    bound = optimal_error(small.tolist(), 8)
    if sharded.error > bound + 1e-9:
        raise AssertionError(
            f"{method}: sharded error {sharded.error} exceeds the offline "
            f"optimal 8-bucket error {bound}; the (1, 2) bound is broken"
        )


def _time_serial(method: str, arr: np.ndarray) -> float:
    summary = _serial_summary(method)
    start = time.perf_counter()
    summary.extend(arr)
    elapsed = time.perf_counter() - start
    assert summary.items_seen == len(arr)
    return elapsed


def _time_parallel(
    method: str, arr: np.ndarray, workers: int, arity: int = 2
) -> float:
    runner = ParallelSummarizer(
        method, buckets=BUCKETS, workers=workers, arity=arity,
        serial_cutoff=1,
    )
    start = time.perf_counter()
    summary = runner.summarize(arr)
    elapsed = time.perf_counter() - start
    assert summary.items_seen == len(arr)
    return elapsed


def _measure(method: str, workload: str, items: int) -> list:
    arr = _workload(workload, items)
    serial_s = _time_serial(method, arr)
    cpus = available_cpus()
    rows = []
    for workers in sorted({2, 4, cpus} - {1}):
        parallel_s = _time_parallel(method, arr, workers)
        rows.append(
            {
                "method": method,
                "workload": workload,
                "items": items,
                "workers": workers,
                "arity": 2,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s,
            }
        )
    # Merge-tree depth sensitivity: same worker count, wider fan-in.  Only
    # interesting when the tree has more than one level at arity 2.
    deepest = max(row["workers"] for row in rows)
    if deepest > 2:
        for arity in sorted({4, deepest} - {2}):
            parallel_s = _time_parallel(method, arr, deepest, arity=arity)
            rows.append(
                {
                    "method": method,
                    "workload": workload,
                    "items": items,
                    "workers": deepest,
                    "arity": arity,
                    "serial_s": serial_s,
                    "parallel_s": parallel_s,
                    "speedup": serial_s / parallel_s,
                }
            )
    return rows


def run(quick: bool, min_speedup: float, json_path: Path | None) -> int:
    for method in ("min-merge", "pwl-min-merge"):
        _equivalence_guard(method)
    sizes = QUICK_ITEMS if quick else FULL_ITEMS
    cpus = available_cpus()
    gate_enforced = cpus >= 2
    print(
        f"parallel vs serial ingest, {cpus} CPUs, "
        f"gate {'>= %.2fx' % min_speedup if gate_enforced else 'skipped (1 CPU)'}"
    )
    results = []
    failures = 0
    plans = [
        ("min-merge", "rough"),
        ("min-merge", "brownian"),
        ("pwl-min-merge", "rough"),
    ]
    for method, workload in plans:
        rows = _measure(method, workload, sizes[method])
        results.extend(rows)
        for row in rows:
            gated = (
                gate_enforced
                and (method, workload) in GATED
                and row["arity"] == 2
                and row["workers"] <= cpus
            )
            ok = (not gated) or row["speedup"] >= min_speedup
            if not ok:
                failures += 1
                print(
                    f"gate failure ({method}/{workload}: speedup "
                    f"{row['speedup']:.2f}x < {min_speedup:g}x); "
                    "offending result:",
                    file=sys.stderr,
                )
                print(
                    json.dumps(row, indent=2, sort_keys=True),
                    file=sys.stderr,
                )
            print(
                f"{method:<16} {workload:<9} n={row['items']:<9,} "
                f"P={row['workers']:<2} arity={row['arity']:<2} "
                f"serial {row['serial_s']:7.3f}s   "
                f"parallel {row['parallel_s']:7.3f}s   "
                f"speedup {row['speedup']:5.2f}x   "
                f"{'ok' if ok else 'FAIL'}{'' if gated else ' (ungated)'}"
            )
    if json_path is not None:
        payload = {
            "benchmark": "parallel_ingest",
            "cpus": cpus,
            "gate_enforced": gate_enforced,
            "min_speedup": min_speedup,
            "results": results,
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {json_path}")
    return 1 if failures else 0


# -- pytest-benchmark surface (make bench) --------------------------------

_BENCH_ITEMS = (
    FULL_ITEMS["min-merge"] if PAPER_SCALE else QUICK_ITEMS["min-merge"]
)


@pytest.mark.parametrize("method", ["min-merge", "pwl-min-merge"])
def test_equivalence_guard(method):
    _equivalence_guard(method)


def test_parallel_min_merge_ingest(benchmark):
    arr = _workload("rough", _BENCH_ITEMS)
    runner = ParallelSummarizer(
        "min-merge", buckets=BUCKETS, workers=max(2, available_cpus()),
        serial_cutoff=1,
    )

    def ingest():
        return runner.summarize(arr)

    summary = benchmark(ingest)
    assert summary.items_seen == len(arr)
    serial_s = _time_serial("min-merge", arr)
    benchmark.extra_info.update(
        {"serial_s": serial_s, "cpus": available_cpus()}
    )
    if available_cpus() >= 2:
        parallel_s = _time_parallel(
            "min-merge", arr, max(2, available_cpus())
        )
        assert serial_s / parallel_s >= 1.3, (
            f"parallel speedup {serial_s / parallel_s:.2f}x below 1.3x "
            f"on {available_cpus()} CPUs at n={len(arr)}"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            f"use the CI smoke sizes (min-merge n={QUICK_ITEMS['min-merge']:,}) "
            f"instead of the full n={FULL_ITEMS['min-merge']:,}"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        help="fail a gated row below this speedup (skipped on 1-CPU hosts)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write results to this JSON file"
    )
    args = parser.parse_args()
    return run(args.quick, args.min_speedup, args.json)


if __name__ == "__main__":
    raise SystemExit(main())
