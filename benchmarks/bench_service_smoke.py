"""Service smoke gate: boot the server, stream 100k values over the wire,
and diff the served histogram against one-shot ``summarize()``.

The CI job runs this after every change (see ``.github/workflows/ci.yml``
and ``make service-smoke``): it is the end-to-end check that the wire
front, the engine's queueing/locking, checkpoint-on-ingest, and the
one-shot API all agree bit for bit.

The run also races the two client transports (newline JSON, protocol 1,
versus binary frames, protocol 2) over the same TCP socket path and
records the result in the report's ``wire`` section.  The binary
transport must beat JSON by at least ``--wire-min-speedup`` (default 3x)
on append throughput; anything less means the zero-copy path regressed.

Exit status is non-zero on any mismatch, so the script doubles as a
release gate::

    python benchmarks/bench_service_smoke.py --items 100000 \
        --json BENCH_SERVICE.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

import numpy as np

from repro.api import summarize
from repro.service import ServiceClient, StreamEngine, StreamServer

#: Wire methods exercised by the smoke run (streaming methods only; the
#: merge family's histogram is deterministic for serial feeds, and the
#: ladder methods are deterministic outright, so bit-equality is fair).
METHODS = ("min-merge", "min-increment", "pwl", "pwl-min-merge")


def _dataset(n: int) -> list:
    return [(37 * i + (i * i) % 89) % 4096 for i in range(n)]


def _check_served(method: str, served, oracle, items: int) -> None:
    """Exit non-zero if the served histogram diverges from the oracle."""
    oracle_segments = list(oracle.segments)
    if list(served.segments) != oracle_segments or served.error != oracle.error:
        raise SystemExit(
            f"{method}: served histogram diverges from summarize() "
            f"(served error {served.error}, oracle {oracle.error})"
        )
    if served.meta.items_seen != items:
        raise SystemExit(
            f"{method}: served items_seen {served.meta.items_seen} != {items}"
        )


def run_smoke(
    items: int, *, chunk: int = 5_000, workers: int = 2
) -> dict:
    """Stream ``items`` values per method over TCP; return the report.

    Raises ``SystemExit`` on the first divergence between the served
    histogram and the one-shot oracle.
    """
    values = _dataset(items)
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        engine = StreamEngine(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=max(1, items // 4),
            workers=workers,
        )
        server = StreamServer(engine).start_in_background()
        report = {"items": items, "chunk": chunk, "methods": {}}
        try:
            with ServiceClient(port=server.port) as client:
                if not client.ping():
                    raise SystemExit("server did not answer ping")
                for method in METHODS:
                    start = time.perf_counter()
                    for lo in range(0, items, chunk):
                        client.append(
                            method,
                            values[lo : lo + chunk],
                            method=method,
                            buckets=16,
                            universe=4096,
                        )
                    served = client.query(method, drain=True).histogram
                    elapsed = time.perf_counter() - start
                    oracle = summarize(values, 16, method=method)
                    _check_served(method, served, oracle, items)
                    report["methods"][method] = {
                        "seconds": elapsed,
                        "items_per_second": items / elapsed,
                        "error": served.error,
                        "buckets": len(served.segments),
                    }
                stats = client.stats()
                report["checkpoints"] = stats["checkpoints"]
                if stats["checkpoints"] < len(METHODS):
                    raise SystemExit(
                        "periodic checkpoints never fired "
                        f"({stats['checkpoints']} snapshots)"
                    )
        finally:
            server.stop()
            engine.close()
    return report


def _race_once(server, engine, values, *, chunk: int, tag: str) -> dict:
    """One JSON-vs-binary append race on fresh streams; returns timings.

    The elapsed time covers the append phase only: the engine runs with
    one worker, no checkpointing, and a queue deep enough to never push
    back, so an append returns as soon as the server has parsed the
    batch and enqueued it.  That isolates exactly what the transports
    differ on -- serialization, socket framing, and server-side parse --
    rather than summary maintenance, which is identical for both.  After
    each run the engine drains and the served histogram is diffed
    against ``summarize()``, so the fast path is also checked for
    bit-identity, not just speed.
    """
    items = len(values)
    batch = np.asarray(values, dtype="<f8")
    oracle = summarize(values, 16, method="min-merge")
    result: dict = {"transports": {}}
    for transport in ("json", "binary"):
        stream = f"wire-{transport}-{tag}"
        if transport == "binary":
            # ndarray slices ride the zero-copy fast path: one
            # binary frame per chunk, no per-item Python objects.
            chunks = [batch[lo : lo + chunk] for lo in range(0, items, chunk)]
        else:
            chunks = [values[lo : lo + chunk] for lo in range(0, items, chunk)]
        with ServiceClient(port=server.port, transport=transport) as client:
            start = time.perf_counter()
            for part in chunks:
                client.append(
                    stream,
                    part,
                    method="min-merge",
                    buckets=16,
                    universe=4096,
                )
            elapsed = time.perf_counter() - start
            engine.drain()
            served = client.query(stream).histogram
            _check_served(f"wire[{transport}]", served, oracle, items)
            result["transports"][transport] = {
                "proto": client.info.proto,
                "seconds": elapsed,
                "values_per_second": items / elapsed,
            }
    result["speedup"] = (
        result["transports"]["json"]["seconds"]
        / result["transports"]["binary"]["seconds"]
    )
    return result


def run_wire(
    items: int,
    *,
    chunk: int = 5_000,
    min_speedup: float = 3.0,
    attempts: int = 3,
) -> dict:
    """Race the JSON and binary transports over TCP; return the report.

    The speedup ratio is timing-sensitive on shared CI runners (a noisy
    neighbor during either leg skews it), so the gate takes the **best
    of up to** ``attempts`` races after one untimed warm-up round (which
    pre-imports the numpy fast path and warms the TCP stack and branch
    caches).  Every attempt -- not just the winner -- is recorded under
    ``attempts`` in the report, so a run that needed retries is visible
    in the artifact.  Bit-identity is asserted on every round including
    the warm-up; only the *timing* gets retried.

    Raises ``SystemExit`` if no attempt reaches ``min_speedup`` (set it
    to 0 to disable the gate; the race still runs once).
    """
    values = _dataset(items)
    engine = StreamEngine(workers=1, max_pending=2 * items + 1)
    server = StreamServer(engine).start_in_background()
    report: dict = {"items": items, "chunk": chunk, "attempts": []}
    try:
        warmup = _race_once(
            server,
            engine,
            values[: max(chunk, items // 10)],
            chunk=chunk,
            tag="warmup",
        )
        report["warmup_speedup"] = warmup["speedup"]
        best: dict = {}
        for i in range(max(1, attempts)):
            attempt = _race_once(server, engine, values, chunk=chunk, tag=f"a{i}")
            report["attempts"].append(
                {"speedup": attempt["speedup"], **attempt["transports"]}
            )
            if not best or attempt["speedup"] > best["speedup"]:
                best = attempt
            if min_speedup and attempt["speedup"] >= min_speedup:
                break
    finally:
        server.stop()
        engine.close()
    report["transports"] = best["transports"]
    report["speedup"] = best["speedup"]
    report["min_speedup"] = min_speedup
    if min_speedup and best["speedup"] < min_speedup:
        raise SystemExit(
            f"binary transport only {best['speedup']:.2f}x faster than JSON "
            f"(best of {len(report['attempts'])} attempts; gate requires "
            f">= {min_speedup:g}x)"
        )
    return report


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=100_000)
    parser.add_argument("--chunk", type=int, default=5_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--wire-items",
        type=int,
        default=100_000,
        help="values streamed per transport in the JSON-vs-binary race",
    )
    parser.add_argument(
        "--wire-min-speedup",
        type=float,
        default=3.0,
        help="required binary-over-JSON append speedup (0 disables)",
    )
    parser.add_argument(
        "--json", default=None, help="also write the report to this path"
    )
    args = parser.parse_args(argv)
    report = run_smoke(args.items, chunk=args.chunk, workers=args.workers)
    for method, row in report["methods"].items():
        print(
            f"{method:<16} {row['seconds']:.3f} s "
            f"({row['items_per_second']:,.0f} items/s over the wire), "
            f"error={row['error']:g}, buckets={row['buckets']}"
        )
    print(
        f"checkpoints: {report['checkpoints']}; "
        "served histograms are bit-identical to summarize()"
    )
    report["wire"] = run_wire(
        args.wire_items, chunk=args.chunk, min_speedup=args.wire_min_speedup
    )
    for transport, row in report["wire"]["transports"].items():
        print(
            f"wire[{transport}]     proto={row['proto']} "
            f"{row['seconds']:.3f} s append phase "
            f"({row['values_per_second']:,.0f} values/s)"
        )
    print(
        f"binary-over-JSON speedup: {report['wire']['speedup']:.2f}x "
        f"(gate >= {report['wire']['min_speedup']:g}x, best of "
        f"{len(report['wire']['attempts'])} attempts)"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
