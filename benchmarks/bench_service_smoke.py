"""Service smoke gate: boot the server, stream 100k values over the wire,
and diff the served histogram against one-shot ``summarize()``.

The CI job runs this after every change (see ``.github/workflows/ci.yml``
and ``make service-smoke``): it is the end-to-end check that the wire
front, the engine's queueing/locking, checkpoint-on-ingest, and the
one-shot API all agree bit for bit.

Exit status is non-zero on any mismatch, so the script doubles as a
release gate::

    python benchmarks/bench_service_smoke.py --items 100000 \
        --json BENCH_SERVICE.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.api import summarize
from repro.service import ServiceClient, StreamEngine, StreamServer

#: Wire methods exercised by the smoke run (streaming methods only; the
#: merge family's histogram is deterministic for serial feeds, and the
#: ladder methods are deterministic outright, so bit-equality is fair).
METHODS = ("min-merge", "min-increment", "pwl", "pwl-min-merge")


def _dataset(n: int) -> list:
    return [(37 * i + (i * i) % 89) % 4096 for i in range(n)]


def _segments(hist_dict: dict) -> list:
    return [tuple(seg) for seg in hist_dict["segments"]]


def run_smoke(
    items: int, *, chunk: int = 5_000, workers: int = 2
) -> dict:
    """Stream ``items`` values per method over TCP; return the report.

    Raises ``SystemExit`` on the first divergence between the served
    histogram and the one-shot oracle.
    """
    values = _dataset(items)
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        engine = StreamEngine(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=max(1, items // 4),
            workers=workers,
        )
        server = StreamServer(engine).start_in_background()
        report = {"items": items, "chunk": chunk, "methods": {}}
        try:
            with ServiceClient(port=server.port) as client:
                if not client.ping():
                    raise SystemExit("server did not answer ping")
                for method in METHODS:
                    start = time.perf_counter()
                    for lo in range(0, items, chunk):
                        client.append(
                            method,
                            values[lo : lo + chunk],
                            method=method,
                            buckets=16,
                            universe=4096,
                        )
                    served = client.query(method, drain=True)
                    elapsed = time.perf_counter() - start
                    oracle = summarize(values, 16, method=method)
                    oracle_segments = [
                        (s.beg, s.end, s.left, s.right)
                        for s in oracle.segments
                    ]
                    if (
                        _segments(served) != oracle_segments
                        or served["error"] != oracle.error
                    ):
                        raise SystemExit(
                            f"{method}: served histogram diverges from "
                            f"summarize() (served error {served['error']}, "
                            f"oracle {oracle.error})"
                        )
                    if served["meta"]["items_seen"] != items:
                        raise SystemExit(
                            f"{method}: served items_seen "
                            f"{served['meta']['items_seen']} != {items}"
                        )
                    report["methods"][method] = {
                        "seconds": elapsed,
                        "items_per_second": items / elapsed,
                        "error": served["error"],
                        "buckets": len(served["segments"]),
                    }
                stats = client.stats()
                report["checkpoints"] = stats["checkpoints"]
                if stats["checkpoints"] < len(METHODS):
                    raise SystemExit(
                        "periodic checkpoints never fired "
                        f"({stats['checkpoints']} snapshots)"
                    )
        finally:
            server.stop()
            engine.close()
    return report


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=100_000)
    parser.add_argument("--chunk", type=int, default=5_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--json", default=None, help="also write the report to this path"
    )
    args = parser.parse_args(argv)
    report = run_smoke(args.items, chunk=args.chunk, workers=args.workers)
    for method, row in report["methods"].items():
        print(
            f"{method:<16} {row['seconds']:.3f} s "
            f"({row['items_per_second']:,.0f} items/s over the wire), "
            f"error={row['error']:g}, buckets={row['buckets']}"
        )
    print(
        f"checkpoints: {report['checkpoints']}; "
        "served histograms are bit-identical to summarize()"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
