"""Ablation: the Section 2.2.2 batch buffer for MIN-INCREMENT.

The plain algorithm touches every ladder level per item
(O(eps^-1 log U)); the buffered variant first tries to swallow a whole
buffer into each level's open bucket in O(1).  Theorem 2's O(1) amortized
update is this ablation's headline -- same answers, several times the
throughput.
"""

from __future__ import annotations

import time

from repro.core.min_increment import MinIncrementHistogram
from repro.data import brownian
from repro.harness.experiments import ExperimentSeries

EPSILON = 0.2
UNIVERSE = 1 << 15


def _sweep(values, batch_sizes) -> ExperimentSeries:
    series = ExperimentSeries(
        name="ablation-batching",
        title="Ablation: MIN-INCREMENT batch buffer (B=32, eps=0.2)",
        x="batch-size",
        columns=["batch-size", "seconds", "items-per-second", "error"],
    )
    for batch in batch_sizes:
        algo = MinIncrementHistogram(
            buckets=32, epsilon=EPSILON, universe=UNIVERSE,
            batch_size=batch,
        )
        start = time.perf_counter()
        algo.extend(values)
        algo.flush()
        elapsed = time.perf_counter() - start
        series.rows.append(
            {
                "batch-size": batch if batch is not None else 1,
                "seconds": elapsed,
                "items-per-second": len(values) / elapsed,
                "error": algo.error,
            }
        )
    return series


def test_batching_ablation(benchmark, paper_scale, save_series):
    n = 65536 if paper_scale else 16384
    values = brownian(n)
    batches = (None, 8, 32, 128, 512)
    series = benchmark.pedantic(
        lambda: _sweep(values, batches), rounds=1, iterations=1
    )
    text = save_series("ablation_batching", series)
    print("\n" + text)
    errors = {row["error"] for row in series.rows}
    assert len(errors) == 1  # buffering never changes the answer
    unbuffered = series.rows[0]["items-per-second"]
    best = max(row["items-per-second"] for row in series.rows[1:])
    assert best > 2 * unbuffered  # the amortized fast path pays off
