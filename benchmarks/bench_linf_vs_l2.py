"""Extension: the L-infinity-vs-L2 motivation, quantified.

The paper's introduction argues that real-time monitoring needs the
*maximum* error metric because L2-optimal summaries may flatten exactly
the spikes that matter.  With the L2 subpackage in place we can measure
it: on a spiky workload, compare the V-optimal (exact L2) and streaming
L2-merge histograms against MIN-MERGE at equal bucket budgets, scoring
both metrics plus the residual at the worst spike.

Expected shape: the L2 summaries win (slightly) on L2 while MIN-MERGE
wins decisively on L-infinity and keeps every spike visible.
"""

from __future__ import annotations

from repro.core.min_merge import MinMergeHistogram
from repro.data.generators import spike_train
from repro.data.quantize import quantize_to_universe
from repro.harness.experiments import ExperimentSeries
from repro.l2.merge import L2MergeHistogram
from repro.l2.voptimal import voptimal_histogram
from repro.metrics.errors import l2_error, linf_error

UNIVERSE = 1 << 15


def _sweep(values, budgets) -> ExperimentSeries:
    series = ExperimentSeries(
        name="linf-vs-l2",
        title="L-infinity vs L2 histograms on spiky data (equal buckets)",
        x="buckets",
        columns=[
            "buckets",
            "minmerge-linf", "voptimal-linf", "l2merge-linf",
            "minmerge-l2", "voptimal-l2",
        ],
    )
    for buckets in budgets:
        mm = MinMergeHistogram(buckets=buckets // 2, working_buckets=buckets)
        mm.extend(values)
        mm_approx = mm.histogram().reconstruct()
        vo_approx = voptimal_histogram(values, buckets).reconstruct()
        l2m = L2MergeHistogram(buckets=buckets)
        l2m.extend(values)
        l2m_approx = l2m.histogram().reconstruct()
        series.rows.append(
            {
                "buckets": buckets,
                "minmerge-linf": linf_error(values, mm_approx),
                "voptimal-linf": linf_error(values, vo_approx),
                "l2merge-linf": linf_error(values, l2m_approx),
                "minmerge-l2": l2_error(values, mm_approx),
                "voptimal-l2": l2_error(values, vo_approx),
            }
        )
    return series


def test_linf_vs_l2_on_spikes(benchmark, paper_scale, save_series):
    n = 4096 if paper_scale else 1024
    raw = spike_train(
        n, seed=8, spike_probability=0.01, spike_height=60.0, noise=0.5
    )
    values = quantize_to_universe(raw, UNIVERSE)
    budgets = (16, 32, 64) if paper_scale else (16, 32)
    series = benchmark.pedantic(
        lambda: _sweep(values, budgets), rounds=1, iterations=1
    )
    text = save_series("linf_vs_l2", series)
    print("\n" + text)
    for row in series.rows:
        # The max-error summary dominates on its own metric...
        assert row["minmerge-linf"] <= row["voptimal-linf"]
        assert row["minmerge-linf"] <= row["l2merge-linf"]
        # ...while the exact L2 optimum dominates on L2, by definition.
        assert row["voptimal-l2"] <= row["minmerge-l2"] + 1e-6
