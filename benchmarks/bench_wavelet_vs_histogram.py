"""Section 1.2 claim: wavelets are fine for L2 but poor for L-infinity.

Equal-storage comparison of a top-B Haar synopsis against MIN-MERGE.
Expected shape: the wavelet is competitive (often better) on L2 while the
histogram wins decisively on the maximum error, especially on the bursty
Merced data whose spikes the L2 thresholding sacrifices.
"""

from __future__ import annotations

from repro.harness.experiments import wavelet_comparison


def test_wavelet_vs_histogram(benchmark, paper_scale, save_series):
    kwargs = (
        {"n": 16384, "budgets": (16, 32, 64, 128, 256)}
        if paper_scale
        else {"n": 4096, "budgets": (16, 32, 64, 128)}
    )
    series = benchmark.pedantic(
        lambda: wavelet_comparison(dataset="merced", **kwargs),
        rounds=1,
        iterations=1,
    )
    text = save_series("wavelet_vs_histogram", series)
    print("\n" + text)
    for row in series.rows:
        assert row["histogram-linf"] < row["wavelet-linf"], row
