"""Extension: the full sensor-network deployment, measured.

The paper's opening scenario run end to end in simulation: motes
summarize epochs with MIN-MERGE, ship summaries up a binary collection
tree, and the base station maintains per-mote histories by guaranteed
merging.  The sweep varies the epoch length and reports radio bytes for
summary shipping vs raw forwarding, peak per-mote memory, and whether the
(1, 2) guarantee held through every merge.

Expected shape: radio savings grow linearly with epoch length (the
summary payload is constant while the raw payload is 4 bytes/reading);
mote memory is flat; the guarantee always holds.
"""

from __future__ import annotations

from repro.harness.experiments import ExperimentSeries
from repro.simulation.scenario import SensorNetworkSimulation


def _sweep(epoch_lengths, *, leaves, epochs, buckets) -> ExperimentSeries:
    series = ExperimentSeries(
        name="sensor-deployment",
        title=(
            f"Sensor deployment: {leaves} motes, {epochs} epochs, "
            f"B={buckets}"
        ),
        x="readings-per-epoch",
        columns=[
            "readings-per-epoch", "summary-kb", "raw-kb",
            "radio-savings", "mote-memory-bytes", "guarantee",
        ],
    )
    for length in epoch_lengths:
        report = SensorNetworkSimulation(
            leaves=leaves,
            buckets=buckets,
            epochs=epochs,
            readings_per_epoch=length,
        ).run()
        series.rows.append(
            {
                "readings-per-epoch": length,
                "summary-kb": report.summary_radio_bytes / 1024.0,
                "raw-kb": report.raw_radio_bytes / 1024.0,
                "radio-savings": report.radio_savings,
                "mote-memory-bytes": report.peak_mote_memory_bytes,
                "guarantee": report.guarantee_held,
            }
        )
    return series


def test_sensor_deployment(benchmark, paper_scale, save_series):
    if paper_scale:
        kwargs = {"leaves": 16, "epochs": 6, "buckets": 16}
        lengths = (512, 2048, 8192)
    else:
        kwargs = {"leaves": 8, "epochs": 3, "buckets": 16}
        lengths = (256, 1024, 4096)
    series = benchmark.pedantic(
        lambda: _sweep(lengths, **kwargs), rounds=1, iterations=1
    )
    text = save_series("sensor_deployment", series)
    print("\n" + text)
    savings = series.column("radio-savings")
    assert savings == sorted(savings)  # grows with epoch length
    for row in series.rows:
        assert row["guarantee"] is True
        assert row["mote-memory-bytes"] <= 1024
