"""Wire codec and hotspot micro-profiles behind the binary fast path.

Three before/after comparisons, each keeping the "before" implementation
alive inside this benchmark so the profile stays reproducible after the
production code has moved on:

* **codec** -- encoding + decoding an append batch as a JSON request
  line (protocol 1) versus a binary ``OP_APPEND`` frame (protocol 2).
  This is the serialization share of the end-to-end speedup gated by
  ``bench_service_smoke.py``.
* **heap** -- FINDMIN maintenance in the MIN-MERGE kernels.  Before:
  every neighbour-key refresh was ``remove(handle)`` + ``push`` (two
  full sift chains plus handle churn) and a bucket merge retired three
  entries and pushed two.  After: ``update(handle, key)`` re-sifts in
  place, and the merge recycles the dying pair's entry
  (``update(handle, key, item=...)``), so a merge costs one pop and two
  sifts.  Keys are unique ``(error, position)`` tuples either way, so
  the extraction order -- and therefore the histogram -- is identical.
* **hull** -- ``StreamingHull.add``, the per-point cost of PWL ingest.
  Before: one ``cross()`` call (tuple packing + Python call) per turn
  test and two eagerly allocated undo buffers per add.  After: the
  cross product is inlined with the same IEEE operation order and the
  undo buffers are lazy, so the steady-state add allocates nothing.

Run::

    python benchmarks/bench_wire.py --json BENCH_WIRE.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.geometry.convex_hull import StreamingHull
from repro.geometry.point import cross
from repro.service import wire
from repro.structures.heap import AddressableMinHeap


def _dataset(n: int, universe: int = 4096) -> list:
    return [(37 * i + (i * i) % 89) % universe for i in range(n)]


def _rate(items: int, seconds: float) -> float:
    return items / seconds if seconds > 0 else float("inf")


# -- codec: JSON request line vs binary OP_APPEND frame ---------------------


def bench_codec(items: int, chunk: int) -> dict:
    """Time a full encode + decode round trip per transport, no socket."""
    values = _dataset(items)
    batch = np.asarray(values, dtype="<f8")
    meta = {"stream": "s", "method": "min-merge", "buckets": 16}

    start = time.perf_counter()
    for lo in range(0, items, chunk):
        line = (
            json.dumps(
                {"op": "append", "values": values[lo : lo + chunk], **meta},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        request = json.loads(line)
        # The server's per-item coercion is part of the JSON parse cost.
        decoded = [float(v) for v in request["values"]]
    json_seconds = time.perf_counter() - start
    assert decoded[-1] == float(values[-1])

    start = time.perf_counter()
    for lo in range(0, items, chunk):
        head, value_bytes = wire.encode_append_payload(
            meta, batch[lo : lo + chunk]
        )
        payload = head[wire.HEADER_BYTES :] + bytes(value_bytes)
        _decoded_meta, decoded = wire.decode_append_payload(payload)
    binary_seconds = time.perf_counter() - start
    assert decoded[-1] == float(values[-1])

    return {
        "items": items,
        "chunk": chunk,
        "json": {
            "seconds": json_seconds,
            "values_per_second": _rate(items, json_seconds),
        },
        "binary": {
            "seconds": binary_seconds,
            "values_per_second": _rate(items, binary_seconds),
        },
        "speedup": json_seconds / binary_seconds,
    }


# -- heap: remove+push (before) vs in-place update (after) ------------------


def _heap_fixture(pairs: int):
    """A heap of ``pairs`` entries keyed like FINDMIN pair keys."""
    heap = AddressableMinHeap()
    handles = [
        heap.push(((37 * i + (i * i) % 89) % 4096, i), i)
        for i in range(pairs)
    ]
    return heap, handles


def bench_heap(pairs: int, rounds: int) -> dict:
    """Neighbour-key refresh churn: the dominant FINDMIN operation."""
    heap, handles = _heap_fixture(pairs)
    start = time.perf_counter()
    for r in range(rounds):
        for i, handle in enumerate(handles):
            # Before: a refresh was remove + push, and the new handle had
            # to be threaded back into the bucket node.
            _key, item = heap.remove(handle)
            handles[i] = heap.push(((r * 31 + i * 17) % 4096, i), item)
    before_seconds = time.perf_counter() - start

    heap, handles = _heap_fixture(pairs)
    start = time.perf_counter()
    for r in range(rounds):
        for i, handle in enumerate(handles):
            # After: one in-place sift, handle preserved.
            heap.update(handle, ((r * 31 + i * 17) % 4096, i))
    after_seconds = time.perf_counter() - start
    heap.check_invariant()

    ops = pairs * rounds
    return {
        "pairs": pairs,
        "rounds": rounds,
        "before": {
            "seconds": before_seconds,
            "updates_per_second": _rate(ops, before_seconds),
        },
        "after": {
            "seconds": after_seconds,
            "updates_per_second": _rate(ops, after_seconds),
        },
        "speedup": before_seconds / after_seconds,
    }


# -- hull: reference add (before) vs inlined lazy add (after) ---------------


class _ReferenceHull(StreamingHull):
    """The pre-optimization ``add``: ``cross()`` calls + eager buffers."""

    __slots__ = ()

    def add(self, x, y) -> None:  # noqa: D102 - profiled reference
        lower, upper = self.lower, self.upper
        if lower and x <= lower[-1][0]:
            raise ValueError("x must be strictly increasing")
        p = (x, y)
        popped_lower = []
        popped_upper = []
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            popped_lower.append(lower.pop())
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) >= 0:
            popped_upper.append(upper.pop())
        lower.append(p)
        upper.append(p)
        self._count += 1
        self._last_popped = (popped_lower, popped_upper)


def bench_hull(points: int) -> dict:
    """Per-point ``add`` cost on the rough smoke dataset."""
    ys = _dataset(points)

    reference = _ReferenceHull()
    start = time.perf_counter()
    for i, y in enumerate(ys):
        reference.add(i, y)
    before_seconds = time.perf_counter() - start

    hull = StreamingHull()
    start = time.perf_counter()
    for i, y in enumerate(ys):
        hull.add(i, y)
    after_seconds = time.perf_counter() - start

    if hull.vertices() != reference.vertices():
        raise SystemExit("optimized hull diverged from the reference")
    hull.check_invariant()

    return {
        "points": points,
        "before": {
            "seconds": before_seconds,
            "adds_per_second": _rate(points, before_seconds),
        },
        "after": {
            "seconds": after_seconds,
            "adds_per_second": _rate(points, after_seconds),
        },
        "speedup": before_seconds / after_seconds,
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=400_000)
    parser.add_argument("--chunk", type=int, default=5_000)
    parser.add_argument("--pairs", type=int, default=512)
    parser.add_argument("--rounds", type=int, default=400)
    parser.add_argument("--points", type=int, default=400_000)
    parser.add_argument(
        "--min-codec-speedup",
        type=float,
        default=3.0,
        help="required binary-over-JSON codec speedup (0 disables)",
    )
    parser.add_argument(
        "--json", default=None, help="also write the report to this path"
    )
    args = parser.parse_args(argv)

    codec = bench_codec(args.items, args.chunk)
    print(
        f"codec  json {codec['json']['values_per_second']:>13,.0f} values/s"
        f"   binary {codec['binary']['values_per_second']:>13,.0f} values/s"
        f"   speedup {codec['speedup']:.2f}x"
    )
    heap = bench_heap(args.pairs, args.rounds)
    print(
        f"heap   before {heap['before']['updates_per_second']:>11,.0f} upd/s"
        f"   after  {heap['after']['updates_per_second']:>13,.0f} upd/s"
        f"   speedup {heap['speedup']:.2f}x"
    )
    hull = bench_hull(args.points)
    print(
        f"hull   before {hull['before']['adds_per_second']:>11,.0f} adds/s"
        f"   after  {hull['after']['adds_per_second']:>13,.0f} adds/s"
        f"   speedup {hull['speedup']:.2f}x"
    )

    report = {"codec": codec, "heap": heap, "hull": hull}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if args.min_codec_speedup and codec["speedup"] < args.min_codec_speedup:
        print(
            f"codec speedup {codec['speedup']:.2f}x below the "
            f"{args.min_codec_speedup:g}x gate; offending report section:",
            file=sys.stderr,
        )
        print(
            json.dumps({"codec": codec}, indent=2, sort_keys=True),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
