"""Extension: the paper's algorithms under REHIST's native relative metric.

Section 5 runs REHIST under the absolute max-error metric "with the same
bounds"; this benchmark closes the loop in the other direction, running
MIN-MERGE and MIN-INCREMENT under the maximum *relative* error on the
bursty Merced proxy (where relative error is the natural choice: a 100 cfs
mistake matters at baseflow, not at flood peak).

Expected shape: the (1, 2) and (1 + eps, 1) guarantees hold verbatim
against the exact relative optimum, with the same O(B)-memory profile.
"""

from __future__ import annotations

from repro.data.datasets import merced
from repro.harness.experiments import ExperimentSeries
from repro.relative.algorithms import (
    RelativeMinIncrementHistogram,
    RelativeMinMergeHistogram,
    optimal_relative_error,
)

UNIVERSE = (1 << 15) + 64
EPSILON = 0.2


def _sweep(values, budgets) -> ExperimentSeries:
    series = ExperimentSeries(
        name="relative-error",
        title="Relative-error histograms on Merced (eps=0.2)",
        x="buckets",
        columns=[
            "buckets", "optimal", "min-merge", "min-increment",
            "mm-memory", "mi-memory",
        ],
    )
    for buckets in budgets:
        mm = RelativeMinMergeHistogram(buckets=buckets)
        mm.extend(values)
        mi = RelativeMinIncrementHistogram(
            buckets=buckets, epsilon=EPSILON, universe=UNIVERSE
        )
        mi.extend(values)
        series.rows.append(
            {
                "buckets": buckets,
                "optimal": optimal_relative_error(values, buckets),
                "min-merge": mm.error,
                "min-increment": mi.error,
                "mm-memory": mm.memory_bytes(),
                "mi-memory": mi.memory_bytes(),
            }
        )
    return series


def test_relative_error_guarantees(benchmark, paper_scale, save_series):
    n = 16384 if paper_scale else 4096
    # Shift the flows strictly positive: the relative metric degenerates
    # when a bucket can contain zero (its error saturates near 1).
    values = [v + 64 for v in merced(n)]
    budgets = (16, 32, 64, 128) if paper_scale else (16, 32, 64)
    series = benchmark.pedantic(
        lambda: _sweep(values, budgets), rounds=1, iterations=1
    )
    text = save_series("relative_error", series)
    print("\n" + text)
    floor = (1.0 + EPSILON) / (2.0 * UNIVERSE)
    for row in series.rows:
        best = row["optimal"]
        # (1, 2) transfers: 2B buckets beat the B-bucket relative optimum.
        assert row["min-merge"] <= best + 1e-12
        # (1 + eps, 1) transfers down to the ladder floor.
        assert row["min-increment"] <= max((1 + EPSILON) * best, floor) + 1e-12
        # O(B) memory, orders below the raw data.
        # O(B) memory: 2B buckets x 16 B + (2B - 1) heap keys x 8 B.
        assert row["mm-memory"] <= 48 * row["buckets"] + 8
