"""Figure 9: approximation quality of PWL vs serial histograms.

Paper setting: 16384-point Dow-Jones, MIN-MERGE and MIN-INCREMENT in both
representations.  Expected shape: PWL errors 30-40% below serial at equal
bucket count on trending data.
"""

from __future__ import annotations

from repro.harness.experiments import fig9_pwl_vs_serial


def test_fig9_pwl_vs_serial(benchmark, paper_scale, save_series):
    series = benchmark.pedantic(
        lambda: fig9_pwl_vs_serial(paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    text = save_series("fig9_pwl_vs_serial", series)
    print("\n" + text)
    for row in series.rows:
        assert row["pwl-min-merge"] < row["serial-min-merge"]
        assert row["pwl-min-increment"] < row["serial-min-increment"]
    gains = [
        1.0 - row["pwl-min-merge"] / row["serial-min-merge"]
        for row in series.rows
    ]
    # The paper reports 30-40%; allow a broad band for the proxy dataset.
    assert all(0.05 < g < 0.7 for g in gains), gains
