"""Ablation: REHIST's per-level quantization delta (the B^2 driver).

REHIST keeps one breakpoint per (1 + delta)-factor error class per DP
level; dropped intra-class positions cost a (1 + delta) factor *per
level*, compounding across B levels.  The guarantee therefore demands
``delta = eps / (2B)`` -- which multiplies the per-level class count by B
and produces the Theta(eps^-1 B^2 log U) footprint of Figure 5.

This ablation sweeps delta from the guaranteed setting up to eps itself,
measuring memory and realized error ratio.  Measured shape (Brownian,
B = 32): memory falls ~5x as delta coarsens to eps, but the realized
error ratio climbs from 1.00 to ~1.9 -- the per-level compounding is not
just a worst-case artifact; the eps/2B setting (and hence the B^2 memory)
is genuinely load-bearing for the (1 + eps) guarantee.
"""

from __future__ import annotations

from repro.baselines.rehist import RehistHistogram
from repro.data.datasets import brownian
from repro.harness.experiments import ExperimentSeries
from repro.offline.optimal import optimal_error

UNIVERSE = 1 << 15
EPSILON = 0.2
BUCKETS = 32


def _sweep(values, deltas) -> ExperimentSeries:
    best = optimal_error(values, BUCKETS)
    series = ExperimentSeries(
        name="ablation-rehist-delta",
        title=f"Ablation: REHIST per-level delta (B={BUCKETS}, eps={EPSILON})",
        x="delta",
        columns=["delta", "memory-bytes", "breakpoints", "error-ratio"],
        meta={"optimal": best},
    )
    for delta in deltas:
        rehist = RehistHistogram(
            buckets=BUCKETS, epsilon=EPSILON, universe=UNIVERSE, delta=delta
        )
        rehist.extend(values)
        series.rows.append(
            {
                "delta": delta,
                "memory-bytes": rehist.memory_bytes(),
                "breakpoints": rehist.breakpoint_count(),
                "error-ratio": rehist.error / best if best else float("nan"),
            }
        )
    return series


def test_rehist_delta_ablation(benchmark, paper_scale, save_series):
    n = 16384 if paper_scale else 4096
    values = brownian(n)
    guaranteed = EPSILON / (2 * BUCKETS)
    deltas = (guaranteed, 4 * guaranteed, 16 * guaranteed, EPSILON)
    series = benchmark.pedantic(
        lambda: _sweep(values, deltas), rounds=1, iterations=1
    )
    text = save_series("ablation_rehist_delta", series)
    print("\n" + text)
    memories = series.column("memory-bytes")
    # Coarser classes -> monotonically less memory, by a large factor.
    assert memories == sorted(memories, reverse=True)
    assert memories[0] > 3 * memories[-1]
    # The guaranteed setting respects the (1 + eps) bound.
    assert series.rows[0]["error-ratio"] <= 1.0 + EPSILON + 1e-9
    # Every setting still upper-bounds the optimum (Ê >= E*).
    for row in series.rows:
        assert row["error-ratio"] >= 1.0 - 1e-9
