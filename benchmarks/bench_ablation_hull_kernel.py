"""Ablation: the Section 3.1 approximate-hull size cap for PWL buckets.

Sweeps the kernel epsilon of PWL MIN-MERGE between exact hulls and very
coarse kernels, measuring summary error and memory.  The workload is a
smooth quantized sinusoid: every bucket covers a convex arc, so the exact
hull grows with the bucket and the kernel genuinely has something to cap
(on jagged data the hulls stay tiny and the cap never engages -- which is
itself a finding the throughput numbers already reflect).

Expected shape: memory falls steeply with coarser kernels while the error
moves by at most ~1/(1 - eps) -- property (3) in action.
"""

from __future__ import annotations

from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.data.generators import sine_wave
from repro.data.quantize import quantize_to_universe
from repro.harness.experiments import ExperimentSeries


def _sweep(values, epsilons) -> ExperimentSeries:
    series = ExperimentSeries(
        name="ablation-hull-kernel",
        title="Ablation: PWL MIN-MERGE hull kernel epsilon (smooth data)",
        x="hull-epsilon",
        columns=["hull-epsilon", "error", "memory-bytes"],
    )
    for eps in epsilons:
        algo = PwlMinMergeHistogram(buckets=16, hull_epsilon=eps)
        algo.extend(values)
        series.rows.append(
            {
                "hull-epsilon": eps if eps is not None else 0.0,
                "error": algo.error,
                "memory-bytes": algo.memory_bytes(),
            }
        )
    return series


def test_hull_kernel_ablation(benchmark, paper_scale, save_series):
    n = 16384 if paper_scale else 8192
    values = quantize_to_universe(sine_wave(n, periods=6.0), 1 << 15)
    epsilons = (None, 0.05, 0.1, 0.2, 0.4)
    series = benchmark.pedantic(
        lambda: _sweep(values, epsilons), rounds=1, iterations=1
    )
    text = save_series("ablation_hull_kernel", series)
    print("\n" + text)
    exact = series.rows[0]
    for row in series.rows[1:]:
        eps = row["hull-epsilon"]
        # Property (3): each bucket's measured width is within (1 - eps)
        # of exact, so the summary error stays in a narrow band.
        assert row["error"] <= exact["error"] / (1.0 - eps) * 1.25 + 1e-9
        assert row["memory-bytes"] <= exact["memory-bytes"] * 1.05
    # The coarsest kernel must show a real memory saving on this workload.
    assert series.rows[-1]["memory-bytes"] < 0.6 * exact["memory-bytes"]
