"""Load-SLO gate: boot a sharded cluster, drive hundreds of concurrent
clients with mixed append/query traffic, and fail on latency or
correctness regressions.

The CI ``load-slo`` job (and ``make load-slo``) runs::

    python benchmarks/bench_load.py --cluster-workers 3 --clients 200 \
        --json BENCH_LOAD.json

which:

1. boots a :class:`~repro.service.cluster.ClusterRouter` with N engine
   worker processes over a shared checkpoint directory;
2. drives ``--clients`` concurrent client threads (mixed JSON/binary
   transports, mixed methods, interleaved queries) through the front
   listener, recording per-operation wall-clock latency;
3. verifies every stream's final served histogram **bit-identically**
   against the serial ``summarize()`` oracle through the per-batch
   ledger (every acked batch present, in order -- zero acknowledged
   appends lost);
4. gates p50/p99 append and query latency against the SLO thresholds;
5. with ``--kill-worker``, SIGKILLs one worker mid-load and additionally
   requires that a survivor adopted its streams and that verification
   still passes (the zero-loss adoption guarantee, end to end).

The report lands in ``BENCH_LOAD.json`` (schema checked by
``benchmarks/validate_bench_json.py``) so runs stay machine-comparable
across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time

from repro.loadgen import LoadGenerator, verify_report
from repro.service import ClusterRouter, ServiceClient, StreamEngine, StreamServer

SCHEMA = "repro-bench-load/1"


def _pick_victim(router: ClusterRouter, generator: LoadGenerator) -> str:
    """The live worker owning the most load streams (maximum blast radius)."""
    counts = {name: 0 for name in router.workers()}
    for i in range(generator.clients):
        counts[router.owner_of(generator.stream_name(i))] += 1
    return max(counts, key=lambda name: counts[name])


def _schedule_kill(
    router: ClusterRouter, generator: LoadGenerator, at_fraction: float
) -> dict:
    """Arm a chaos thread: kill one worker partway through the load."""
    outcome = {"armed": True, "victim": None, "killed_at_batches": None}
    total = generator.clients * generator.batches_per_client
    threshold = max(1, int(total * at_fraction))

    def chaos() -> None:
        while generator.batches_done < threshold:
            time.sleep(0.01)
        victim = _pick_victim(router, generator)
        outcome["victim"] = victim
        outcome["killed_at_batches"] = generator.batches_done
        router.kill_worker(victim)

    thread = threading.Thread(target=chaos, name="chaos-kill", daemon=True)
    thread.start()
    outcome["thread"] = thread
    return outcome


def _check_slo(report_dict: dict, slos: dict) -> list:
    """Return a list of human-readable SLO violations (empty = pass)."""
    violations = []
    for key, limit in slos.items():
        if not limit:
            continue
        op, _, stat = key.partition("_")  # e.g. "append_p99_ms"
        observed = report_dict[op][f"{stat}_ms" if not stat.endswith("_ms") else stat]
        if observed > limit:
            violations.append(
                f"{op} {stat}: {observed:.1f} ms > SLO {limit:g} ms"
            )
    return violations


def run(args: argparse.Namespace) -> dict:
    """Execute one load run; returns the full report dict.

    Raises ``SystemExit`` on verification failure, SLO breach, or a
    failed kill/adoption expectation.
    """
    slos = {
        "append_p50_ms": args.slo_append_p50_ms,
        "append_p99_ms": args.slo_append_p99_ms,
        "query_p50_ms": args.slo_query_p50_ms,
        "query_p99_ms": args.slo_query_p99_ms,
    }
    timeline = {"started_unix": time.time()}
    report: dict = {
        "schema": SCHEMA,
        "mode": args.mode,
        "config": {
            "cluster_workers": args.cluster_workers,
            "clients": args.clients,
            "batches_per_client": args.batches,
            "batch_size": args.batch_size,
            "buckets": args.buckets,
            "universe": args.universe,
            "methods": args.methods.split(","),
            "kill_worker": args.kill_worker,
        },
        "slo": {k: v for k, v in slos.items()},
    }

    with tempfile.TemporaryDirectory(prefix="repro-load-") as state_dir:
        if args.mode == "cluster":
            service = ClusterRouter(
                state_dir,
                workers=args.cluster_workers,
                checkpoint_every=args.checkpoint_every,
                executor_workers=args.router_io_threads,
            ).start()
            port = service.port
        else:
            engine = StreamEngine(max_pending=10_000_000)
            service = StreamServer(
                engine, executor_workers=args.router_io_threads
            ).start_in_background()
            port = service.port
        try:
            generator = LoadGenerator(
                port=port,
                clients=args.clients,
                batches_per_client=args.batches,
                batch_size=args.batch_size,
                buckets=args.buckets,
                universe=args.universe,
                methods=args.methods.split(","),
            )
            chaos = None
            if args.kill_worker:
                if args.mode != "cluster":
                    raise SystemExit("--kill-worker requires --mode cluster")
                chaos = _schedule_kill(service, generator, args.kill_at)
            timeline["load_started_unix"] = time.time()
            load = generator.run()
            timeline["load_finished_unix"] = time.time()
            report["load"] = load.to_dict()

            # -- correctness: every stream vs the serial oracle ----------
            verification = verify_report(load, buckets=args.buckets)
            timeline["verified_unix"] = time.time()
            report["verification"] = {
                "streams_verified": len(verification),
                "ambiguous_batches": load.ambiguous_batches,
                "bit_identical": True,
            }

            # -- cluster bookkeeping (and the kill expectations) ---------
            if args.mode == "cluster":
                with ServiceClient(port=port) as client:
                    stats = client.stats().data
                report["cluster"] = stats["cluster"]
                if args.kill_worker:
                    chaos["thread"].join(timeout=10.0)
                    report["cluster"]["victim"] = chaos["victim"]
                    if stats["cluster"]["deaths"] != 1:
                        raise SystemExit(
                            "kill-worker run recorded "
                            f"{stats['cluster']['deaths']} deaths (expected 1)"
                        )
                    if not stats["cluster"]["adoptions"]:
                        raise SystemExit(
                            "worker was killed but no streams were adopted"
                        )
        finally:
            service.stop()
            if args.mode != "cluster":
                engine.close()

    report["timeline"] = timeline
    violations = _check_slo(report["load"], slos)
    report["slo_violations"] = violations
    report["generated_unix"] = time.time()
    if violations:
        for violation in violations:
            print(f"SLO VIOLATION: {violation}", file=sys.stderr)
        # Surface the measured latencies behind the violations in the job
        # log itself, so a CI gate failure is diagnosable without
        # downloading the artifact.
        print("offending report section:", file=sys.stderr)
        print(
            json.dumps(
                {"load": report["load"], "slo": report["slo"]},
                indent=2,
                sort_keys=True,
            ),
            file=sys.stderr,
        )
    return report


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("cluster", "single"), default="cluster")
    parser.add_argument("--cluster-workers", type=int, default=3)
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--buckets", type=int, default=16)
    parser.add_argument("--universe", type=int, default=4096)
    parser.add_argument("--methods", default="min-merge,min-increment")
    parser.add_argument("--checkpoint-every", type=int, default=2_000)
    parser.add_argument(
        "--router-io-threads",
        type=int,
        default=32,
        help="front-side executor threads (max in-flight backend requests)",
    )
    parser.add_argument(
        "--kill-worker",
        action="store_true",
        help="SIGKILL one worker mid-load and require zero-loss adoption",
    )
    parser.add_argument(
        "--kill-at",
        type=float,
        default=0.35,
        help="fraction of total batches after which the kill fires",
    )
    # Defaults calibrated on a 1-core container at 200 clients (observed
    # append p50 ~275 ms / p99 ~1.2 s) with ~4x headroom for shared CI
    # runners; override per-run with the flags or the LOAD_SLO_* Make vars.
    parser.add_argument("--slo-append-p50-ms", type=float, default=1_000.0)
    parser.add_argument("--slo-append-p99-ms", type=float, default=5_000.0)
    parser.add_argument("--slo-query-p50-ms", type=float, default=1_000.0)
    parser.add_argument("--slo-query-p99-ms", type=float, default=5_000.0)
    parser.add_argument(
        "--json", default=None, help="also write the report to this path"
    )
    args = parser.parse_args(argv)

    report = run(args)
    load = report["load"]
    print(
        f"{args.mode}: {load['clients']} clients x "
        f"{load['batches_per_client']} batches x {load['batch_size']} values "
        f"in {load['elapsed_seconds']:.2f} s "
        f"({load['throughput_items_per_second']:,.0f} items/s acked)"
    )
    for op in ("append", "query"):
        row = load[op]
        print(
            f"  {op:<7} n={row['count']:<6} p50={row['p50_ms']:.1f} ms  "
            f"p90={row['p90_ms']:.1f} ms  p99={row['p99_ms']:.1f} ms  "
            f"max={row['max_ms']:.1f} ms"
        )
    print(
        f"  verified {report['verification']['streams_verified']} streams "
        f"bit-identical to summarize() "
        f"({report['verification']['ambiguous_batches']} ambiguous batches)"
    )
    if "cluster" in report:
        cluster = report["cluster"]
        print(
            f"  cluster: workers={len(cluster['workers'])} "
            f"deaths={cluster['deaths']} "
            f"adoptions={len(cluster['adoptions'])} "
            f"handoffs={cluster['handoffs']}"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if report["slo_violations"]:
        return 1
    print(
        "  SLOs met: "
        + ", ".join(f"{k}<={v:g}" for k, v in report["slo"].items() if v)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
