"""Figure 8: running time as a function of the stream size n.

Paper setting: Brownian data, B = 32.  Expected shape: all algorithms
linear in n; MIN-MERGE and MIN-INCREMENT orders of magnitude faster than
REHIST.  (Absolute numbers are pure-Python; the paper's were C++.)
"""

from __future__ import annotations

from repro.harness.experiments import fig8_running_time


def test_fig8_running_time(benchmark, paper_scale, save_series):
    series = benchmark.pedantic(
        lambda: fig8_running_time(paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    text = save_series("fig8_running_time", series)
    print("\n" + text)
    rows = series.rows
    # Linear-ish growth: 2x the items should cost < 4x the time (generous
    # bounds; wall clocks are noisy).
    for prev, cur in zip(rows, rows[1:]):
        scale = cur["n"] / prev["n"]
        assert cur["min-merge"] < 6 * scale * max(prev["min-merge"], 1e-4)
    # REHIST is the slow one wherever it ran.
    for row in rows:
        if row["rehist"] is not None:
            assert row["rehist"] > row["min-merge"]
