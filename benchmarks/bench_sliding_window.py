"""Section 4.1 extension: sliding-window histograms (no paper figure).

Sweeps the window size at fixed B and eps, checking Theorem 5's promises:
at most B + 1 buckets, error within (1 + eps) of the window optimum, and
memory independent of the window size -- the headline improvement over the
Theta(w) of prior work.
"""

from __future__ import annotations

from repro.harness.experiments import sliding_window_experiment


def test_sliding_window_guarantees(benchmark, paper_scale, save_series):
    kwargs = (
        {"n": 16384, "windows": (512, 1024, 2048, 4096, 8192)}
        if paper_scale
        else {"n": 6000, "windows": (256, 512, 1024, 2048)}
    )
    series = benchmark.pedantic(
        lambda: sliding_window_experiment(buckets=32, **kwargs),
        rounds=1,
        iterations=1,
    )
    text = save_series("sliding_window", series)
    print("\n" + text)
    for row in series.rows:
        assert row["buckets-used"] <= 33
        assert row["error"] <= 1.2 * row["optimal"] + 1e-9
    memories = series.column("memory-bytes")
    # Memory flat in w: no Theta(w) term.
    assert max(memories) <= 2 * min(memories)
