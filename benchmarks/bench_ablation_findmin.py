"""Ablation: heap FINDMIN (Section 2.1.1) vs the paper's linear scan.

The paper proves O(log B) per-item updates with the merge-key heap but
ran its own experiments with the O(B) scan (footnote 4).  This ablation
quantifies the crossover: identical errors, diverging per-item cost as B
grows.
"""

from __future__ import annotations

import time

from repro.core.min_merge import MinMergeHistogram
from repro.data import brownian
from repro.harness.experiments import ExperimentSeries


def _sweep(values, bucket_sweep) -> ExperimentSeries:
    series = ExperimentSeries(
        name="ablation-findmin",
        title="Ablation: FINDMIN heap vs linear scan (seconds to ingest)",
        x="buckets",
        columns=["buckets", "heap-seconds", "linear-seconds",
                 "heap-error", "linear-error"],
    )
    for buckets in bucket_sweep:
        row = {"buckets": buckets}
        for mode, key in (("heap", "heap"), ("linear", "linear")):
            algo = MinMergeHistogram(buckets=buckets, findmin=mode)
            start = time.perf_counter()
            algo.extend(values)
            row[f"{key}-seconds"] = time.perf_counter() - start
            row[f"{key}-error"] = algo.error
        series.rows.append(row)
    return series


def test_findmin_ablation(benchmark, paper_scale, save_series):
    n = 16384 if paper_scale else 4096
    sweep = (16, 64, 256) if paper_scale else (16, 64, 128)
    values = brownian(n)
    series = benchmark.pedantic(
        lambda: _sweep(values, sweep), rounds=1, iterations=1
    )
    text = save_series("ablation_findmin", series)
    print("\n" + text)
    from repro.offline.optimal import optimal_error

    for row in series.rows:
        # Both variants satisfy the same (1, 2) guarantee.
        best = optimal_error(values, row["buckets"])
        assert row["heap-error"] <= best + 1e-9
        assert row["linear-error"] <= best + 1e-9
    # At the largest B the heap wins on time.
    last = series.rows[-1]
    assert last["heap-seconds"] < last["linear-seconds"]
