"""Extension: quantile sketches vs max-error histograms, head to head.

Mainstream libraries ship quantile sketches (GK, t-digest, KLL) but not
L-infinity streaming histograms; this benchmark shows why that is a gap
rather than a substitution.  At matched memory, each summary is asked two
questions on the Merced proxy:

* distribution: "what is the q-quantile of the values?" -- GK's home turf;
* time series: "reconstruct the series; how far off is the worst point?"
  -- the histogram's home turf, which a quantile sketch *cannot* answer
  (its best static reconstruction is a constant).

Expected shape: each summary wins its own question by a wide margin.
"""

from __future__ import annotations

import bisect

from repro.baselines.gk_quantile import GKQuantileSketch
from repro.core.min_merge import MinMergeHistogram
from repro.data.datasets import merced
from repro.harness.experiments import ExperimentSeries
from repro.metrics.errors import linf_error

QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def _quantile_rank_error(values, answers) -> float:
    """Worst rank error (fraction of n) across the query points."""
    ordered = sorted(values)
    n = len(values)
    worst = 0.0
    for q, answer in zip(QUANTILES, answers):
        lo = bisect.bisect_left(ordered, answer)
        hi = bisect.bisect_right(ordered, answer)
        target = q * n
        miss = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, miss / n)
    return worst


def _sweep(values) -> ExperimentSeries:
    series = ExperimentSeries(
        name="quantiles-vs-histogram",
        title="GK quantile sketch vs MIN-MERGE at matched memory (Merced)",
        x="memory-bytes",
        columns=[
            "memory-bytes", "gk-epsilon",
            "gk-rank-error", "hist-rank-error",
            "gk-series-linf", "hist-series-linf",
        ],
    )
    for buckets, epsilon in ((16, 0.05), (32, 0.02), (64, 0.01)):
        gk_epsilon = epsilon
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        sketch = GKQuantileSketch(epsilon)
        sketch.extend(values)

        hist = summary.histogram()
        approx = hist.reconstruct()
        # The sketch's only possible "series": a constant at the median.
        flat = [sketch.quantile(0.5)] * len(values)
        # The histogram's quantile answers: quantiles of its reconstruction.
        hist_answers = [
            sorted(approx)[int(q * (len(approx) - 1))] for q in QUANTILES
        ]
        series.rows.append(
            {
                "memory-bytes": summary.memory_bytes(),
                "gk-epsilon": gk_epsilon,
                "gk-rank-error": _quantile_rank_error(
                    values, sketch.quantiles(QUANTILES)
                ),
                "hist-rank-error": _quantile_rank_error(values, hist_answers),
                "gk-series-linf": linf_error(values, flat),
                "hist-series-linf": linf_error(values, approx),
            }
        )
    return series


def test_quantiles_vs_histogram(benchmark, paper_scale, save_series):
    n = 16384 if paper_scale else 4096
    values = merced(n)
    series = benchmark.pedantic(lambda: _sweep(values), rounds=1, iterations=1)
    text = save_series("quantiles_vs_histogram", series)
    print("\n" + text)
    for row in series.rows:
        # Each tool wins its own question: GK within its 2*eps rank bound
        # (query-side slack included), the histogram far ahead on the
        # series -- and, notably, far *behind* on ranks (skewed data makes
        # midpoint reconstructions poor value-distribution estimators).
        assert row["gk-rank-error"] <= 2.5 * row["gk-epsilon"]
        assert row["hist-series-linf"] < row["gk-series-linf"]
        assert row["gk-rank-error"] < row["hist-rank-error"]
