"""Per-item ingest throughput microbenchmarks (supports Figure 8).

Unlike the figure drivers (one-shot pedantic runs), these use
pytest-benchmark's repeated measurement to give stable per-item costs for
every streaming algorithm at the paper's B = 32 operating point.
"""

from __future__ import annotations

import pytest

from repro.data import brownian
from repro.harness.runner import make_algorithm

BUCKETS = 32
EPSILON = 0.2
UNIVERSE = 1 << 15

#: (name, stream length) -- slower algorithms get shorter streams so each
#: benchmark round stays subsecond.
CASES = [
    ("min-merge", 20_000),
    ("min-increment", 10_000),
    ("min-increment-batched", 20_000),
    ("rehist", 1_500),
    ("pwl-min-merge", 2_000),
    ("pwl-min-increment", 600),
    ("sliding-window", 2_000),
]


@pytest.fixture(scope="module")
def stream():
    return brownian(20_000)


@pytest.mark.parametrize("name,length", CASES, ids=[c[0] for c in CASES])
def test_ingest_throughput(benchmark, stream, name, length):
    values = stream[:length]

    def ingest():
        algo = make_algorithm(
            name,
            buckets=BUCKETS,
            epsilon=EPSILON,
            universe=UNIVERSE,
            window=length // 2,
        )
        algo.extend(values)
        return algo

    algo = benchmark(ingest)
    assert algo.items_seen == length
    benchmark.extra_info["items"] = length
    benchmark.extra_info["per_item_us"] = (
        benchmark.stats.stats.mean / length * 1e6
    )


def test_min_merge_heap_vs_linear_speed(benchmark):
    """The Section 2.1.1 heap matters once B is large (ablation teaser)."""
    values = brownian(5_000)

    def ingest_linear():
        from repro.core.min_merge import MinMergeHistogram

        algo = MinMergeHistogram(buckets=128, findmin="linear")
        algo.extend(values)
        return algo

    algo = benchmark(ingest_linear)
    assert algo.items_seen == 5_000
