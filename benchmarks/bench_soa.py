"""SoA kernel throughput: ``backend="soa"`` vs ``backend="object"``.

The structure-of-arrays kernels (``repro.core.soa``) promise bit-identical
MIN-MERGE maintenance with a several-times-faster per-item hot path: flat
columns instead of Bucket objects, a lazy-deletion ``heapq`` instead of the
addressable heap, and a zero-allocation tail-absorb fast path.  This file
*guards* the bit-identity on randomized streams first, then times both
backends on the same data:

* ``scalar`` -- per-item ``insert()`` loops, the path the SoA kernel
  exists to accelerate.  **Gated**: the acceptance target is a >= 5x
  speedup at the paper's n = 1e6 (CI smoke runs gate at >= 2x on the
  shorter stream, see ``make bench-smoke``).
* ``batch`` -- one vectorized ``extend(ndarray)`` call per backend.
  Reported, not gated: both backends share the numpy certificate math,
  so the gap is modest by design.
* ``pwl_scalar`` -- per-item PWL ingest at a small n.  Reported, not
  gated: hull maintenance dominates and is shared between backends.

Timings are best-of-N (default 3) after a warm-up pass, so one scheduler
hiccup cannot fail the gate.  On failure the offending report section is
printed as JSON so the CI log shows the numbers without downloading the
artifact::

    PYTHONPATH=src python benchmarks/bench_soa.py --smoke \
        --json BENCH_SOA.json --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.data import brownian

BUCKETS = 32
PWL_BUCKETS = 8

FULL_ITEMS = 1_000_000
SMOKE_ITEMS = 200_000
PWL_ITEMS = 8_000


def _make(backend: str):
    return MinMergeHistogram(buckets=BUCKETS, backend=backend)


def _make_pwl(backend: str):
    return PwlMinMergeHistogram(buckets=PWL_BUCKETS, backend=backend)


def _state(summary) -> tuple:
    return (
        summary.items_seen,
        tuple(repr(b) for b in summary.buckets_snapshot()),
        summary.error,
    )


def _equivalence_guard(seed: int = 0, items: int = 4_000) -> None:
    """Fail loudly if the backends diverge; timings would be meaningless."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 15, items)
    listed = data.tolist()

    scalar_obj, scalar_soa = _make("object"), _make("soa")
    for v in listed:
        scalar_obj.insert(v)
        scalar_soa.insert(v)
    batch_obj, batch_soa = _make("object"), _make("soa")
    batch_obj.extend(data)
    batch_soa.extend(data)
    states = {_state(s) for s in (scalar_obj, scalar_soa, batch_obj, batch_soa)}
    if len(states) != 1:
        raise AssertionError(
            f"soa backend diverged from object backend on a randomized "
            f"stream (seed {seed}); the kernels are supposed to be "
            "bit-identical"
        )

    pwl_obj, pwl_soa = _make_pwl("object"), _make_pwl("soa")
    for v in listed[:1_000]:
        pwl_obj.insert(v)
        pwl_soa.insert(v)
    if _state(pwl_obj) != _state(pwl_soa):
        raise AssertionError(
            f"pwl soa backend diverged from object backend (seed {seed})"
        )


def _time_scalar(factory, backend: str, values: list) -> float:
    summary = factory(backend)
    insert = summary.insert
    start = time.perf_counter()
    for v in values:
        insert(v)
    elapsed = time.perf_counter() - start
    assert summary.items_seen == len(values)
    return elapsed


def _time_batch(backend: str, arr: np.ndarray) -> float:
    summary = _make(backend)
    start = time.perf_counter()
    summary.extend(arr)
    elapsed = time.perf_counter() - start
    assert summary.items_seen == len(arr)
    return elapsed


def _best_of(runs: int, fn, *args) -> float:
    """Minimum of ``runs`` timings after one warm-up call."""
    fn(*args)
    return min(fn(*args) for _ in range(runs))


def _section(items: int, object_s: float, soa_s: float, gated: bool) -> dict:
    return {
        "items": items,
        "object_ns_per_item": object_s / items * 1e9,
        "soa_ns_per_item": soa_s / items * 1e9,
        "object_items_per_sec": items / object_s,
        "soa_items_per_sec": items / soa_s,
        "speedup": object_s / soa_s,
        "gated": gated,
    }


def _print_row(name: str, row: dict, ok: bool) -> None:
    print(
        f"{name:<12} object {row['object_ns_per_item']:8.0f} ns/item   "
        f"soa {row['soa_ns_per_item']:8.0f} ns/item   "
        f"speedup {row['speedup']:6.2f}x   "
        f"{'ok' if ok else 'FAIL'}{'' if row['gated'] else ' (ungated)'}"
    )


def _fail_section(name: str, section: dict) -> None:
    print(f"gate failure in report section {name!r}:", file=sys.stderr)
    print(
        json.dumps({name: section}, indent=2, sort_keys=True), file=sys.stderr
    )


def run(
    items: int, min_speedup: float, best_of: int, json_path: Path | None
) -> int:
    _equivalence_guard()
    print(f"soa vs object kernel, brownian n={items} (best of {best_of})")
    values = brownian(items)
    arr = np.asarray(values)

    report = {
        "benchmark": "soa_kernel",
        "items": items,
        "min_speedup": min_speedup,
        "best_of": best_of,
    }
    failures = 0

    object_s = _best_of(best_of, _time_scalar, _make, "object", values)
    soa_s = _best_of(best_of, _time_scalar, _make, "soa", values)
    scalar = _section(items, object_s, soa_s, gated=True)
    report["scalar"] = scalar
    ok = scalar["speedup"] >= min_speedup
    _print_row("scalar", scalar, ok)
    if not ok:
        failures += 1
        _fail_section("scalar", scalar)

    object_s = _best_of(best_of, _time_batch, "object", arr)
    soa_s = _best_of(best_of, _time_batch, "soa", arr)
    batch = _section(items, object_s, soa_s, gated=False)
    report["batch"] = batch
    _print_row("batch", batch, ok=True)

    pwl_values = values[:PWL_ITEMS]
    object_s = _best_of(best_of, _time_scalar, _make_pwl, "object", pwl_values)
    soa_s = _best_of(best_of, _time_scalar, _make_pwl, "soa", pwl_values)
    pwl = _section(len(pwl_values), object_s, soa_s, gated=False)
    report["pwl_scalar"] = pwl
    _print_row("pwl_scalar", pwl, ok=True)

    if json_path is not None:
        json_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {json_path}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"use the small CI stream (n={SMOKE_ITEMS}) instead of n={FULL_ITEMS}",
    )
    parser.add_argument(
        "--items", type=int, default=None, help="override the stream length"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail if the gated scalar speedup is below this",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        default=3,
        help="timed repetitions per backend (minimum wins)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the report to this path"
    )
    args = parser.parse_args()
    items = args.items or (SMOKE_ITEMS if args.smoke else FULL_ITEMS)
    return run(items, args.min_speedup, args.best_of, args.json)


if __name__ == "__main__":
    raise SystemExit(main())
