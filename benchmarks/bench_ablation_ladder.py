"""Ablation: the exact 0 / 0.5 ladder levels (DESIGN.md item 5).

The paper's ladder starts at 1; this library prepends exact levels 0 and
1/2 so that small optima keep the (1 + eps) factor.  The ablation runs
MIN-INCREMENT with and without the exact levels on a workload engineered
to have small per-window optima (long plateaus with unit jitter), and on
a generic random walk where the levels are irrelevant.
"""

from __future__ import annotations

from repro.core.min_increment import MinIncrementHistogram
from repro.data import brownian
from repro.data.generators import step_function
from repro.data.quantize import quantize_to_universe
from repro.harness.experiments import ExperimentSeries
from repro.offline.optimal import optimal_error

UNIVERSE = 1 << 15
EPSILON = 0.2


def _run(values, buckets, include_zero):
    algo = MinIncrementHistogram(
        buckets=buckets, epsilon=EPSILON, universe=UNIVERSE,
        include_zero_level=include_zero,
    )
    algo.extend(values)
    return algo


def _sweep() -> ExperimentSeries:
    plateaus = step_function(4096, seed=3, steps=24, low=0, high=100)
    # Quantize plateaus coarsely so the optimal 32-bucket error is tiny.
    plateau_values = quantize_to_universe(plateaus, 64)
    walk_values = brownian(4096)
    series = ExperimentSeries(
        name="ablation-ladder",
        title="Ablation: exact 0/0.5 ladder levels (B=32, eps=0.2)",
        x="workload",
        columns=["workload", "optimal", "with-exact-levels", "paper-ladder"],
    )
    for name, values in (("plateaus", plateau_values), ("brownian", walk_values)):
        series.rows.append(
            {
                "workload": name,
                "optimal": optimal_error(values, 32),
                "with-exact-levels": _run(values, 32, True).error,
                "paper-ladder": _run(values, 32, False).error,
            }
        )
    return series


def test_ladder_ablation(benchmark, save_series):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = save_series("ablation_ladder", series)
    print("\n" + text)
    plateaus, walk = series.rows
    # On plateau data the optimum is 0; only the exact levels reach it.
    assert plateaus["optimal"] == 0.0
    assert plateaus["with-exact-levels"] == 0.0
    assert plateaus["paper-ladder"] >= 0.5
    # On generic data both ladders answer identically (within a level).
    assert walk["with-exact-levels"] <= walk["paper-ladder"] + 1e-9
    assert walk["paper-ladder"] <= 1.2 * walk["optimal"] + 1e-9
