"""Figure 5: memory usage as a function of the histogram size B.

Paper setting: 16384 points from Dow-Jones, Merced and Brownian;
B in [16, 128]; eps = 0.2.  Expected shape: MIN-MERGE and MIN-INCREMENT
grow ~linearly in B and sit two or more orders of magnitude below REHIST,
whose breakpoint tables grow ~B^2.
"""

from __future__ import annotations

from repro.harness.experiments import fig5_memory_vs_buckets


def test_fig5_memory_vs_buckets(benchmark, paper_scale, save_series):
    series = benchmark.pedantic(
        lambda: fig5_memory_vs_buckets(paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    text = save_series("fig5_memory_vs_b", series)
    print("\n" + text)
    for one in series:
        for row in one.rows:
            ours = max(row["min-merge"], row["min-increment"])
            assert row["rehist"] > 3 * ours, (one.name, row)
        first, last = one.rows[0], one.rows[-1]
        growth = last["buckets"] / first["buckets"]
        # MIN-MERGE is ~linear in B.
        assert last["min-merge"] <= 1.5 * growth * first["min-merge"]
