"""Extension: fleet scaling -- thousands of streams, StatStream-style.

The paper's motivation says "concurrently computing the histograms for
thousands of data streams requires that the histogram algorithm be highly
frugal in its space usage".  This benchmark measures exactly that: total
memory and ingest throughput of a :class:`StreamFleet` as the stream count
grows, at the paper's B = 32 operating point.

Expected shape: memory exactly linear in stream count at ~1.5 KB per
stream (the raw data would be 4 bytes x ticks x streams), throughput
linear too.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fleet import StreamFleet
from repro.harness.experiments import ExperimentSeries

TICKS = 512
BUCKETS = 32


def _sweep(stream_counts) -> ExperimentSeries:
    series = ExperimentSeries(
        name="fleet-scaling",
        title=f"Fleet scaling: B={BUCKETS}, {TICKS} ticks per stream",
        x="streams",
        columns=[
            "streams", "memory-bytes", "bytes-per-stream",
            "seconds", "values-per-second",
        ],
    )
    rng = np.random.default_rng(17)
    for count in stream_counts:
        data = np.abs(
            np.cumsum(rng.normal(0, 10.0, size=(count, TICKS)), axis=1)
        ).astype(np.int64) % (1 << 15)
        fleet = StreamFleet(buckets=BUCKETS)
        start = time.perf_counter()
        for sid in range(count):
            fleet.extend(sid, data[sid].tolist())
        elapsed = time.perf_counter() - start
        total = fleet.total_memory_bytes()
        series.rows.append(
            {
                "streams": count,
                "memory-bytes": total,
                "bytes-per-stream": total / count,
                "seconds": elapsed,
                "values-per-second": count * TICKS / elapsed,
            }
        )
    return series


def test_fleet_scaling(benchmark, paper_scale, save_series):
    counts = (64, 256, 1024) if paper_scale else (32, 128, 512)
    series = benchmark.pedantic(
        lambda: _sweep(counts), rounds=1, iterations=1
    )
    text = save_series("fleet_scaling", series)
    print("\n" + text)
    per_stream = series.column("bytes-per-stream")
    # Memory per stream is constant (no cross-stream or per-n growth)...
    assert max(per_stream) == min(per_stream)
    # ...and tiny next to the raw data (4 bytes per value).
    assert per_stream[0] < TICKS * 4
