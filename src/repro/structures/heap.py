"""An addressable binary min-heap.

MIN-MERGE (Section 2.1.1 of the paper) keeps one key per adjacent bucket
pair -- the error the histogram would incur if that pair were merged -- and
repeatedly extracts the minimum.  After a merge, the keys of the neighbouring
pairs change, so the heap must support *updating and removing arbitrary
entries by handle*, not just push/pop.  The standard library ``heapq`` only
offers lazy deletion, which lets the heap grow beyond ``O(B)`` and would
spoil the memory accounting, so this module implements a classic
position-tracked binary heap:

* ``push(key, item) -> handle`` in O(log n),
* ``pop_min() -> (key, item)`` in O(log n),
* ``update(handle, new_key)`` in O(log n),
* ``remove(handle)`` in O(log n),
* ``peek_min()`` and ``__len__`` in O(1).

Handles are small integer ids; using a stale handle (one already popped or
removed) raises ``KeyError``.
"""

from __future__ import annotations

from typing import Any, Iterator

_KEEP = object()  # sentinel: update() leaves the item payload untouched


class AddressableMinHeap:
    """Binary min-heap with O(log n) update/remove by handle."""

    def __init__(self) -> None:
        # Parallel arrays: _keys[i] / _items[i] / _handles[i] describe the
        # entry at heap slot i.  _slot_of maps handle -> current slot.
        self._keys: list[Any] = []
        self._items: list[Any] = []
        self._handles: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._next_handle = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, handle: int) -> bool:
        return handle in self._slot_of

    def push(self, key, item=None) -> int:
        """Insert ``(key, item)`` and return a handle for later updates."""
        handle = self._next_handle
        self._next_handle += 1
        slot = len(self._keys)
        self._keys.append(key)
        self._items.append(item)
        self._handles.append(handle)
        self._slot_of[handle] = slot
        self._sift_up(slot)
        return handle

    def peek_min(self) -> tuple:
        """Return ``(key, item)`` of the minimum entry without removing it."""
        if not self._keys:
            raise IndexError("peek_min on empty heap")
        return self._keys[0], self._items[0]

    def peek_min_handle(self) -> int:
        """Return the handle of the minimum entry without removing it."""
        if not self._keys:
            raise IndexError("peek_min_handle on empty heap")
        return self._handles[0]

    def pop_min(self) -> tuple:
        """Remove and return ``(key, item)`` of the minimum entry."""
        if not self._keys:
            raise IndexError("pop_min on empty heap")
        key, item = self._keys[0], self._items[0]
        self._delete_slot(0)
        return key, item

    def key_of(self, handle: int) -> Any:
        """Current key of the entry identified by ``handle``."""
        return self._keys[self._slot_of[handle]]

    def item_of(self, handle: int) -> Any:
        """Item payload of the entry identified by ``handle``."""
        return self._items[self._slot_of[handle]]

    def update(self, handle: int, new_key, item=_KEEP) -> None:
        """Change the key of an existing entry (any direction), in place.

        One sift replaces the remove + push pair a naive caller would
        issue -- half the comparisons, no handle churn.  Pass ``item`` to
        atomically repoint the entry's payload as well (MIN-MERGE reuses
        a dying pair's entry for the pair that replaces it).
        """
        slot = self._slot_of[handle]
        old_key = self._keys[slot]
        self._keys[slot] = new_key
        if item is not _KEEP:
            self._items[slot] = item
        if new_key < old_key:
            self._sift_up(slot)
        elif new_key > old_key:
            self._sift_down(slot)

    def remove(self, handle: int) -> tuple:
        """Remove the entry identified by ``handle``; return ``(key, item)``."""
        slot = self._slot_of[handle]
        key, item = self._keys[slot], self._items[slot]
        self._delete_slot(slot)
        return key, item

    def items(self) -> Iterator[tuple]:
        """Iterate over ``(key, item)`` pairs in arbitrary (heap) order."""
        return iter(zip(self._keys, self._items))

    def check_invariant(self) -> None:
        """Assert the heap ordering and handle maps are consistent (tests)."""
        n = len(self._keys)
        for i in range(1, n):
            parent = (i - 1) >> 1
            if self._keys[parent] > self._keys[i]:
                raise AssertionError(
                    f"heap order violated at slot {i}: "
                    f"{self._keys[parent]!r} > {self._keys[i]!r}"
                )
        if len(self._slot_of) != n:
            raise AssertionError("handle map size mismatch")
        for handle, slot in self._slot_of.items():
            if self._handles[slot] != handle:
                raise AssertionError(f"handle {handle} maps to wrong slot")

    # -- internal helpers ------------------------------------------------

    def _delete_slot(self, slot: int) -> None:
        last = len(self._keys) - 1
        del self._slot_of[self._handles[slot]]
        if slot != last:
            self._move(last, slot)
            self._keys.pop()
            self._items.pop()
            self._handles.pop()
            # The moved entry may need to travel either way.
            self._sift_up(slot)
            self._sift_down(slot)
        else:
            self._keys.pop()
            self._items.pop()
            self._handles.pop()

    def _move(self, src: int, dst: int) -> None:
        self._keys[dst] = self._keys[src]
        self._items[dst] = self._items[src]
        self._handles[dst] = self._handles[src]
        self._slot_of[self._handles[dst]] = dst

    def _sift_up(self, slot: int) -> None:
        keys, items, handles = self._keys, self._items, self._handles
        key, item, handle = keys[slot], items[slot], handles[slot]
        while slot > 0:
            parent = (slot - 1) >> 1
            if keys[parent] <= key:
                break
            keys[slot] = keys[parent]
            items[slot] = items[parent]
            handles[slot] = handles[parent]
            self._slot_of[handles[slot]] = slot
            slot = parent
        keys[slot], items[slot], handles[slot] = key, item, handle
        self._slot_of[handle] = slot

    def _sift_down(self, slot: int) -> None:
        keys, items, handles = self._keys, self._items, self._handles
        n = len(keys)
        key, item, handle = keys[slot], items[slot], handles[slot]
        while True:
            child = 2 * slot + 1
            if child >= n:
                break
            right = child + 1
            if right < n and keys[right] < keys[child]:
                child = right
            if keys[child] >= key:
                break
            keys[slot] = keys[child]
            items[slot] = items[child]
            handles[slot] = handles[child]
            self._slot_of[handles[slot]] = slot
            slot = child
        keys[slot], items[slot], handles[slot] = key, item, handle
        self._slot_of[handle] = slot
