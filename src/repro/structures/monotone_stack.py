"""Monotone record stacks for suffix min/max queries on a growing stream.

The REHIST baseline repeatedly needs the interval error
``err(b+1..n) = (max - min) / 2`` of a *suffix* of the stream for many
candidate breakpoints ``b`` while the stream keeps growing at the right end.
A classic structure answers this: keep the positions that are
left-to-right maxima *of the suffix order* -- i.e. positions ``p`` whose
value strictly exceeds every later value.  Appending a new value pops all
dominated tail records (amortized O(1)); the maximum over ``[p, n]`` is the
value of the first record at position ``>= p`` (binary search, O(log s)
where ``s`` is the current stack size).

The stack size is data dependent: O(log n) expected for i.i.d. values,
O(sqrt(n)) expected for a random walk, n in the worst case (a monotone
stream).  REHIST's memory accounting includes the actual stack size.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence


class SuffixExtremaStack:
    """Record stack answering max (or min) over ``[p, n]`` for any ``p``.

    Parameters
    ----------
    mode:
        ``"max"`` keeps suffix maxima records, ``"min"`` suffix minima.
    """

    def __init__(self, mode: str = "max"):
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self._keep_greater = mode == "max"
        self._positions: list[int] = []
        self._values: list = []
        self._count = 0  # number of stream items appended so far

    def __len__(self) -> int:
        """Number of records currently stored (not stream length)."""
        return len(self._positions)

    @property
    def stream_length(self) -> int:
        """Number of values appended so far."""
        return self._count

    def append(self, value) -> None:
        """Append the next stream value (position = current stream length)."""
        values = self._values
        if self._keep_greater:
            while values and values[-1] <= value:
                values.pop()
                self._positions.pop()
        else:
            while values and values[-1] >= value:
                values.pop()
                self._positions.pop()
        self._positions.append(self._count)
        values.append(value)
        self._count += 1

    def query(self, start: int):
        """Extreme value over stream positions ``[start, n-1]`` (0-based).

        ``start`` must satisfy ``0 <= start < stream_length``.
        """
        if not 0 <= start < self._count:
            raise IndexError(
                f"start {start} out of range for stream of length {self._count}"
            )
        # Records are stored with strictly increasing positions and (for
        # 'max') strictly decreasing values.  The answer is the first record
        # at position >= start.
        idx = bisect_left(self._positions, start)
        return self._values[idx]

    def check_invariant(self) -> None:
        """Assert positional and value monotonicity (tests)."""
        for i in range(1, len(self._positions)):
            if self._positions[i] <= self._positions[i - 1]:
                raise AssertionError("record positions not increasing")
            if self._keep_greater and self._values[i] >= self._values[i - 1]:
                raise AssertionError("suffix-max values not decreasing")
            if not self._keep_greater and self._values[i] <= self._values[i - 1]:
                raise AssertionError("suffix-min values not increasing")


class SuffixWindow:
    """Paired suffix-max and suffix-min stacks exposing interval errors.

    ``interval_error(start)`` returns the optimal single-bucket L-infinity
    error ``(max - min) / 2`` of the stream suffix beginning at ``start``,
    which is what the REHIST transition ``max(E_{k-1}(b), err(b+1..n))``
    consumes.
    """

    def __init__(self) -> None:
        self._maxima = SuffixExtremaStack("max")
        self._minima = SuffixExtremaStack("min")

    def __len__(self) -> int:
        """Total records across both stacks (for memory accounting)."""
        return len(self._maxima) + len(self._minima)

    @property
    def stream_length(self) -> int:
        """Number of values appended so far."""
        return self._maxima.stream_length

    def append(self, value) -> None:
        """Append the next stream value to both stacks."""
        self._maxima.append(value)
        self._minima.append(value)

    def suffix_max(self, start: int):
        """Maximum over stream positions ``[start, n-1]``."""
        return self._maxima.query(start)

    def suffix_min(self, start: int):
        """Minimum over stream positions ``[start, n-1]``."""
        return self._minima.query(start)

    def interval_error(self, start: int) -> float:
        """L-infinity error of one bucket covering positions [start, n-1]."""
        return (self._maxima.query(start) - self._minima.query(start)) / 2.0


def brute_force_suffix_extreme(values: Sequence, start: int, mode: str):
    """Reference implementation used by the tests."""
    window = values[start:]
    return max(window) if mode == "max" else min(window)
