"""Doubly-linked list of histogram buckets.

MIN-MERGE merges *adjacent* buckets, so the summary needs a sequence with
O(1) neighbour access, O(1) splice-out of a merged pair, and O(1) append at
the tail.  A Python ``list`` gives O(B) deletions; this intrusive linked
list keeps every operation constant time and pairs each node with the heap
handle of the merge key for the pair (node, node.next).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class BucketNode:
    """A linked-list node carrying one bucket and its pair-merge heap handle.

    ``pair_handle`` is the addressable-heap handle of the key for merging
    this node's bucket with its successor's; it is ``None`` for the tail
    node (which has no successor) and managed by the MIN-MERGE summary.
    """

    __slots__ = ("bucket", "prev", "next", "pair_handle")

    def __init__(self, bucket: Any):
        self.bucket = bucket
        self.prev: Optional[BucketNode] = None
        self.next: Optional[BucketNode] = None
        self.pair_handle: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BucketNode({self.bucket!r})"


class BucketList:
    """Doubly-linked list with O(1) append, remove, and length."""

    def __init__(self) -> None:
        self.head: Optional[BucketNode] = None
        self.tail: Optional[BucketNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[BucketNode]:
        node = self.head
        while node is not None:
            yield node
            node = node.next

    def append(self, bucket: Any) -> BucketNode:
        """Append a new node holding ``bucket``; return the node."""
        node = BucketNode(bucket)
        if self.tail is None:
            self.head = self.tail = node
        else:
            node.prev = self.tail
            self.tail.next = node
            self.tail = node
        self._size += 1
        return node

    def remove(self, node: BucketNode) -> None:
        """Unlink ``node`` from the list in O(1)."""
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        self._size -= 1

    def popleft(self) -> BucketNode:
        """Remove and return the head node."""
        if self.head is None:
            raise IndexError("popleft on empty BucketList")
        node = self.head
        self.remove(node)
        return node

    def buckets(self) -> list:
        """Snapshot of the bucket payloads in order."""
        return [node.bucket for node in self]
