"""Supporting data structures: addressable heap, linked list, record stacks."""

from repro.structures.heap import AddressableMinHeap
from repro.structures.linked_list import BucketList, BucketNode
from repro.structures.monotone_stack import SuffixExtremaStack, SuffixWindow

__all__ = [
    "AddressableMinHeap",
    "BucketList",
    "BucketNode",
    "SuffixExtremaStack",
    "SuffixWindow",
]
