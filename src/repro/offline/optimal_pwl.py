"""Offline (near-)optimal piecewise-linear histograms.

An extension beyond the paper's explicit pseudo-code: the GREEDY-INSERT
duality works verbatim for PWL buckets because the bucket error (half the
hull's vertical width) is monotone under point insertion -- the hull only
grows.  So ``min_pwl_buckets_for_error`` is one greedy scan with an exact
streaming hull, and the optimal error for ``B`` buckets is found by binary
search.

PWL errors are not confined to a half-integer grid, so the search bisects
reals to a caller-chosen tolerance and then reports the *realized* error of
the greedy partition at the feasible bracket end; the result is feasible
(uses at most ``B`` buckets) and within ``tol`` of the true optimum.  The
benchmark of Figure 9 only needs the streaming PWL algorithms, but this
offline reference is what the tests validate them against.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.histogram import Histogram
from repro.core.pwl_bucket import PwlBucket
from repro.exceptions import InvalidParameterError


def min_pwl_buckets_for_error(values: Sequence, error: float) -> int:
    """Minimum PWL buckets covering ``values`` within line-fit ``error``."""
    if error < 0:
        raise InvalidParameterError(f"error must be >= 0, got {error}")
    n = len(values)
    if n == 0:
        return 0
    count = 1
    bucket = PwlBucket(0, values[0])
    for i in range(1, n):
        if not bucket.try_add(values[i], error):
            count += 1
            bucket = PwlBucket(i, values[i])
    return count


def optimal_pwl_error(
    values: Sequence, buckets: int, *, tol: float = 1e-6
) -> float:
    """Error of the (near-)optimal ``buckets``-bucket PWL histogram.

    The result ``e`` satisfies ``e_opt <= e <= e_opt + tol`` and is always
    *achievable* with at most ``buckets`` buckets.
    """
    _validate(values, buckets, tol)
    if buckets >= (len(values) + 1) // 2:
        # Two points always fit a line exactly, so ceil(n/2) buckets
        # suffice for zero error.
        return 0.0
    high = (max(values) - min(values)) / 2.0
    if high == 0.0 or min_pwl_buckets_for_error(values, 0.0) <= buckets:
        return 0.0
    lo = 0.0
    while high - lo > tol:
        mid = (lo + high) / 2.0
        if min_pwl_buckets_for_error(values, mid) <= buckets:
            high = mid
        else:
            lo = mid
    return _realized_pwl_error(values, high)


def optimal_pwl_histogram(
    values: Sequence, buckets: int, *, tol: float = 1e-6
) -> Histogram:
    """The (near-)optimal PWL histogram (greedy at the searched error)."""
    _validate(values, buckets, tol)
    target = optimal_pwl_error(values, buckets, tol=tol)
    segments = []
    worst = 0.0
    bucket = PwlBucket(0, values[0])
    for i in range(1, len(values)):
        if not bucket.try_add(values[i], target):
            segments.append(bucket.segment())
            if bucket.error > worst:
                worst = bucket.error
            bucket = PwlBucket(i, values[i])
    segments.append(bucket.segment())
    if bucket.error > worst:
        worst = bucket.error
    return Histogram(segments, worst)


def _realized_pwl_error(values: Sequence, error: float) -> float:
    """Max realized bucket error of the greedy PWL partition at ``error``."""
    worst = 0.0
    bucket = PwlBucket(0, values[0])
    for i in range(1, len(values)):
        if not bucket.try_add(values[i], error):
            if bucket.error > worst:
                worst = bucket.error
            bucket = PwlBucket(i, values[i])
    if bucket.error > worst:
        worst = bucket.error
    return worst


def _validate(values: Sequence, buckets: int, tol: float) -> None:
    if buckets < 1:
        raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
    if len(values) == 0:
        raise InvalidParameterError("cannot build a histogram of no values")
    if tol <= 0:
        raise InvalidParameterError(f"tol must be positive, got {tol}")
