"""Exact offline optimal L-infinity histograms (the OPTIMAL baseline).

Section 4.2 / Theorem 6 observe that GREEDY-INSERT turns the offline
problem into a one-dimensional search: the minimum number of buckets needed
for a target error ``e`` is computed by one greedy O(n) scan, it is
monotone non-increasing in ``e``, and for integer-valued streams every
achievable error is a half-integer in ``[0, (max - min) / 2]``.  Binary
searching that grid therefore finds the *exact* optimum with O(log U)
greedy passes -- ``O(n log U)`` total, the near-linear bound of Theorem 6
-- and O(n) space (the input itself).

For non-integer data the grid argument fails; :func:`optimal_error` then
falls back to a real-valued binary search over the hull of candidate
half-range values (all achievable errors are of the form
``(max_I - min_I) / 2`` over intervals ``I``), which is still exact because
the feasibility predicate is a step function jumping only at candidates --
we shrink the bracket until it contains a single candidate, identified with
one extra scan.

``optimal_error_dp`` is the classic O(n^2 B) interval dynamic program of
Jagadish et al. [17]; it exists as the independently-coded reference the
test suite cross-validates against.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.histogram import Histogram, Segment
from repro.exceptions import InvalidParameterError


def min_buckets_for_error(values: Sequence, error: float) -> int:
    """Minimum buckets covering ``values`` within half-range ``error``.

    One greedy left-to-right scan (Lemma 2 proves greedy is optimal).
    Returns 0 for an empty sequence.
    """
    if error < 0:
        raise InvalidParameterError(f"error must be >= 0, got {error}")
    n = len(values)
    if n == 0:
        return 0
    threshold = 2.0 * error  # compare ranges, avoiding repeated division
    count = 1
    lo = hi = values[0]
    for i in range(1, n):
        v = values[i]
        new_lo = v if v < lo else lo
        new_hi = v if v > hi else hi
        if new_hi - new_lo > threshold:
            count += 1
            lo = hi = v
        else:
            lo, hi = new_lo, new_hi
    return count


def optimal_error(values: Sequence, buckets: int) -> float:
    """Error of the optimal ``buckets``-bucket L-infinity histogram.

    Exact.  Integer-valued inputs use the half-integer grid (Theorem 6);
    other inputs use the candidate-bracketing search described in the
    module docs.
    """
    _validate(values, buckets)
    if buckets >= len(values):
        return 0.0
    hi = (max(values) - min(values)) / 2.0
    if hi == 0.0:
        return 0.0
    if all(float(v).is_integer() for v in values):
        return _grid_search(values, buckets, hi)
    return _candidate_search(values, buckets, hi)


def optimal_histogram(values: Sequence, buckets: int) -> Histogram:
    """The optimal ``buckets``-bucket histogram itself.

    Built by running the greedy partition at the optimal error; by Lemma 2
    it uses at most ``buckets`` buckets, and its realized error equals the
    optimum.
    """
    _validate(values, buckets)
    target = optimal_error(values, buckets)
    threshold = 2.0 * target
    segments: list[Segment] = []
    worst = 0.0
    beg = 0
    lo = hi = values[0]
    for i in range(1, len(values)):
        v = values[i]
        new_lo = v if v < lo else lo
        new_hi = v if v > hi else hi
        if new_hi - new_lo > threshold:
            rep = (lo + hi) / 2.0
            segments.append(Segment(beg, i - 1, rep, rep))
            if (hi - lo) / 2.0 > worst:
                worst = (hi - lo) / 2.0
            beg = i
            lo = hi = v
        else:
            lo, hi = new_lo, new_hi
    rep = (lo + hi) / 2.0
    segments.append(Segment(beg, len(values) - 1, rep, rep))
    if (hi - lo) / 2.0 > worst:
        worst = (hi - lo) / 2.0
    return Histogram(segments, worst)


def optimal_error_dp(values: Sequence, buckets: int) -> float:
    """Reference O(n^2 B) dynamic program (Jagadish et al. [17]).

    ``E[k][j]`` = optimal error of the length-``j`` prefix with ``k``
    buckets; transition splits off the last bucket.  Interval errors come
    from running min/max while the split point walks left.  Only suitable
    for small ``n`` -- the tests use it to validate :func:`optimal_error`.
    """
    _validate(values, buckets)
    n = len(values)
    if buckets >= n:
        return 0.0
    inf = float("inf")
    # prev[j] = optimal error of prefix of length j with (k-1) buckets.
    prev = [inf] * (n + 1)
    prev[0] = 0.0
    # One bucket: prefix error is the running half-range.
    lo = hi = values[0]
    prev[1] = 0.0
    for j in range(2, n + 1):
        v = values[j - 1]
        lo = v if v < lo else lo
        hi = v if v > hi else hi
        prev[j] = (hi - lo) / 2.0
    for _k in range(2, buckets + 1):
        cur = [inf] * (n + 1)
        cur[0] = 0.0
        for j in range(1, n + 1):
            best = inf
            lo = hi = values[j - 1]
            # Last bucket covers values[i..j-1]; walk i from j-1 down to 0.
            for i in range(j - 1, -1, -1):
                v = values[i]
                lo = v if v < lo else lo
                hi = v if v > hi else hi
                if prev[i] is not inf:
                    candidate = prev[i]
                    interval = (hi - lo) / 2.0
                    if interval > candidate:
                        candidate = interval
                    if candidate < best:
                        best = candidate
                if (hi - lo) / 2.0 >= best:
                    # Interval error only grows leftwards; no better split.
                    break
            cur[j] = best
        prev = cur
    return prev[n]


# -- internals -----------------------------------------------------------------


def _validate(values: Sequence, buckets: int) -> None:
    if buckets < 1:
        raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
    if len(values) == 0:
        raise InvalidParameterError("cannot build a histogram of no values")


def _grid_search(values: Sequence, buckets: int, hi: float) -> float:
    """Binary search over the half-integer error grid (integer inputs)."""
    # Work in units of 1/2: achievable errors are k / 2 for integer k.
    lo_steps = 0
    hi_steps = int(round(hi * 2))
    while lo_steps < hi_steps:
        mid = (lo_steps + hi_steps) // 2
        if min_buckets_for_error(values, mid / 2.0) <= buckets:
            hi_steps = mid
        else:
            lo_steps = mid + 1
    return lo_steps / 2.0


def _candidate_search(values: Sequence, buckets: int, hi: float) -> float:
    """Real-valued bracketing for non-integer inputs (still exact).

    Shrinks a feasible/infeasible bracket by bisection, then snaps the
    feasible end down to the largest *achievable* error not above it --
    the realized error of the greedy partition at that level -- which is
    the optimum once the bracket is tighter than the candidate spacing.
    """
    lo, high = 0.0, hi
    if min_buckets_for_error(values, 0.0) <= buckets:
        return 0.0
    for _ in range(128):  # ~2^-128 relative bracket; far below float ulp
        mid = (lo + high) / 2.0
        if mid == lo or mid == high:
            break
        if min_buckets_for_error(values, mid) <= buckets:
            high = mid
        else:
            lo = mid
    return _realized_greedy_error(values, high)


def _realized_greedy_error(values: Sequence, error: float) -> float:
    """Actual max bucket half-range of the greedy partition at ``error``."""
    threshold = 2.0 * error
    worst = 0.0
    lo = hi = values[0]
    for i in range(1, len(values)):
        v = values[i]
        new_lo = v if v < lo else lo
        new_hi = v if v > hi else hi
        if new_hi - new_lo > threshold:
            if (hi - lo) / 2.0 > worst:
                worst = (hi - lo) / 2.0
            lo = hi = v
        else:
            lo, hi = new_lo, new_hi
    if (hi - lo) / 2.0 > worst:
        worst = (hi - lo) / 2.0
    return worst
