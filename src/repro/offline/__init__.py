"""Offline (non-streaming) optimal histogram algorithms (Section 4.2)."""

from repro.offline.optimal import (
    min_buckets_for_error,
    optimal_error,
    optimal_error_dp,
    optimal_histogram,
)
from repro.offline.optimal_pwl import (
    min_pwl_buckets_for_error,
    optimal_pwl_error,
    optimal_pwl_histogram,
)

__all__ = [
    "min_buckets_for_error",
    "optimal_error",
    "optimal_error_dp",
    "optimal_histogram",
    "min_pwl_buckets_for_error",
    "optimal_pwl_error",
    "optimal_pwl_histogram",
]
