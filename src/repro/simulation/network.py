"""Topology and radio accounting for the sensor-network simulation.

A collection tree of motes: leaves sense, interior motes relay, the base
station (the root) stores.  The radio model charges every transmitted
byte on every hop -- the standard first-order energy model for motes,
where radio dominates compute by orders of magnitude.  Payload sizes come
from the library's explicit memory model (a shipped summary costs its
``memory_bytes()``; raw forwarding costs ``bytes_per_reading`` per value),
so the simulation's savings numbers are in the same units as Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import InvalidParameterError

#: Radio cost of one raw reading (a 4-byte integer, as in the paper).
BYTES_PER_READING = 4


@dataclass
class Mote:
    """One node of the collection tree."""

    node_id: int
    parent: Optional[int]
    depth: int
    is_leaf: bool
    bytes_sent: int = 0
    children: list[int] = field(default_factory=list)


class AggregationTree:
    """A balanced collection tree with per-hop radio accounting.

    Parameters
    ----------
    leaves:
        Number of sensing motes.
    branching:
        Fan-in of interior motes (the root absorbs any remainder).
    """

    def __init__(self, leaves: int, *, branching: int = 2):
        if leaves < 1:
            raise InvalidParameterError(f"need >= 1 leaf, got {leaves}")
        if branching < 2:
            raise InvalidParameterError(
                f"branching must be >= 2, got {branching}"
            )
        self.branching = branching
        self.motes: dict[int, Mote] = {}
        # Build bottom-up: level 0 = leaves, parents above, root last.
        level = list(range(leaves))
        for node_id in level:
            self.motes[node_id] = Mote(
                node_id=node_id, parent=None, depth=0, is_leaf=True
            )
        next_id = leaves
        depth = 1
        while len(level) > 1:
            parents = []
            for i in range(0, len(level), branching):
                group = level[i:i + branching]
                if len(group) == 1 and parents:
                    # Fold a lone straggler into the previous parent.
                    self._adopt(parents[-1], group[0])
                    continue
                parent = Mote(
                    node_id=next_id, parent=None, depth=depth, is_leaf=False
                )
                self.motes[next_id] = parent
                for child in group:
                    self._adopt(next_id, child)
                parents.append(next_id)
                next_id += 1
            level = parents
            depth += 1
        self.root_id = level[0]

    def _adopt(self, parent_id: int, child_id: int) -> None:
        self.motes[child_id].parent = parent_id
        self.motes[parent_id].children.append(child_id)

    @property
    def leaf_ids(self) -> list[int]:
        """Sensing motes, in id order."""
        return sorted(m.node_id for m in self.motes.values() if m.is_leaf)

    def hops_to_root(self, node_id: int) -> int:
        """Number of radio hops from a mote to the base station."""
        self._check(node_id)
        hops = 0
        current = node_id
        while current != self.root_id:
            current = self.motes[current].parent
            hops += 1
        return hops

    def transmit(self, node_id: int, payload_bytes: int) -> int:
        """Ship a payload from a mote to the root; returns bytes on air.

        Every hop retransmits the payload; each forwarding mote's
        ``bytes_sent`` is charged (the root never transmits).
        """
        self._check(node_id)
        if payload_bytes < 0:
            raise InvalidParameterError(
                f"payload_bytes must be >= 0, got {payload_bytes}"
            )
        total = 0
        current = node_id
        while current != self.root_id:
            self.motes[current].bytes_sent += payload_bytes
            total += payload_bytes
            current = self.motes[current].parent
        return total

    def total_bytes_sent(self) -> int:
        """Sum of all radio transmissions so far."""
        return sum(m.bytes_sent for m in self.motes.values())

    def _check(self, node_id: int) -> None:
        if node_id not in self.motes:
            raise InvalidParameterError(f"unknown mote {node_id}")
