"""Sensor-network deployment simulation (the paper's motivating substrate).

The paper motivates its space bounds with sensor networks: motes with
KBytes of RAM, multi-hop radio where every transmitted byte costs energy,
and a base station that wants faithful summaries of every node's history.
This subpackage simulates that deployment end to end so the claims become
measurable: per-mote memory, radio bytes up the collection tree (summary
shipping vs raw forwarding), and the error of the base station's merged
per-node histories against the exact offline optimum.
"""

from repro.simulation.network import AggregationTree, Mote
from repro.simulation.scenario import (
    SensorNetworkSimulation,
    SimulationReport,
)

__all__ = [
    "AggregationTree",
    "Mote",
    "SensorNetworkSimulation",
    "SimulationReport",
]
