"""The deployment scenario: epochs of sensing, summaries up the tree.

Each epoch, every leaf mote summarizes its readings with MIN-MERGE in
O(B) memory and ships the *summary* (not the readings) to the base
station over the collection tree.  The base maintains one rolling history
summary per leaf by merging consecutive epoch summaries
(:func:`repro.core.aggregation.merge_min_merge_summaries` -- the (1, 2)
guarantee survives the merge, so the base's per-leaf history is provably
within the optimal ``B``-bucket error of that leaf's *entire* history).

The report compares against the baseline deployment that forwards raw
readings (4 bytes x readings x hops) and records the guarantee check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.aggregation import merge_min_merge_summaries
from repro.core.min_merge import MinMergeHistogram
from repro.data.quantize import quantize_to_universe
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_error
from repro.simulation.network import BYTES_PER_READING, AggregationTree


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one simulated deployment."""

    leaves: int
    epochs: int
    readings_per_epoch: int
    summary_radio_bytes: int
    raw_radio_bytes: int
    peak_mote_memory_bytes: int
    base_memory_bytes: int
    worst_error: float
    worst_optimal_error: float
    guarantee_held: bool
    received_epochs: int = 0
    lost_epochs: int = 0

    @property
    def radio_savings(self) -> float:
        """Raw-forwarding bytes divided by summary-shipping bytes."""
        if self.summary_radio_bytes == 0:
            return float("inf")
        return self.raw_radio_bytes / self.summary_radio_bytes


def default_signal(leaf: int, epoch: int, n: int, seed: int = 0) -> list[int]:
    """Per-leaf correlated random-walk readings (quantized to [0, 2^15))."""
    rng = np.random.default_rng((seed, leaf, epoch))
    walk = np.cumsum(rng.normal(0.0, 1.0, n)) + 100.0 * leaf
    return quantize_to_universe(walk, 1 << 15)


class SensorNetworkSimulation:
    """Run a summaries-up-the-tree deployment and measure it.

    Parameters
    ----------
    leaves, branching:
        Collection-tree shape.
    buckets:
        Per-epoch summary budget ``B`` on every leaf.
    epochs, readings_per_epoch:
        Deployment length.
    signal:
        ``signal(leaf, epoch, n) -> list[int]`` producing each leaf's
        readings; defaults to :func:`default_signal`.
    loss_rate:
        Probability that an epoch's summary is lost in transit (lossy
        radio).  A lost epoch simply never reaches the base: its readings
        are absent from that leaf's history, and the guarantee is then
        stated -- and checked -- against the optimal histogram of the
        *received* readings (the only stream the base ever saw).
    loss_seed:
        Seed for the loss process.
    """

    def __init__(
        self,
        *,
        leaves: int = 8,
        branching: int = 2,
        buckets: int = 16,
        epochs: int = 4,
        readings_per_epoch: int = 512,
        signal: Callable[[int, int, int], Sequence[int]] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ):
        if epochs < 1:
            raise InvalidParameterError(f"epochs must be >= 1, got {epochs}")
        if readings_per_epoch < 1:
            raise InvalidParameterError(
                f"readings_per_epoch must be >= 1, got {readings_per_epoch}"
            )
        if not 0.0 <= loss_rate < 1.0:
            raise InvalidParameterError(
                f"loss_rate must lie in [0, 1), got {loss_rate}"
            )
        self.tree = AggregationTree(leaves, branching=branching)
        self.buckets = buckets
        self.epochs = epochs
        self.readings_per_epoch = readings_per_epoch
        self.signal = signal if signal is not None else default_signal
        self.loss_rate = loss_rate
        self._loss_rng = np.random.default_rng(loss_seed)

    def run(self) -> SimulationReport:
        """Simulate the full deployment; returns the measured report."""
        histories: dict[int, MinMergeHistogram] = {}
        full_streams: dict[int, list[int]] = {
            leaf: [] for leaf in self.tree.leaf_ids
        }
        peak_mote_memory = 0
        summary_bytes = 0
        raw_bytes = 0

        received_epochs = 0
        lost_epochs = 0
        for epoch in range(self.epochs):
            for leaf in self.tree.leaf_ids:
                readings = list(
                    self.signal(leaf, epoch, self.readings_per_epoch)
                )
                # The mote summarizes its epoch in O(B) memory...
                epoch_summary = MinMergeHistogram(buckets=self.buckets)
                # Indices restart per epoch stream at the *received* offset
                # so the base's merged history stays contiguous even when
                # earlier epochs were lost on the air.
                epoch_summary._n = len(full_streams[leaf])
                epoch_summary.extend(readings)
                peak_mote_memory = max(
                    peak_mote_memory, epoch_summary.memory_bytes()
                )
                # ...ships the summary up the tree...
                summary_bytes += self.tree.transmit(
                    leaf, epoch_summary.memory_bytes()
                )
                raw_bytes += (
                    len(readings)
                    * BYTES_PER_READING
                    * self.tree.hops_to_root(leaf)
                )
                if self.loss_rate and self._loss_rng.random() < self.loss_rate:
                    lost_epochs += 1
                    continue  # the radio ate it; the base never sees it
                received_epochs += 1
                full_streams[leaf].extend(readings)
                # ...and the base folds it into the leaf's history.
                if leaf not in histories:
                    histories[leaf] = epoch_summary
                else:
                    histories[leaf] = merge_min_merge_summaries(
                        [histories[leaf], epoch_summary],
                        buckets=self.buckets,
                    )

        worst_error = 0.0
        worst_optimal = 0.0
        base_memory = 0
        guarantee = True
        for leaf, history in histories.items():
            base_memory += history.memory_bytes()
            error = history.error
            if not full_streams[leaf]:
                continue  # pragma: no cover - history implies received data
            best = optimal_error(full_streams[leaf], self.buckets)
            # Theorem 1 must hold per leaf, through every epoch merge.
            if error > best + 1e-9:
                guarantee = False
            if error > worst_error:
                worst_error = error
            if best > worst_optimal:
                worst_optimal = best
        return SimulationReport(
            leaves=len(self.tree.leaf_ids),
            epochs=self.epochs,
            readings_per_epoch=self.readings_per_epoch,
            summary_radio_bytes=summary_bytes,
            raw_radio_bytes=raw_bytes,
            peak_mote_memory_bytes=peak_mote_memory,
            base_memory_bytes=base_memory,
            worst_error=worst_error,
            worst_optimal_error=worst_optimal,
            guarantee_held=guarantee,
            received_epochs=received_epochs,
            lost_epochs=lost_epochs,
        )
