"""Capacity planning: which summary, how many buckets, how much memory?

A deployment question the paper's scenarios raise but never automate:
given a *sample* of the data and a target maximum error, how many buckets
does each representation need, and what will each streaming algorithm's
memory footprint be?  :func:`plan_summary` answers it from the offline
duals (Lemma 2 and its PWL analogue) plus the library's explicit memory
model, and :func:`compression_profile` traces the whole error-vs-buckets
curve for plotting or tabling.

These run offline on a sample; the returned plan parameterizes the
streaming classes for the live deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.error_ladder import ErrorLadder
from repro.exceptions import InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.offline.optimal import min_buckets_for_error, optimal_error
from repro.offline.optimal_pwl import (
    min_pwl_buckets_for_error,
    optimal_pwl_error,
)


@dataclass(frozen=True)
class PlanOption:
    """One candidate configuration in a :class:`SummaryPlan`."""

    algorithm: str
    buckets: int
    projected_memory_bytes: int
    notes: str


@dataclass(frozen=True)
class SummaryPlan:
    """Result of :func:`plan_summary`: per-algorithm recommendations."""

    target_error: float
    sample_size: int
    serial_buckets_needed: int
    pwl_buckets_needed: int
    options: tuple[PlanOption, ...]

    def best(self) -> PlanOption:
        """The option with the smallest projected memory."""
        return min(self.options, key=lambda o: o.projected_memory_bytes)


def plan_summary(
    sample: Sequence,
    target_error: float,
    *,
    epsilon: float = 0.2,
    universe: Optional[int] = None,
    memory_model: MemoryModel = DEFAULT_MODEL,
) -> SummaryPlan:
    """Recommend bucket budgets and algorithms for a target max error.

    Parameters
    ----------
    sample:
        Representative data (the duals are exact on the sample; live
        streams with the same character need similar budgets).
    target_error:
        The L-infinity error the deployment must not exceed.
    epsilon:
        Slack for the (1 + eps) streaming algorithms: their budgets are
        computed for ``target_error / (1 + eps)`` so that the *answer*
        stays within the target.
    universe:
        Value-domain size for ladder-based projections (defaults to the
        sample's maximum plus one).
    """
    if len(sample) == 0:
        raise InvalidParameterError("cannot plan from an empty sample")
    if target_error < 0:
        raise InvalidParameterError(
            f"target_error must be >= 0, got {target_error}"
        )
    if universe is None:
        universe = max(2, int(max(sample)) + 1)

    serial_needed = min_buckets_for_error(sample, target_error)
    pwl_needed = min_pwl_buckets_for_error(sample, target_error)
    # Budgets for the (1 + eps) algorithms: they may return up to
    # (1 + eps) x the optimum of their budget, so plan against a
    # tightened error.
    tightened = target_error / (1.0 + epsilon)
    serial_tight = min_buckets_for_error(sample, tightened)
    pwl_tight = min_pwl_buckets_for_error(sample, tightened)
    ladder_levels = len(ErrorLadder(epsilon, universe))

    model = memory_model
    options = (
        PlanOption(
            algorithm="min-merge",
            buckets=serial_needed,
            projected_memory_bytes=(
                model.buckets(2 * serial_needed)
                + model.heap_entries(2 * serial_needed - 1)
            ),
            notes=(
                "2B working buckets; error <= optimal-B <= target by "
                "Theorem 1"
            ),
        ),
        PlanOption(
            algorithm="min-increment",
            buckets=serial_tight,
            projected_memory_bytes=(
                ladder_levels
                * (model.buckets(serial_tight) + model.open_buckets(1))
                + model.ladder_entries(ladder_levels)
            ),
            notes=(
                "budget sized for target/(1+eps); worst case over "
                f"{ladder_levels} ladder levels (live usage is usually far "
                "lower as levels die)"
            ),
        ),
        PlanOption(
            algorithm="pwl-min-merge",
            buckets=pwl_needed,
            projected_memory_bytes=(
                2 * pwl_needed * (model.pwl_headers(1) + model.hull_vertices(68))
                + model.heap_entries(2 * pwl_needed - 1)
            ),
            notes=(
                "2B working buckets with ~68-vertex kernel hulls "
                "(a mid-range projection); wins when the data trends"
            ),
        ),
        PlanOption(
            algorithm="pwl-min-increment",
            buckets=pwl_tight,
            projected_memory_bytes=(
                ladder_levels
                * (
                    model.buckets(pwl_tight)
                    + model.pwl_headers(1)
                    + model.hull_vertices(68)
                )
                + model.ladder_entries(ladder_levels)
            ),
            notes="closed buckets at 4 words; one capped hull per level",
        ),
    )
    return SummaryPlan(
        target_error=target_error,
        sample_size=len(sample),
        serial_buckets_needed=serial_needed,
        pwl_buckets_needed=pwl_needed,
        options=options,
    )


def compression_profile(
    sample: Sequence,
    bucket_sweep: Sequence[int],
    *,
    pwl_tol: float = 1e-3,
) -> list[dict]:
    """Optimal error at each bucket budget, serial and PWL.

    Returns one row per budget: ``{"buckets", "serial-error",
    "pwl-error", "serial-bytes", "pwl-ratio"}`` where ``pwl-ratio`` is the
    PWL error as a fraction of the serial error (Figure 9's quantity) and
    ``serial-bytes`` the raw cost of storing that many 4-word buckets.
    """
    if len(sample) == 0:
        raise InvalidParameterError("cannot profile an empty sample")
    if not bucket_sweep:
        raise InvalidParameterError("bucket_sweep must be non-empty")
    rows = []
    for buckets in bucket_sweep:
        serial = optimal_error(sample, buckets)
        pwl = optimal_pwl_error(sample, buckets, tol=pwl_tol)
        rows.append(
            {
                "buckets": buckets,
                "serial-error": serial,
                "pwl-error": pwl,
                "serial-bytes": DEFAULT_MODEL.buckets(buckets),
                "pwl-ratio": (pwl / serial) if serial > 0 else math.nan,
            }
        )
    return rows
