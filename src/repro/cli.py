"""Command-line interface: ``repro-histogram`` / ``python -m repro``.

Subcommands::

    repro-histogram list-datasets
    repro-histogram summarize --dataset dow-jones --algorithm min-merge -B 32
    repro-histogram stats --dataset dow-jones --algorithm min-increment -B 32
    repro-histogram parallel-bench --dataset brownian --method min-merge -B 32
    repro-histogram fig5 [--paper]
    repro-histogram fig6 [--paper]
    repro-histogram fig7 [--paper]
    repro-histogram fig8 [--paper]
    repro-histogram fig9 [--paper]
    repro-histogram sliding-window
    repro-histogram wavelet
    repro-histogram recover --dir checkpoints/
    repro-histogram serve --port 7607 --checkpoint-dir state/ --workers 3
    repro-histogram scenario list
    repro-histogram scenario run bursty-drift --method min-merge

The ``figN`` subcommands regenerate the series behind the corresponding
figure in the paper; ``--paper`` switches from the quick interactive sizes
to the paper's exact workload sizes (slower in pure Python).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.data.datasets import dataset_by_name, list_datasets
from repro.harness import experiments
from repro.harness.reporting import render_metrics, render_series
from repro.harness.runner import ALGORITHM_NAMES, make_algorithm, run_stream


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-histogram",
        description=(
            "Streaming maximum-error (L-infinity) histograms -- reproduction "
            "of Buragohain, Shrivastava, Suri (ICDE 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list the registered datasets")

    summarize = sub.add_parser(
        "summarize", help="stream a dataset through one algorithm"
    )
    summarize.add_argument(
        "--dataset", default="brownian", help="dataset name (see list-datasets)"
    )
    summarize.add_argument(
        "--algorithm",
        default="min-merge",
        choices=ALGORITHM_NAMES,
        help="algorithm to run",
    )
    summarize.add_argument("-B", "--buckets", type=int, default=32)
    summarize.add_argument("--epsilon", type=float, default=0.2)
    summarize.add_argument("-n", "--points", type=int, default=16384)
    summarize.add_argument(
        "--window", type=int, default=None,
        help="window length (sliding-window algorithm only)",
    )

    stats = sub.add_parser(
        "stats",
        help="stream a dataset with instrumentation on and print the metrics",
    )
    stats.add_argument(
        "--dataset", default="brownian", help="dataset name (see list-datasets)"
    )
    stats.add_argument(
        "--algorithm",
        default="min-increment",
        choices=ALGORITHM_NAMES,
        help="algorithm to instrument",
    )
    stats.add_argument("-B", "--buckets", type=int, default=32)
    stats.add_argument("--epsilon", type=float, default=0.2)
    stats.add_argument("-n", "--points", type=int, default=16384)
    stats.add_argument(
        "--window", type=int, default=None,
        help="window length (sliding-window algorithms only)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the raw registry snapshot as JSON instead of tables",
    )

    parallel = sub.add_parser(
        "parallel-bench",
        help="compare serial vs sharded multi-core ingest on one dataset",
    )
    parallel.add_argument(
        "--dataset", default="brownian", help="dataset name (see list-datasets)"
    )
    parallel.add_argument(
        "--method",
        default="min-merge",
        choices=("min-merge", "pwl-min-merge"),
        help="merge-capable method to shard",
    )
    parallel.add_argument("-B", "--buckets", type=int, default=32)
    parallel.add_argument("-n", "--points", type=int, default=200_000)
    parallel.add_argument(
        "--workers", default="auto",
        help='worker count (int) or "auto" (default)',
    )
    parallel.add_argument(
        "--backend", default=None, choices=("thread", "process"),
        help="force an executor backend (default: pick automatically)",
    )
    parallel.add_argument(
        "--json", action="store_true",
        help="emit the comparison as JSON instead of the text report",
    )

    for fig in ("fig5", "fig6", "fig7", "fig8", "fig9"):
        fig_parser = sub.add_parser(fig, help=f"regenerate the {fig} series")
        fig_parser.add_argument(
            "--paper", action="store_true",
            help="use the paper's full workload sizes (slow in pure Python)",
        )

    sub.add_parser("sliding-window", help="Section 4.1 sliding-window series")
    sub.add_parser("wavelet", help="Section 1.2 wavelet-vs-histogram series")

    plot = sub.add_parser(
        "plot", help="ASCII chart of a dataset and one summary's reconstruction"
    )
    plot.add_argument("--dataset", default="merced")
    plot.add_argument(
        "--algorithm", default="min-merge", choices=ALGORITHM_NAMES
    )
    plot.add_argument("-B", "--buckets", type=int, default=32)
    plot.add_argument("--epsilon", type=float, default=0.2)
    plot.add_argument("-n", "--points", type=int, default=4096)
    plot.add_argument("--width", type=int, default=72)
    plot.add_argument("--height", type=int, default=16)

    recover = sub.add_parser(
        "recover",
        help="rebuild a summary from a checkpoint directory and report on it",
    )
    recover.add_argument(
        "--dir", required=True,
        help="checkpoint directory written by repro.resilience.CheckpointStore",
    )
    recover.add_argument(
        "--json", action="store_true",
        help="emit the recovery report as JSON instead of text",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant streaming service (JSON + binary TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7607,
        help="TCP port (0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None,
        help="root directory for per-stream crash-consistent checkpoints",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="snapshot a stream after this many ingested items",
    )
    serve.add_argument(
        "--max-pending", type=int, default=100_000,
        help="per-stream bound on queued-but-unapplied items (backpressure)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="cluster worker processes (0 = single-process server; N >= 1 "
        "boots a consistent-hash sharded router fronting N engine "
        "processes, see docs/CLUSTER.md)",
    )
    serve.add_argument(
        "--ingest-workers", type=int, default=0,
        help="ingest worker threads inside a single-process engine "
        "(0 = apply batches inline; ignored in cluster mode, whose "
        "workers always apply inline for ack-means-durable)",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="instrument every stream into a shared metrics registry",
    )
    serve.add_argument(
        "--no-binary", action="store_true",
        help="pin every connection to JSON lines (disable the negotiated "
        "binary wire protocol; see docs/WIRE.md)",
    )
    serve.add_argument(
        "--http-port", type=int, default=None,
        help="also mount the HTTP/REST facade on this port (0 = pick a "
        "free port and print it; see docs/REST.md)",
    )
    serve.add_argument(
        "--rebalance", action="store_true",
        help="cluster mode only: run the load-driven auto-rebalancer "
        "(moves hot streams between workers via live handoff)",
    )
    serve.add_argument(
        "--rebalance-interval", type=float, default=2.0,
        help="seconds between auto-rebalancer passes (with --rebalance)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="run YAML workload scenarios (see docs/SCENARIOS.md)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list the bundled scenarios")
    scenario_run = scenario_sub.add_parser(
        "run", help="simulate one scenario and report error vs the oracle"
    )
    scenario_run.add_argument(
        "spec",
        help="scenario YAML path or bundled scenario name (see scenario list)",
    )
    scenario_run.add_argument(
        "--method", default="min-merge",
        help="registry method to drive (default: min-merge)",
    )
    scenario_run.add_argument(
        "--backend", default="object", choices=("object", "soa"),
        help="summary backend (soa requires a merge-capable method)",
    )
    scenario_run.add_argument(
        "--workers", type=int, default=None,
        help="shard ingest across N workers (merge-capable methods only)",
    )
    scenario_run.add_argument(
        "--target", default="local", choices=("local", "service"),
        help="run in-process or through an ephemeral TCP service",
    )
    scenario_run.add_argument(
        "--conformance", action="store_true",
        help="also run the differential conformance matrix on the scenario",
    )
    scenario_run.add_argument(
        "--json", action="store_true",
        help="emit the ScenarioReport as JSON instead of text",
    )

    plan = sub.add_parser(
        "plan",
        help="capacity planning: buckets/memory needed for a target error",
    )
    plan.add_argument("--dataset", default="merced")
    plan.add_argument("-n", "--points", type=int, default=4096)
    plan.add_argument(
        "--target-error", type=float, required=True,
        help="maximum L-infinity error the deployment may incur",
    )
    plan.add_argument("--epsilon", type=float, default=0.2)
    return parser


def _cmd_list_datasets() -> str:
    lines = ["name        paper-length  description"]
    for spec in list_datasets():
        lines.append(
            f"{spec.name:<12}{spec.paper_length:>12,}  {spec.description}"
        )
    return "\n".join(lines)


def _cmd_summarize(args: argparse.Namespace) -> str:
    values = dataset_by_name(args.dataset).loader(args.points)
    window = args.window if args.window is not None else max(1, args.points // 4)
    algo = make_algorithm(
        args.algorithm,
        buckets=args.buckets,
        epsilon=args.epsilon,
        window=window,
    )
    result = run_stream(algo, values, name=args.algorithm)
    return (
        f"dataset     : {args.dataset} ({result.items:,} points)\n"
        f"algorithm   : {result.algorithm} (B={args.buckets}, eps={args.epsilon})\n"
        f"error       : {result.error:g}\n"
        f"buckets     : {result.buckets}\n"
        f"memory      : {result.memory_bytes:,} bytes\n"
        f"ingest time : {result.seconds:.3f} s "
        f"({result.items_per_second:,.0f} items/s)"
    )


def _cmd_stats(args: argparse.Namespace) -> str:
    import json

    values = dataset_by_name(args.dataset).loader(args.points)
    window = args.window if args.window is not None else max(1, args.points // 4)
    algo = make_algorithm(
        args.algorithm,
        buckets=args.buckets,
        epsilon=args.epsilon,
        window=window,
        metrics=True,
    )
    result = run_stream(algo, values, name=args.algorithm)
    if args.json:
        payload = {
            "dataset": args.dataset,
            "algorithm": result.algorithm,
            "items": result.items,
            "error": result.error,
            "metrics": result.metrics,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    head = (
        f"dataset     : {args.dataset} ({result.items:,} points)\n"
        f"algorithm   : {result.algorithm} (B={args.buckets}, eps={args.epsilon})\n"
        f"error       : {result.error:g}\n"
        f"ingest time : {result.seconds:.3f} s "
        f"({result.items_per_second:,.0f} items/s)"
    )
    return head + "\n\n" + render_metrics(
        result.metrics, title=f"{args.algorithm} metrics"
    )


def _cmd_parallel_bench(args: argparse.Namespace) -> str:
    import json
    import time

    from repro.parallel import ParallelSummarizer, available_cpus

    try:
        workers = int(args.workers)
    except ValueError:
        workers = args.workers

    values = dataset_by_name(args.dataset).loader(args.points)

    serial = make_algorithm(args.method, buckets=args.buckets, hull_epsilon=None)
    serial_result = run_stream(serial, values, name=args.method)

    summarizer = ParallelSummarizer(
        args.method,
        buckets=args.buckets,
        workers=workers,
        backend=args.backend,
    )
    start = time.perf_counter()
    parallel_summary = summarizer.summarize(values)
    parallel_seconds = time.perf_counter() - start
    shards = len(summarizer.plan(len(values)))
    parallel_hist = parallel_summary.histogram()
    speedup = (
        serial_result.seconds / parallel_seconds
        if parallel_seconds > 0 else float("inf")
    )
    parallel_rate = (
        len(values) / parallel_seconds if parallel_seconds > 0 else float("inf")
    )
    if args.json:
        payload = {
            "dataset": args.dataset,
            "method": args.method,
            "items": len(values),
            "buckets": args.buckets,
            "cpus": available_cpus(),
            "shards": shards,
            "serial": {
                "seconds": serial_result.seconds,
                "error": serial_result.error,
                "buckets": serial_result.buckets,
            },
            "parallel": {
                "seconds": parallel_seconds,
                "error": parallel_summary.error,
                "buckets": len(parallel_hist),
            },
            "speedup": speedup,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    return (
        f"dataset     : {args.dataset} ({len(values):,} points)\n"
        f"method      : {args.method} (B={args.buckets}, "
        f"{available_cpus()} CPUs, {shards} shards)\n"
        f"serial      : {serial_result.seconds:.3f} s "
        f"({serial_result.items_per_second:,.0f} items/s), "
        f"error={serial_result.error:g}, buckets={serial_result.buckets}\n"
        f"parallel    : {parallel_seconds:.3f} s "
        f"({parallel_rate:,.0f} items/s), "
        f"error={parallel_summary.error:g}, buckets={len(parallel_hist)}\n"
        f"speedup     : {speedup:.2f}x"
    )


def _cmd_recover(args: argparse.Namespace) -> str:
    import json

    from repro.checkpoint import state_dict
    from repro.resilience import CheckpointStore

    store = CheckpointStore(args.dir)
    summary = store.recover()
    report = store.last_recovery
    kind = state_dict(summary).get("kind", type(summary).__name__)
    # Fleets expose per-stream errors rather than a scalar surface.
    error = getattr(summary, "error", None)
    error = None if callable(error) else error
    buckets = getattr(summary, "bucket_count", None)
    if args.json:
        payload = {
            "directory": store.directory,
            "kind": kind,
            "generation": report.generation,
            "snapshot_items": report.snapshot_items,
            "journal_records": report.journal_records,
            "replayed_items": report.replayed_items,
            "skipped_generations": report.skipped_generations,
            "items_seen": summary.items_seen,
            "error": error,
            "buckets": buckets,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    journal_line = (
        f"journal     : {report.journal_records} record(s), "
        f"{report.replayed_items} item(s) replayed"
        if store.journal is not None
        else "journal     : none"
    )
    skipped = (
        f" ({report.skipped_generations} corrupt generation(s) skipped)"
        if report.skipped_generations
        else ""
    )
    lines = [
        f"directory   : {store.directory}",
        f"summary     : {kind}",
        f"generation  : {report.generation}{skipped}",
        journal_line,
        f"items seen  : {summary.items_seen:,} "
        f"({report.snapshot_items:,} from the snapshot)",
    ]
    if error is not None:
        lines.append(f"error       : {error:g}")
    if buckets is not None:
        lines.append(f"buckets     : {buckets}")
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers:
        return _cmd_serve_cluster(args)
    from repro.service import StreamEngine, StreamServer

    engine = StreamEngine(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        max_pending=args.max_pending,
        workers=args.ingest_workers,
        metrics=args.metrics,
    )
    from repro.service import wire

    protocols = (wire.PROTO_JSON,) if args.no_binary else wire.ALL_PROTOCOLS
    server = StreamServer(
        engine, host=args.host, port=args.port, protocols=protocols
    )
    recovered = engine.streams()
    if recovered:
        print(f"recovered {len(recovered)} stream(s): {', '.join(recovered)}")
    http = None
    if args.http_port is not None:
        from repro.service.http import HttpFrontend

        http = HttpFrontend(
            engine, host=args.host, port=args.http_port
        ).start_in_background()
        print(f"REST facade on http://{args.host}:{http.port}/v1", flush=True)
    if args.port == 0:
        # Bind first so the caller learns the chosen port before blocking.
        server.start_in_background()
        print(f"listening on {args.host}:{server.port}", flush=True)
        try:
            server._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            if http is not None:
                http.stop()
            server.stop()
            engine.close()
        return 0
    print(f"listening on {args.host}:{args.port}", flush=True)
    try:
        server.run()
    finally:
        if http is not None:
            http.stop()
        engine.close()
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """``serve --workers N``: a sharded multi-process cluster front."""
    import signal
    import tempfile

    from repro.service import ClusterRouter, wire

    cluster_dir = args.checkpoint_dir or tempfile.mkdtemp(
        prefix="repro-cluster-"
    )
    protocols = (wire.PROTO_JSON,) if args.no_binary else wire.ALL_PROTOCOLS
    router = ClusterRouter(
        cluster_dir,
        workers=args.workers,
        host=args.host,
        port=args.port,
        checkpoint_every=args.checkpoint_every,
        protocols=protocols,
        http_port=args.http_port,
    )
    # SIGTERM must tear down the worker processes too, not orphan them.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    router.start()
    rebalancer = None
    if args.rebalance:
        from repro.service.cluster.rebalance import Rebalancer

        rebalancer = Rebalancer(
            router, interval=args.rebalance_interval
        ).start()
    try:
        print(
            f"cluster state in {cluster_dir}; "
            f"workers: {', '.join(router.workers())}"
        )
        if router.http is not None:
            print(
                f"REST facade on http://{args.host}:{router.http_port}/v1",
                flush=True,
            )
        if rebalancer is not None:
            print(
                f"auto-rebalancer running every "
                f"{args.rebalance_interval:g}s",
                flush=True,
            )
        print(f"listening on {args.host}:{router.port}", flush=True)
        router.server._thread.join()
    except KeyboardInterrupt:
        pass
    finally:
        if rebalancer is not None:
            rebalancer.stop()
        router.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-datasets":
        print(_cmd_list_datasets())
    elif args.command == "summarize":
        print(_cmd_summarize(args))
    elif args.command == "stats":
        print(_cmd_stats(args))
    elif args.command == "parallel-bench":
        print(_cmd_parallel_bench(args))
    elif args.command == "fig5":
        print(render_series(experiments.fig5_memory_vs_buckets(paper_scale=args.paper)))
    elif args.command == "fig6":
        series = experiments.fig6_memory_vs_stream_size(paper_scale=args.paper)
        print(render_series(series))
    elif args.command == "fig7":
        print(render_series(experiments.fig7_error_vs_buckets(paper_scale=args.paper)))
    elif args.command == "fig8":
        print(render_series(experiments.fig8_running_time(paper_scale=args.paper)))
    elif args.command == "fig9":
        print(render_series(experiments.fig9_pwl_vs_serial(paper_scale=args.paper)))
    elif args.command == "sliding-window":
        print(render_series(experiments.sliding_window_experiment()))
    elif args.command == "wavelet":
        print(render_series(experiments.wavelet_comparison()))
    elif args.command == "recover":
        print(_cmd_recover(args))
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "scenario":
        return _cmd_scenario(args)
    elif args.command == "plot":
        print(_cmd_plot(args))
    elif args.command == "plan":
        print(_cmd_plan(args))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import (
        bundled_scenarios,
        check_conformance,
        load_bundled,
        resolve_spec,
        run_scenario,
    )

    if args.scenario_command == "list":
        lines = ["name                     length  streams  description"]
        for name in bundled_scenarios():
            spec = load_bundled(name)
            lines.append(
                f"{name:<24}{spec.length:>7,}{spec.tenants.streams:>9}  "
                f"{' '.join(spec.description.split())}"
            )
        print("\n".join(lines))
        return 0

    spec = resolve_spec(args.spec)
    report = run_scenario(
        spec,
        args.method,
        target=args.target,
        backend=args.backend,
        workers=args.workers,
    )
    conformance = None
    if args.conformance:
        conformance = check_conformance(spec, args.method)
    if args.json:
        payload = report.to_dict()
        if conformance is not None:
            payload["conformance"] = conformance.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.all_bounds_ok else 1
    lines = [
        f"scenario    : {spec.name} ({report.items:,} items, "
        f"{len(report.streams)} stream(s))",
        f"method      : {args.method} (B={spec.buckets}, "
        f"backend={args.backend}, target={args.target}"
        + (f", workers={args.workers}" if args.workers else "")
        + (f", window={spec.window}" if spec.window else "")
        + ")",
    ]
    for stream in report.streams:
        recovered = (
            ""
            if stream.recovered_identical is None
            else f", recovered-identical={stream.recovered_identical}"
        )
        lines.append(
            f"  {stream.stream}: error={stream.error:g} "
            f"(true={stream.true_error:g}, oracle={stream.oracle_error:g}, "
            f"bound-ok={stream.bound_ok}), buckets={stream.buckets_used}, "
            f"memory={stream.memory_bytes:,} B, "
            f"{stream.throughput_items_per_second:,.0f} items/s, "
            f"p99={stream.append.p99_ms:.3f} ms{recovered}"
        )
    lines.append(
        f"verdict     : bounds {'OK' if report.all_bounds_ok else 'VIOLATED'} "
        f"(worst error / bound ratio {report.worst_error_ratio:.4f})"
    )
    if report.faults_fired:
        lines.append(f"faults fired: {', '.join(report.faults_fired)}")
    if conformance is not None:
        lines.append(
            f"conformance : {'OK' if conformance.ok else 'FAILED'} "
            f"({conformance.cell_count} cells)"
        )
    print("\n".join(lines))
    return 0 if report.all_bounds_ok else 1


def _cmd_plan(args: argparse.Namespace) -> str:
    from repro.analysis import plan_summary

    sample = dataset_by_name(args.dataset).loader(args.points)
    plan = plan_summary(sample, args.target_error, epsilon=args.epsilon)
    lines = [
        f"sample      : {args.dataset} ({plan.sample_size:,} points)",
        f"target error: {plan.target_error:g}",
        "buckets needed (offline duals): serial "
        f"{plan.serial_buckets_needed}, PWL {plan.pwl_buckets_needed}",
        "",
        f"{'algorithm':<20}{'buckets':>8}{'memory(B)':>11}  notes",
    ]
    for option in plan.options:
        lines.append(
            f"{option.algorithm:<20}{option.buckets:>8}"
            f"{option.projected_memory_bytes:>11,}  {option.notes}"
        )
    best = plan.best()
    lines.append("")
    lines.append(
        f"recommended: {best.algorithm} with B={best.buckets} "
        f"(~{best.projected_memory_bytes:,} bytes)"
    )
    return "\n".join(lines)


def _cmd_plot(args: argparse.Namespace) -> str:
    from repro.harness.ascii_plot import ascii_chart

    values = dataset_by_name(args.dataset).loader(args.points)
    window = max(1, args.points // 4)
    algo = make_algorithm(
        args.algorithm,
        buckets=args.buckets,
        epsilon=args.epsilon,
        window=window,
    )
    result = run_stream(algo, values, name=args.algorithm)
    try:
        hist = algo.histogram()
    except TypeError:  # REHIST materializes from the original values
        hist = algo.histogram(values)
    approx = hist.reconstruct()
    covered = values[hist.beg:hist.end + 1]
    chart = ascii_chart(
        covered,
        approx,
        width=args.width,
        height=args.height,
        title=(
            f"{args.dataset} (n={args.points:,}) via {args.algorithm} "
            f"(B={args.buckets}): error={result.error:g}, "
            f"memory={result.memory_bytes:,} B"
        ),
    )
    return chart


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
