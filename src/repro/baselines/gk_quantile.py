"""Greenwald-Khanna quantile sketch -- the mainstream-library contrast.

Quantile sketches are the summaries that *did* make it into mainstream
libraries, and they answer a different question: "what is the 95th
percentile of the values?", i.e. the **value distribution**, with all
temporal structure erased.  A max-error histogram answers "what was the
value around time t?".  The two are complementary, and the benchmark
``bench_quantiles_vs_histogram.py`` makes the contrast concrete: at equal
memory, GK reconstructs the *sorted* stream beautifully and the *time
series* terribly, while the histogram does the reverse.

This is the classic deterministic GK sketch (Greenwald & Khanna, SIGMOD
2001): tuples ``(value, g, delta)`` where ``g`` is the gap in minimum rank
to the predecessor and ``delta`` the rank uncertainty; queries are
rank-accurate within ``eps * n`` and space is O(eps^-1 log(eps n)).
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics


class _Tuple:
    """One GK entry: value, min-rank gap ``g``, rank uncertainty ``delta``."""

    __slots__ = ("value", "g", "delta")

    def __init__(self, value, g: int, delta: int):
        self.value = value
        self.g = g
        self.delta = delta

    def __lt__(self, other: "_Tuple") -> bool:
        return self.value < other.value


class GKQuantileSketch:
    """Deterministic eps-approximate quantile sketch.

    Parameters
    ----------
    epsilon:
        Rank-error bound: a query for quantile ``q`` returns a value whose
        rank is within ``epsilon * n`` of ``q * n``.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).  Compression folds are counted as
        merges and each compression sweep as a flush.
    """

    def __init__(
        self,
        epsilon: float = 0.01,
        *,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if not 0 < epsilon < 1:
            raise InvalidParameterError(
                f"epsilon must lie in (0, 1), got {epsilon}"
            )
        self.epsilon = epsilon
        self._model = memory_model
        self._entries: list[_Tuple] = []
        self._n = 0
        # Compress every ~1/(2 eps) inserts (the classic schedule).
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion -------------------------------------------------------------

    def insert(self, value) -> None:
        """Add one value to the sketch."""
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        self._n += 1
        band_cap = int(2.0 * self.epsilon * self._n)
        entries = self._entries
        if not entries or value < entries[0].value:
            entries.insert(0, _Tuple(value, 1, 0))
        elif value >= entries[-1].value:
            entries.append(_Tuple(value, 1, 0))
        else:
            # Find the successor and insert before it with full uncertainty.
            lo, hi = 0, len(entries) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid].value <= value:
                    lo = mid + 1
                else:
                    hi = mid
            delta = max(0, band_cap - 1)
            entries.insert(lo, _Tuple(value, 1, delta))
        if self._n % self._compress_every == 0:
            before = len(self._entries)
            self._compress()
            if observe:
                folded = before - len(self._entries)
                if folded:
                    self._metrics.on_merge(folded)
                self._metrics.on_flush(folded)
        if observe:
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable."""
        for value in values:
            self.insert(value)

    # -- queries -------------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of values inserted so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def entry_count(self) -> int:
        """Current number of stored tuples."""
        return len(self._entries)

    def quantile(self, q: float):
        """Value at quantile ``q`` (rank-accurate within ``eps * n``)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {q}")
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        target = q * self._n
        slack = self.epsilon * self._n
        min_rank = 0
        for entry in self._entries:
            min_rank += entry.g
            max_rank = min_rank + entry.delta
            if max_rank >= target - slack and min_rank <= target + slack:
                return entry.value
        return self._entries[-1].value

    def quantiles(self, qs: Iterable[float]) -> list:
        """Batch quantile queries."""
        return [self.quantile(q) for q in qs]

    def memory_bytes(self) -> int:
        """Accounted memory: 3 words per stored tuple."""
        return self._model.words(3 * len(self._entries))

    def check_invariant(self) -> None:
        """Assert rank bookkeeping is consistent (tests)."""
        total_g = sum(e.g for e in self._entries)
        if total_g != self._n:
            raise AssertionError(
                f"sum of gaps {total_g} != items seen {self._n}"
            )
        values = [e.value for e in self._entries]
        if values != sorted(values):
            raise AssertionError("entries out of order")
        band_cap = max(1, int(2.0 * self.epsilon * self._n))
        for e in self._entries:
            if e.g + e.delta > band_cap + 1:
                raise AssertionError(
                    f"entry width {e.g + e.delta} exceeds cap {band_cap + 1}"
                )

    # -- internals -----------------------------------------------------------------

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined width fits the band cap."""
        entries = self._entries
        if len(entries) < 3:
            return
        band_cap = int(2.0 * self.epsilon * self._n)
        # Sweep right-to-left, folding each entry into its successor when
        # the merged width stays within the cap (endpoints stay exact).
        i = len(entries) - 2
        while i >= 1:
            cur = entries[i]
            nxt = entries[i + 1]
            if cur.g + nxt.g + nxt.delta <= band_cap:
                nxt.g += cur.g
                del entries[i]
            i -= 1
