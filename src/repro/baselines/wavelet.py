"""Top-B Haar wavelet synopsis.

Section 1.2 of the paper notes that wavelets "give acceptable results for
the L2 error, but can perform quite poorly under the L-infinity norm".
This module provides the standard synopsis -- keep the ``B`` largest
(normalized) Haar coefficients -- so the claim can be demonstrated
empirically: the extension benchmark compares its L2 and L-infinity
reconstruction errors against the histogram algorithms.

The transform is the classic O(n) streaming-friendly Haar decomposition;
inputs whose length is not a power of two are zero-risk padded by
repeating the final value (the padding region is excluded from error
measurements by the caller simply by truncating the reconstruction).
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.exceptions import InvalidParameterError


class HaarWaveletSynopsis:
    """Offline top-``B`` Haar coefficient synopsis of a value sequence."""

    def __init__(self, values: Sequence, coefficients: int):
        if coefficients < 1:
            raise InvalidParameterError(
                f"coefficients must be >= 1, got {coefficients}"
            )
        if len(values) == 0:
            raise InvalidParameterError("cannot summarize an empty sequence")
        self.length = len(values)
        self.budget = coefficients
        padded = _pad_to_power_of_two(values)
        self._size = len(padded)
        coeffs = _haar_decompose(padded)
        # Keep the B coefficients with the largest *normalized* magnitude
        # (the standard L2-optimal thresholding).  Coefficient i at level
        # depth d has norm weight 2^(-d/2); _haar_decompose returns the
        # unnormalized averages/differences along with their weights.
        top = heapq.nlargest(
            coefficients,
            ((abs(value) * weight, index) for index, (value, weight) in coeffs.items()),
        )
        self.kept: dict[int, float] = {
            index: coeffs[index][0] for _magnitude, index in top
        }

    def reconstruct(self) -> list[float]:
        """Inverse transform of the kept coefficients, truncated to input length."""
        data = [0.0] * self._size
        # Coefficient 0 is the overall average; others are difference
        # coefficients in standard Haar layout.
        tree = [0.0] * self._size
        for index, value in self.kept.items():
            tree[index] = value
        out = _haar_reconstruct(tree, self._size)
        data[: self.length] = out[: self.length]
        return data[: self.length]

    def errors_against(self, values: Sequence) -> tuple[float, float]:
        """(L-infinity, L2) reconstruction errors against ``values``."""
        if len(values) != self.length:
            raise InvalidParameterError(
                f"expected {self.length} values, got {len(values)}"
            )
        approx = self.reconstruct()
        worst = 0.0
        total_sq = 0.0
        for v, a in zip(values, approx):
            diff = abs(v - a)
            worst = max(worst, diff)
            total_sq += diff * diff
        return worst, math.sqrt(total_sq)


def _pad_to_power_of_two(values: Sequence) -> list[float]:
    n = len(values)
    size = 1
    while size < n:
        size *= 2
    padded = [float(v) for v in values]
    padded.extend([float(values[-1])] * (size - n))
    return padded


def _haar_decompose(data: list[float]) -> dict[int, tuple[float, float]]:
    """Unnormalized Haar transform.

    Returns ``{index: (coefficient, l2_weight)}`` in the standard layout:
    index 0 holds the global average, index ``2^d + j`` the difference
    coefficient of block ``j`` at depth ``d`` from the top.
    """
    n = len(data)
    coeffs: dict[int, tuple[float, float]] = {}
    current = list(data)
    level_start = n // 2
    weight = 1.0
    while len(current) > 1:
        averages = []
        for j in range(0, len(current), 2):
            a, b = current[j], current[j + 1]
            averages.append((a + b) / 2.0)
            coeffs[level_start + j // 2] = ((a - b) / 2.0, weight)
        current = averages
        level_start //= 2
        weight *= math.sqrt(2.0)
    coeffs[0] = (current[0], weight / math.sqrt(2.0) if n > 1 else 1.0)
    return coeffs


def _haar_reconstruct(tree: list[float], size: int) -> list[float]:
    """Inverse of :func:`_haar_decompose` for a dense coefficient array."""
    current = [tree[0]]
    level_start = 1
    while len(current) < size:
        nxt = []
        for j, avg in enumerate(current):
            diff = tree[level_start + j]
            nxt.append(avg + diff)
            nxt.append(avg - diff)
        current = nxt
        level_start *= 2
    return current
