"""The REHIST comparator: approximate streaming DP for L-infinity histograms.

The paper benchmarks against the space-optimized REHIST variant of Guha,
Shim and Woo [12] (building on Guha-Koudas-Shim [11]): a
(1 + eps, 1)-approximation using Theta(eps^-1 B^2 log) memory.  The
original is specified for relative error; following the paper we
instantiate the same approximate-DP machinery directly for the max-error
metric (DESIGN.md item 4):

* Let ``E_k(p)`` be the optimal error of the length-``p`` prefix using
  ``k`` buckets.  The streaming DP maintains, for each level
  ``k = 1 .. B-1``, a *breakpoint list*: for each (1 + delta)-factor class
  of approximate error values it keeps only the **latest** prefix position
  in that class (latest is best -- ``E_k`` is non-decreasing in ``p``
  while the suffix error of the last bucket is non-increasing).
* The transition ``E_{k+1}(n) = min_b max(E_k(b), err(b+1 .. n))`` takes
  the max of a non-decreasing and a non-increasing sequence over the
  breakpoints, so the minimizing breakpoint sits at their crossing and a
  binary search finds it.
* Dropping intra-class positions costs a ``(1 + delta)`` factor *per
  level*, compounding to ``(1 + delta)^B``; REHIST therefore runs with
  ``delta = eps / (2B)``, which is precisely where the extra factor of
  ``B`` in its Theta(eps^-1 B^2 log U) space comes from -- the quantity
  Figure 5 of the paper measures.
* Suffix interval errors ``err(b+1 .. n)`` come from two monotone record
  stacks (suffix max / suffix min); their data-dependent size is included
  in the reported memory.

This implementation reports the approximate optimal error on demand
(that is what Figure 7 plots) and can materialize an actual histogram
from the original values via a greedy pass at the reported error.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.histogram import Histogram, Segment
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.structures.monotone_stack import SuffixWindow


class _BreakpointList:
    """Per-level list of (position, value) pairs, one per error class.

    ``positions`` are strictly increasing prefix lengths; ``values`` are
    the (clamped-monotone) approximate DP errors at those prefixes.  A new
    sample either *replaces* the tail entry (same class: its value is
    within ``(1 + delta)`` of the class anchor) or *appends* a new class.
    """

    __slots__ = ("delta", "positions", "values", "_anchor")

    def __init__(self, delta: float):
        self.delta = delta
        self.positions: list[int] = []
        self.values: list[float] = []
        self._anchor: float = -1.0  # value that opened the current class

    def __len__(self) -> int:
        return len(self.positions)

    def record(self, position: int, value: float) -> None:
        """Register ``E_k(position) = value`` (positions arrive in order)."""
        if self.values:
            # Clamp to keep the stored sequence monotone despite per-level
            # approximation jitter; the exact E_k is monotone, and clamping
            # up preserves the (1 + delta)^k upper bound.
            if value < self.values[-1]:
                value = self.values[-1]
            in_class = (
                value <= self._anchor * (1.0 + self.delta)
                if self._anchor > 0.0
                else value == 0.0
            )
            if in_class:
                self.positions[-1] = position
                self.values[-1] = value
                return
        self.positions.append(position)
        self.values.append(value)
        self._anchor = value


class RehistHistogram:
    """Streaming (1 + eps, 1)-approximate L-infinity histogram (REHIST).

    Parameters
    ----------
    buckets:
        Target bucket count ``B``.
    epsilon:
        Overall approximation parameter in (0, 1); internally quantized at
        ``delta = epsilon / (2 B)`` per level.
    universe:
        Size ``U`` of the integer value domain ``[0, U)``.
    delta:
        Override for the per-level quantization factor.  The default
        ``epsilon / (2 B)`` is what the (1 + eps) guarantee needs (class
        drops compound multiplicatively across B levels) and is the source
        of the Theta(B^2) space; coarser overrides (e.g. ``epsilon``)
        shrink memory by ~B at the cost of a ``(1 + delta)^B`` worst-case
        factor -- the ablation benchmark quantifies the trade.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        *,
        delta: float = None,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if not 0 < epsilon < 1:
            raise InvalidParameterError(
                f"epsilon must lie in (0, 1), got {epsilon}"
            )
        if universe < 2:
            raise InvalidParameterError(
                f"universe must be at least 2, got {universe}"
            )
        self.target_buckets = buckets
        self.epsilon = epsilon
        self.universe = universe
        if delta is None:
            delta = epsilon / (2.0 * buckets)
        elif delta <= 0:
            raise InvalidParameterError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._model = memory_model
        self._window = SuffixWindow()
        # Breakpoint lists for levels 1 .. B-1 (level B needs no list: its
        # value is only ever queried at the current prefix).
        self._levels: list[_BreakpointList] = [
            _BreakpointList(self.delta) for _ in range(max(0, buckets - 1))
        ]
        self._n = 0
        self._current_error = 0.0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion ------------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value (one DP sweep over the levels)."""
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        self._window.append(value)
        self._n += 1
        n = self._n
        b = self.target_buckets
        # Compute approximate E_k(n) bottom-up, then record the new
        # breakpoints (recording after computing keeps position n out of
        # this round's transitions -- the last bucket must be non-empty).
        errors = [0.0] * (min(b, n) + 1)
        errors[1] = self._window.interval_error(0)
        for k in range(2, len(errors)):
            errors[k] = self._transition(self._levels[k - 2])
        before = self.breakpoint_count() if observe else 0
        for k in range(1, min(b - 1, n) + 1):
            self._levels[k - 1].record(n, errors[k])
        self._current_error = errors[min(b, n)]
        if observe:
            # Recordings that replaced a tail entry (stayed in the same
            # error class) are the DP's merges.
            recorded = min(b - 1, n)
            folded = recorded - (self.breakpoint_count() - before)
            if folded > 0:
                self._metrics.on_merge(folded)
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        REHIST's DP sweep is inherently per-item, so there is no
        vectorized path; ndarrays are unboxed once up front to avoid
        iterating NumPy scalars through the Python loop.
        """
        if isinstance(values, np.ndarray):
            values = values.tolist()
        for value in values:
            self.insert(value)

    # -- queries ----------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def error(self) -> float:
        """Approximate optimal B-bucket error of the stream so far.

        Guaranteed within ``(1 + epsilon)`` of the true optimum.
        """
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        return self._current_error

    def histogram(self, values: Sequence) -> Histogram:
        """Materialize a histogram via a greedy pass at the reported error.

        REHIST's streaming state alone pins down the *error*; rebuilding
        the bucket boundaries needs the original values (an offline pass,
        provided for inspection and plotting).  The greedy partition at the
        reported error uses at most ``B`` buckets because the true optimal
        B-bucket error is no larger.
        """
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        if len(values) != self._n:
            raise InvalidParameterError(
                f"expected the {self._n} inserted values, got {len(values)}"
            )
        target = self._current_error
        segments: list[Segment] = []
        worst = 0.0
        beg = 0
        lo = hi = values[0]
        for i in range(1, len(values)):
            v = values[i]
            new_lo = v if v < lo else lo
            new_hi = v if v > hi else hi
            if (new_hi - new_lo) / 2.0 > target:
                rep = (lo + hi) / 2.0
                segments.append(Segment(beg, i - 1, rep, rep))
                worst = max(worst, (hi - lo) / 2.0)
                beg = i
                lo = hi = v
            else:
                lo, hi = new_lo, new_hi
        rep = (lo + hi) / 2.0
        segments.append(Segment(beg, len(values) - 1, rep, rep))
        worst = max(worst, (hi - lo) / 2.0)
        return Histogram(segments, worst)

    def breakpoint_count(self) -> int:
        """Total breakpoints across all levels (the B^2 memory driver)."""
        return sum(len(level) for level in self._levels)

    def memory_bytes(self) -> int:
        """Accounted memory: breakpoints, record stacks, DP scratch."""
        total = self._model.breakpoints(self.breakpoint_count())
        total += self._model.stack_entries(len(self._window))
        total += self._model.words(self.target_buckets)  # per-level scratch
        return total

    # -- internals -----------------------------------------------------------------

    def _transition(self, level: _BreakpointList) -> float:
        """min over breakpoints b of max(E_k(b), err(b .. n-1)).

        ``level.values`` is non-decreasing and the suffix interval error is
        non-increasing in the breakpoint position, so the objective is
        unimodal: binary-search the crossing, then take the best of the
        straddling candidates.
        """
        positions = level.positions
        values = level.values
        if not positions:
            return self._window.interval_error(0)
        window = self._window
        lo, hi = 0, len(positions) - 1
        # Find the first index where E_k(b) >= suffix error.
        while lo < hi:
            mid = (lo + hi) // 2
            if values[mid] >= window.interval_error(positions[mid]):
                hi = mid
            else:
                lo = mid + 1
        best = math.inf
        for idx in (lo - 1, lo):
            if 0 <= idx < len(positions):
                suffix = window.interval_error(positions[idx])
                candidate = values[idx] if values[idx] > suffix else suffix
                if candidate < best:
                    best = candidate
        return best
