"""Naive offline partitioners used as sanity baselines.

Neither appears in the paper's plots, but both are standard strawmen that
make the experiments' story legible: the equi-width partition shows what a
data-oblivious bucketing costs under the max-error metric, and the greedy
top-down splitter is the natural "cut the worst bucket" heuristic that the
guaranteed algorithms are implicitly compared against.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.histogram import Histogram, Segment
from repro.exceptions import InvalidParameterError


def equi_width_histogram(values: Sequence, buckets: int) -> Histogram:
    """Split the index range into ``buckets`` equal-length pieces."""
    _validate(values, buckets)
    n = len(values)
    buckets = min(buckets, n)
    segments = []
    worst = 0.0
    for b in range(buckets):
        beg = b * n // buckets
        end = (b + 1) * n // buckets - 1
        chunk = values[beg:end + 1]
        lo, hi = min(chunk), max(chunk)
        rep = (lo + hi) / 2.0
        segments.append(Segment(beg, end, rep, rep))
        worst = max(worst, (hi - lo) / 2.0)
    return Histogram(segments, worst)


def greedy_split_histogram(values: Sequence, buckets: int) -> Histogram:
    """Top-down greedy: repeatedly split the bucket with the largest error.

    Each split separates the bucket at the position of its extreme value
    (the point realizing the half-range), the move that reduces that
    bucket's error the most.  O(n log n + B n) overall; no approximation
    guarantee -- that is the point of comparing it against MIN-MERGE.
    """
    _validate(values, buckets)
    n = len(values)
    buckets = min(buckets, n)

    def bucket_stats(beg: int, end: int) -> tuple[float, int]:
        """(error, split_position) for the range [beg, end]."""
        lo = hi = values[beg]
        lo_at = hi_at = beg
        for i in range(beg + 1, end + 1):
            v = values[i]
            if v < lo:
                lo, lo_at = v, i
            if v > hi:
                hi, hi_at = v, i
        error = (hi - lo) / 2.0
        # Split just before the later of the two extremes (keeps both
        # sides non-empty whenever the bucket has >= 2 items).
        split = max(lo_at, hi_at)
        if split == beg:
            split = beg + 1
        return error, split

    # Max-heap of (-error, beg, end, split).
    heap: list[tuple] = []
    err, split = bucket_stats(0, n - 1)
    heapq.heappush(heap, (-err, 0, n - 1, split))
    final: list[tuple[int, int]] = []
    while heap and len(heap) + len(final) < buckets:
        neg_err, beg, end, split = heapq.heappop(heap)
        if neg_err == 0.0 or beg == end:
            final.append((beg, end))
            continue
        for lo_i, hi_i in ((beg, split - 1), (split, end)):
            e, s = bucket_stats(lo_i, hi_i)
            heapq.heappush(heap, (-e, lo_i, hi_i, s))
    final.extend((beg, end) for _neg, beg, end, _s in heap)
    final.sort()
    segments = []
    worst = 0.0
    for beg, end in final:
        chunk = values[beg:end + 1]
        lo, hi = min(chunk), max(chunk)
        rep = (lo + hi) / 2.0
        segments.append(Segment(beg, end, rep, rep))
        worst = max(worst, (hi - lo) / 2.0)
    return Histogram(segments, worst)


def _validate(values: Sequence, buckets: int) -> None:
    if buckets < 1:
        raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
    if len(values) == 0:
        raise InvalidParameterError("cannot build a histogram of no values")
