"""Comparator algorithms: REHIST, naive partitioners, wavelet synopsis."""

from repro.baselines.rehist import RehistHistogram
from repro.baselines.naive import equi_width_histogram, greedy_split_histogram
from repro.baselines.wavelet import HaarWaveletSynopsis
from repro.baselines.gk_quantile import GKQuantileSketch

__all__ = [
    "RehistHistogram",
    "equi_width_histogram",
    "greedy_split_histogram",
    "HaarWaveletSynopsis",
    "GKQuantileSketch",
]
