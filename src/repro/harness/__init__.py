"""Experiment harness: runners, per-figure drivers, and reporting."""

from repro.harness.runner import RunResult, make_algorithm, run_stream
from repro.harness.experiments import (
    ExperimentSeries,
    fig5_memory_vs_buckets,
    fig6_memory_vs_stream_size,
    fig7_error_vs_buckets,
    fig8_running_time,
    fig9_pwl_vs_serial,
    sliding_window_experiment,
    wavelet_comparison,
)
from repro.harness.reporting import render_series

__all__ = [
    "RunResult",
    "make_algorithm",
    "run_stream",
    "ExperimentSeries",
    "fig5_memory_vs_buckets",
    "fig6_memory_vs_stream_size",
    "fig7_error_vs_buckets",
    "fig8_running_time",
    "fig9_pwl_vs_serial",
    "sliding_window_experiment",
    "wavelet_comparison",
    "render_series",
]
