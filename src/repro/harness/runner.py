"""Feed streams to summaries and collect the measurements the paper plots.

Every streaming summary in this library shares the small informal protocol
``extend(values)`` / ``error`` / ``memory_bytes()``; :func:`run_stream`
drives one summary over one stream and reports the error, the accounted
memory, the wall-clock time, and (where the summary can materialize one)
the bucket count of the answer histogram.

:func:`make_algorithm` is the factory the experiment drivers and the CLI
share: it builds a fresh summary from a short algorithm name, so a single
string like ``"min-merge"`` identifies an algorithm everywhere in the
harness, the benchmarks, and the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from repro.baselines.rehist import RehistHistogram
from repro.core.batch import as_batch_array
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.exceptions import InvalidParameterError

def _need_window(cfg: dict, name: str) -> int:
    if cfg["window"] is None:
        raise InvalidParameterError(
            f"the {name} algorithm needs a window length"
        )
    return cfg["window"]


def _make_min_merge(cfg):
    return MinMergeHistogram(buckets=cfg["buckets"], metrics=cfg["metrics"])


def _make_min_increment(cfg):
    return MinIncrementHistogram(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"], metrics=cfg["metrics"],
    )


def _make_min_increment_batched(cfg):
    return MinIncrementHistogram(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"], batch_size="auto", metrics=cfg["metrics"],
    )


def _make_rehist(cfg):
    return RehistHistogram(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"], metrics=cfg["metrics"],
    )


def _make_pwl_min_merge(cfg):
    return PwlMinMergeHistogram(
        buckets=cfg["buckets"], hull_epsilon=cfg["hull_epsilon"],
        metrics=cfg["metrics"],
    )


def _make_pwl_min_increment(cfg):
    return PwlMinIncrementHistogram(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"], hull_epsilon=cfg["hull_epsilon"],
        metrics=cfg["metrics"],
    )


def _make_sliding_window(cfg):
    return SlidingWindowMinIncrement(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"],
        window=_need_window(cfg, "sliding-window"), metrics=cfg["metrics"],
    )


def _make_sliding_window_pwl(cfg):
    return SlidingWindowPwlMinIncrement(
        buckets=cfg["buckets"], epsilon=cfg["epsilon"],
        universe=cfg["universe"],
        window=_need_window(cfg, "sliding-window-pwl"),
        hull_epsilon=cfg["hull_epsilon"], metrics=cfg["metrics"],
    )


#: Registry mapping algorithm names to summary factories.  Each factory
#: receives the normalized configuration dict of :func:`make_algorithm`.
ALGORITHM_FACTORIES = {
    "min-merge": _make_min_merge,
    "min-increment": _make_min_increment,
    "min-increment-batched": _make_min_increment_batched,
    "rehist": _make_rehist,
    "pwl-min-merge": _make_pwl_min_merge,
    "pwl-min-increment": _make_pwl_min_increment,
    "sliding-window": _make_sliding_window,
    "sliding-window-pwl": _make_sliding_window_pwl,
}

#: Algorithm registry names accepted by :func:`make_algorithm`.
ALGORITHM_NAMES = tuple(ALGORITHM_FACTORIES)


@dataclass(frozen=True)
class RunResult:
    """Measurements from one streaming run."""

    algorithm: str
    items: int
    seconds: float
    memory_bytes: int
    error: float
    buckets: Optional[int]
    metrics: Optional[dict] = None

    @property
    def items_per_second(self) -> float:
        """Ingest throughput (items/s)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.items / self.seconds


def make_algorithm(
    name: str,
    *,
    buckets: int,
    epsilon: float = 0.2,
    universe: int = 1 << 15,
    window: Optional[int] = None,
    hull_epsilon: Optional[float] = 0.1,
    metrics=None,
):
    """Build a fresh summary by registry name.

    ``window`` is only consulted by the sliding-window algorithms;
    ``hull_epsilon`` only by the PWL algorithms.  ``metrics`` opts the
    summary into instrumentation (``True``, a shared
    :class:`~repro.observability.MetricsRegistry`, or a
    :class:`~repro.observability.SummaryMetrics`; see
    ``docs/OBSERVABILITY.md``).
    """
    factory = ALGORITHM_FACTORIES.get(name)
    if factory is None:
        known = ", ".join(ALGORITHM_NAMES)
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        )
    cfg = {
        "buckets": buckets,
        "epsilon": epsilon,
        "universe": universe,
        "window": window,
        "hull_epsilon": hull_epsilon,
        "metrics": metrics,
    }
    return factory(cfg)


def run_stream(
    algorithm, values: Sequence, *, name: Optional[str] = None
) -> RunResult:
    """Stream ``values`` through ``algorithm`` and measure the outcome.

    When the summary is instrumented (``metrics=`` at construction), the
    result carries a snapshot of its registry in ``RunResult.metrics``.
    """
    label = name if name is not None else type(algorithm).__name__
    # Coerce once up front so every run (and the timer) sees the chunked
    # batch-ingest path when the input is batchable; scalar fallback inputs
    # stream through extend() unchanged.
    batched = as_batch_array(values)
    stream = values if batched is None else batched
    start = time.perf_counter()
    algorithm.extend(stream)
    elapsed = time.perf_counter() - start
    flush = getattr(algorithm, "flush", None)
    if callable(flush):
        flush()
    buckets: Optional[int]
    try:
        buckets = len(algorithm.histogram())
    except TypeError:
        # REHIST materializes histograms only from the original values.
        buckets = len(algorithm.histogram(values))
    summary_metrics = getattr(algorithm, "metrics", None)
    return RunResult(
        algorithm=label,
        items=len(values),
        seconds=elapsed,
        memory_bytes=algorithm.memory_bytes(),
        error=algorithm.error,
        buckets=buckets,
        metrics=(
            summary_metrics.snapshot() if summary_metrics is not None else None
        ),
    )


def run_streams(
    jobs: Sequence[Mapping],
    *,
    workers: Union[None, int, str] = None,
) -> list:
    """Run a grid of independent ``(algorithm config, stream)`` jobs.

    Each job is a mapping with a ``"values"`` sequence, an ``"algorithm"``
    registry name, optionally a ``"name"`` label for the result row, and
    any :func:`make_algorithm` keyword (``buckets``, ``epsilon``,
    ``universe``, ``window``, ``hull_epsilon``, ``metrics``).  Every job
    builds its own summary, so the grid rows are independent and can be
    dispatched across a thread pool: ``workers=None`` (default) stays
    serial, an int pins the pool size, ``"auto"`` sizes to the CPU count.
    Results come back as :class:`RunResult` rows in job order for every
    ``workers`` setting.

    Wall-clock ``seconds`` of individual rows measure the summary's own
    ingest work; under a thread pool concurrent rows share cores (and,
    for pure-Python ingest paths, the GIL), so per-row timings are only
    comparable within a single ``workers`` setting.
    """
    # Imported here, not at module top: repro.parallel imports the
    # aggregation layer, which plain run_stream() callers never need.
    from repro.parallel.executor import map_tasks

    def _run_job(job: Mapping) -> RunResult:
        cfg = dict(job)
        values = cfg.pop("values")
        algorithm = cfg.pop("algorithm")
        label = cfg.pop("name", algorithm)
        summary = make_algorithm(algorithm, **cfg)
        return run_stream(summary, values, name=label)

    return map_tasks(_run_job, list(jobs), workers=workers)
