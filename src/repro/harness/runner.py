"""Feed streams to summaries and collect the measurements the paper plots.

Every streaming summary in this library shares the small informal protocol
``extend(values)`` / ``error`` / ``memory_bytes()``; :func:`run_stream`
drives one summary over one stream and reports the error, the accounted
memory, the wall-clock time, and (where the summary can materialize one)
the bucket count of the answer histogram.

:func:`make_algorithm` is the factory the experiment drivers and the CLI
share: it builds a fresh summary from a short algorithm name, so a single
string like ``"min-merge"`` identifies an algorithm everywhere in the
harness, the benchmarks, and the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.rehist import RehistHistogram
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.exceptions import InvalidParameterError

#: Algorithm registry names accepted by :func:`make_algorithm`.
ALGORITHM_NAMES = (
    "min-merge",
    "min-increment",
    "min-increment-batched",
    "rehist",
    "pwl-min-merge",
    "pwl-min-increment",
    "sliding-window",
    "sliding-window-pwl",
)


@dataclass(frozen=True)
class RunResult:
    """Measurements from one streaming run."""

    algorithm: str
    items: int
    seconds: float
    memory_bytes: int
    error: float
    buckets: Optional[int]

    @property
    def items_per_second(self) -> float:
        """Ingest throughput (items/s)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.items / self.seconds


def make_algorithm(
    name: str,
    *,
    buckets: int,
    epsilon: float = 0.2,
    universe: int = 1 << 15,
    window: Optional[int] = None,
    hull_epsilon: Optional[float] = 0.1,
):
    """Build a fresh summary by registry name.

    ``window`` is only consulted by ``"sliding-window"``; ``hull_epsilon``
    only by the PWL algorithms.
    """
    if name == "min-merge":
        return MinMergeHistogram(buckets=buckets)
    if name == "min-increment":
        return MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
    if name == "min-increment-batched":
        return MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe,
            batch_size="auto",
        )
    if name == "rehist":
        return RehistHistogram(buckets=buckets, epsilon=epsilon, universe=universe)
    if name == "pwl-min-merge":
        return PwlMinMergeHistogram(buckets=buckets, hull_epsilon=hull_epsilon)
    if name == "pwl-min-increment":
        return PwlMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe,
            hull_epsilon=hull_epsilon,
        )
    if name == "sliding-window":
        if window is None:
            raise InvalidParameterError(
                "the sliding-window algorithm needs a window length"
            )
        return SlidingWindowMinIncrement(
            buckets=buckets, epsilon=epsilon, universe=universe, window=window
        )
    if name == "sliding-window-pwl":
        if window is None:
            raise InvalidParameterError(
                "the sliding-window-pwl algorithm needs a window length"
            )
        return SlidingWindowPwlMinIncrement(
            buckets=buckets, epsilon=epsilon, universe=universe,
            window=window, hull_epsilon=hull_epsilon,
        )
    known = ", ".join(ALGORITHM_NAMES)
    raise InvalidParameterError(
        f"unknown algorithm {name!r}; known algorithms: {known}"
    )


def run_stream(algorithm, values: Sequence, *, name: Optional[str] = None) -> RunResult:
    """Stream ``values`` through ``algorithm`` and measure the outcome."""
    label = name if name is not None else type(algorithm).__name__
    start = time.perf_counter()
    algorithm.extend(values)
    elapsed = time.perf_counter() - start
    flush = getattr(algorithm, "flush", None)
    if callable(flush):
        flush()
    buckets: Optional[int]
    try:
        buckets = len(algorithm.histogram())
    except TypeError:
        # REHIST materializes histograms only from the original values.
        buckets = len(algorithm.histogram(values))
    return RunResult(
        algorithm=label,
        items=len(values),
        seconds=elapsed,
        memory_bytes=algorithm.memory_bytes(),
        error=algorithm.error,
        buckets=buckets,
    )
