"""One driver per table/figure in the paper's evaluation (Section 5).

Each driver regenerates the series behind one figure and returns an
:class:`ExperimentSeries` -- a list of rows keyed by the sweep variable
plus one column per algorithm.  The drivers accept scaled-down defaults so
they run in seconds of pure Python; pass ``paper_scale=True`` (or the
explicit parameters) to reproduce the paper's exact sizes.

Figure index (see DESIGN.md section 3 for the full mapping):

* :func:`fig5_memory_vs_buckets`   -- memory (bytes) vs B, three datasets
* :func:`fig6_memory_vs_stream_size` -- memory vs n at B = 32 (Brownian)
* :func:`fig7_error_vs_buckets`    -- L-infinity error vs B vs OPTIMAL
* :func:`fig8_running_time`        -- ingest time vs n at B = 32
* :func:`fig9_pwl_vs_serial`       -- PWL vs serial error vs B
* :func:`sliding_window_experiment` -- Section 4.1 (no paper figure)
* :func:`wavelet_comparison`       -- Section 1.2's wavelet claim
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.baselines.rehist import RehistHistogram
from repro.baselines.wavelet import HaarWaveletSynopsis
from repro.data.datasets import DEFAULT_UNIVERSE, dataset_by_name
from repro.harness.runner import run_stream
from repro.metrics.errors import l2_error, linf_error
from repro.offline.optimal import optimal_error

#: Paper defaults (Section 5): eps = 0.2, U = 2^15, n = 16384 points.
PAPER_EPSILON = 0.2
PAPER_POINTS = 16384
PAPER_BUCKET_SWEEP = (16, 24, 32, 48, 64, 96, 128)

#: Scaled-down defaults that keep every driver interactive in pure Python.
QUICK_POINTS = 4096
QUICK_BUCKET_SWEEP = (16, 24, 32, 48, 64)


@dataclass
class ExperimentSeries:
    """Tabular result of one experiment driver.

    ``rows`` is a list of dicts sharing the same keys; ``x`` names the
    sweep column.  ``meta`` records the workload parameters so EXPERIMENTS.md
    entries are self-describing.
    """

    name: str
    title: str
    x: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]


def _load(dataset: str, n: int) -> list[int]:
    return dataset_by_name(dataset).loader(n)


def fig5_memory_vs_buckets(
    *,
    datasets: Sequence[str] = ("dow-jones", "merced", "brownian"),
    bucket_sweep: Optional[Sequence[int]] = None,
    n: Optional[int] = None,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
    paper_scale: bool = False,
) -> list[ExperimentSeries]:
    """Figure 5: memory (bytes) as a function of B, one series per dataset."""
    bucket_sweep = bucket_sweep or (
        PAPER_BUCKET_SWEEP if paper_scale else QUICK_BUCKET_SWEEP
    )
    n = n or (PAPER_POINTS if paper_scale else QUICK_POINTS)
    results = []
    for dataset in datasets:
        values = _load(dataset, n)
        series = ExperimentSeries(
            name=f"fig5-{dataset}",
            title=f"Figure 5 ({dataset}): memory vs B, n={n}, eps={epsilon}",
            x="buckets",
            columns=["buckets", "min-merge", "min-increment", "rehist"],
            meta={"dataset": dataset, "n": n, "epsilon": epsilon},
        )
        for buckets in bucket_sweep:
            mm = MinMergeHistogram(buckets=buckets)
            mi = MinIncrementHistogram(
                buckets=buckets, epsilon=epsilon, universe=universe
            )
            rh = RehistHistogram(
                buckets=buckets, epsilon=epsilon, universe=universe
            )
            row = {"buckets": buckets}
            for key, algo in (("min-merge", mm), ("min-increment", mi), ("rehist", rh)):
                algo.extend(values)
                row[key] = algo.memory_bytes()
            series.rows.append(row)
        results.append(series)
    return results


def fig6_memory_vs_stream_size(
    *,
    sizes: Optional[Sequence[int]] = None,
    buckets: int = 32,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
    dataset: str = "brownian",
    max_rehist_n: Optional[int] = 65536,
    paper_scale: bool = False,
) -> ExperimentSeries:
    """Figure 6: memory as a function of the stream size n (B = 32).

    REHIST's quadratic item cost makes the largest paper sizes slow in
    pure Python; ``max_rehist_n`` caps the sizes it is run at (``None``
    runs everything, as the paper did in C++).
    """
    if sizes is None:
        sizes = (
            (4000, 16000, 64000, 128000, 256000, 512000)
            if paper_scale
            else (4000, 8000, 16000, 32000, 64000)
        )
    series = ExperimentSeries(
        name="fig6",
        title=f"Figure 6 ({dataset}): memory vs n, B={buckets}, eps={epsilon}",
        x="n",
        columns=["n", "min-merge", "min-increment", "rehist"],
        meta={"dataset": dataset, "buckets": buckets, "epsilon": epsilon},
    )
    values_full = _load(dataset, max(sizes))
    for n in sizes:
        values = values_full[:n]
        mm = MinMergeHistogram(buckets=buckets)
        mm.extend(values)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
        mi.extend(values)
        row = {
            "n": n,
            "min-merge": mm.memory_bytes(),
            "min-increment": mi.memory_bytes(),
        }
        if max_rehist_n is None or n <= max_rehist_n:
            rh = RehistHistogram(
                buckets=buckets, epsilon=epsilon, universe=universe
            )
            rh.extend(values)
            row["rehist"] = rh.memory_bytes()
        else:
            row["rehist"] = None
        series.rows.append(row)
    return series


def fig7_error_vs_buckets(
    *,
    dataset: str = "dow-jones",
    bucket_sweep: Optional[Sequence[int]] = None,
    n: Optional[int] = None,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
    paper_scale: bool = False,
) -> ExperimentSeries:
    """Figure 7: L-infinity error vs B for OPTIMAL / REHIST / ours."""
    bucket_sweep = bucket_sweep or (
        PAPER_BUCKET_SWEEP if paper_scale else QUICK_BUCKET_SWEEP
    )
    n = n or (PAPER_POINTS if paper_scale else QUICK_POINTS)
    values = _load(dataset, n)
    series = ExperimentSeries(
        name="fig7",
        title=f"Figure 7 ({dataset}): error vs B, n={n}, eps={epsilon}",
        x="buckets",
        columns=["buckets", "optimal", "rehist", "min-increment", "min-merge"],
        meta={"dataset": dataset, "n": n, "epsilon": epsilon},
    )
    for buckets in bucket_sweep:
        # Like the paper's Figure 7, MIN-MERGE is charged its *total*
        # bucket count: a summary holding B working buckets targets B/2,
        # so at equal x it reads marginally above OPTIMAL ("the error
        # produced by MIN-MERGE is marginally worse, as expected").
        mm = MinMergeHistogram(
            buckets=max(1, buckets // 2), working_buckets=buckets
        )
        mm.extend(values)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
        mi.extend(values)
        rh = RehistHistogram(buckets=buckets, epsilon=epsilon, universe=universe)
        rh.extend(values)
        series.rows.append(
            {
                "buckets": buckets,
                "optimal": optimal_error(values, buckets),
                "rehist": rh.error,
                "min-increment": mi.error,
                "min-merge": mm.error,
            }
        )
    return series


def fig8_running_time(
    *,
    sizes: Optional[Sequence[int]] = None,
    buckets: int = 32,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
    dataset: str = "brownian",
    max_rehist_n: Optional[int] = 32000,
    paper_scale: bool = False,
) -> ExperimentSeries:
    """Figure 8: ingest wall-clock time vs n (B = 32, Brownian)."""
    if sizes is None:
        sizes = (
            (4000, 16000, 64000, 128000, 256000, 512000)
            if paper_scale
            else (2000, 4000, 8000, 16000, 32000)
        )
    series = ExperimentSeries(
        name="fig8",
        title=f"Figure 8 ({dataset}): running time vs n, B={buckets}",
        x="n",
        columns=["n", "min-merge", "min-increment", "rehist"],
        meta={"dataset": dataset, "buckets": buckets, "epsilon": epsilon},
    )
    values_full = _load(dataset, max(sizes))
    for n in sizes:
        values = values_full[:n]
        row = {"n": n}
        mm = run_stream(MinMergeHistogram(buckets=buckets), values)
        row["min-merge"] = mm.seconds
        mi = run_stream(
            MinIncrementHistogram(
                buckets=buckets, epsilon=epsilon, universe=universe
            ),
            values,
        )
        row["min-increment"] = mi.seconds
        if max_rehist_n is None or n <= max_rehist_n:
            rh = run_stream(
                RehistHistogram(
                    buckets=buckets, epsilon=epsilon, universe=universe
                ),
                values,
            )
            row["rehist"] = rh.seconds
        else:
            row["rehist"] = None
        series.rows.append(row)
    return series


def fig9_pwl_vs_serial(
    *,
    dataset: str = "dow-jones",
    bucket_sweep: Optional[Sequence[int]] = None,
    n: Optional[int] = None,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
    hull_epsilon: float = 0.1,
    paper_scale: bool = False,
) -> ExperimentSeries:
    """Figure 9: approximation error of PWL vs serial histograms vs B."""
    bucket_sweep = bucket_sweep or (
        PAPER_BUCKET_SWEEP if paper_scale else (16, 24, 32, 48)
    )
    n = n or (PAPER_POINTS if paper_scale else 2048)
    values = _load(dataset, n)
    series = ExperimentSeries(
        name="fig9",
        title=f"Figure 9 ({dataset}): PWL vs serial error, n={n}",
        x="buckets",
        columns=[
            "buckets",
            "serial-min-merge",
            "pwl-min-merge",
            "serial-min-increment",
            "pwl-min-increment",
        ],
        meta={"dataset": dataset, "n": n, "epsilon": epsilon},
    )
    for buckets in bucket_sweep:
        mm = MinMergeHistogram(buckets=buckets)
        mm.extend(values)
        pm = PwlMinMergeHistogram(buckets=buckets, hull_epsilon=hull_epsilon)
        pm.extend(values)
        mi = MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
        mi.extend(values)
        pi = PwlMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe,
            hull_epsilon=hull_epsilon,
        )
        pi.extend(values)
        series.rows.append(
            {
                "buckets": buckets,
                "serial-min-merge": mm.error,
                "pwl-min-merge": pm.error,
                "serial-min-increment": mi.error,
                "pwl-min-increment": pi.error,
            }
        )
    return series


def sliding_window_experiment(
    *,
    dataset: str = "brownian",
    n: int = 16384,
    windows: Sequence[int] = (512, 1024, 2048, 4096),
    buckets: int = 32,
    epsilon: float = PAPER_EPSILON,
    universe: int = DEFAULT_UNIVERSE,
) -> ExperimentSeries:
    """Section 4.1: sliding-window error/memory vs window size.

    Reports the summary's error on the final window, the true optimal
    B-bucket error of that window, and the summary memory -- demonstrating
    the (1 + eps, 1 + 1/B) guarantee at memory independent of w.
    """
    values = _load(dataset, n)
    series = ExperimentSeries(
        name="sliding-window",
        title=f"Sliding window ({dataset}): B={buckets}, eps={epsilon}",
        x="window",
        columns=["window", "error", "optimal", "buckets-used", "memory-bytes"],
        meta={"dataset": dataset, "n": n, "buckets": buckets, "epsilon": epsilon},
    )
    for window in windows:
        summary = SlidingWindowMinIncrement(
            buckets=buckets, epsilon=epsilon, universe=universe, window=window
        )
        summary.extend(values)
        hist = summary.histogram()
        tail = values[-window:]
        series.rows.append(
            {
                "window": window,
                "error": hist.max_error_against(tail),
                "optimal": optimal_error(tail, buckets),
                "buckets-used": len(hist),
                "memory-bytes": summary.memory_bytes(),
            }
        )
    return series


def wavelet_comparison(
    *,
    dataset: str = "dow-jones",
    n: int = 4096,
    budgets: Sequence[int] = (16, 32, 64, 128),
    universe: int = DEFAULT_UNIVERSE,
) -> ExperimentSeries:
    """Section 1.2's claim: wavelets are fine for L2, poor for L-infinity.

    Compares a top-B Haar synopsis against MIN-MERGE with the same storage
    budget (a Haar coefficient costs 2 words -- index and value -- versus
    4 words per bucket, so MIN-MERGE gets B/2 target buckets = B working
    buckets for a fair fight).
    """
    values = _load(dataset, n)
    series = ExperimentSeries(
        name="wavelet",
        title=f"Wavelet vs histogram ({dataset}): n={n}",
        x="coefficients",
        columns=[
            "coefficients",
            "wavelet-linf",
            "histogram-linf",
            "wavelet-l2",
            "histogram-l2",
        ],
        meta={"dataset": dataset, "n": n},
    )
    for budget in budgets:
        synopsis = HaarWaveletSynopsis(values, budget)
        w_linf, w_l2 = synopsis.errors_against(values)
        mm = MinMergeHistogram(buckets=max(1, budget // 2))
        mm.extend(values)
        approx = mm.histogram().reconstruct()
        series.rows.append(
            {
                "coefficients": budget,
                "wavelet-linf": w_linf,
                "histogram-linf": linf_error(values, approx),
                "wavelet-l2": w_l2,
                "histogram-l2": l2_error(values, approx),
            }
        )
    return series
