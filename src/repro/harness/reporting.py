"""Plain-text rendering of experiment series.

The paper's figures are log-log plots; the CLI and the benchmark harness
print the underlying series as aligned tables so the rows can be compared
directly against the paper (EXPERIMENTS.md records the comparisons).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.harness.experiments import ExperimentSeries


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_series(series: Union[ExperimentSeries, Iterable[ExperimentSeries]]) -> str:
    """Render one series (or several) as aligned plain-text tables."""
    if isinstance(series, ExperimentSeries):
        series = [series]
    blocks = []
    for one in series:
        header = one.columns
        body = [[_format_cell(row.get(col)) for col in header] for row in one.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [one.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
