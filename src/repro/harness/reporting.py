"""Plain-text rendering of experiment series.

The paper's figures are log-log plots; the CLI and the benchmark harness
print the underlying series as aligned tables so the rows can be compared
directly against the paper (EXPERIMENTS.md records the comparisons).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.harness.experiments import ExperimentSeries


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _render_table(title: str, header: list, rows: list) -> str:
    body = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_metrics(snapshot: dict, *, title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as aligned tables.

    One table for counters, one for gauges, and one row per latency
    recorder (count / mean / p50 / p90 / p99 / max in microseconds).
    """
    blocks = []
    counters = snapshot.get("counters") or {}
    if counters:
        blocks.append(
            _render_table(
                f"{title}: counters",
                ["counter", "value"],
                sorted(counters.items()),
            )
        )
    gauges = snapshot.get("gauges") or {}
    if gauges:
        blocks.append(
            _render_table(
                f"{title}: gauges",
                ["gauge", "value"],
                sorted(gauges.items()),
            )
        )
    latencies = snapshot.get("latencies") or {}
    if latencies:
        rows = [
            [
                name,
                lat["count"],
                lat["mean_us"],
                lat["p50_us"],
                lat["p90_us"],
                lat["p99_us"],
                lat["max_us"],
            ]
            for name, lat in sorted(latencies.items())
        ]
        blocks.append(
            _render_table(
                f"{title}: latencies (us)",
                ["latency", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
            )
        )
    if not blocks:
        return f"{title}: (empty)"
    return "\n\n".join(blocks)


def render_series(series: Union[ExperimentSeries, Iterable[ExperimentSeries]]) -> str:
    """Render one series (or several) as aligned plain-text tables."""
    if isinstance(series, ExperimentSeries):
        series = [series]
    blocks = []
    for one in series:
        header = one.columns
        body = [[_format_cell(row.get(col)) for col in header] for row in one.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [one.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
