"""Terminal charts of streams and their histogram reconstructions.

``repro-histogram plot`` renders the original stream and the summary's
reconstruction side by side in plain ASCII, which is how a library user
eyeballs *where the buckets went* -- the L-infinity story ("the spike is
still there") is instantly visible.

The renderer is intentionally simple and fully deterministic: the index
range is split into ``width`` columns; each column shows the data's
min..max span as a vertical band of ``.`` and the reconstruction's value
as ``#`` (``@`` where they overlap).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError


def ascii_chart(
    values: Sequence[float],
    approx: Optional[Sequence[float]] = None,
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Render ``values`` (and optionally ``approx``) as an ASCII chart.

    Parameters
    ----------
    values:
        The original series.
    approx:
        Optional reconstruction of the same length, overlaid as ``#``.
    width, height:
        Chart size in character cells (axes excluded).
    title:
        Optional heading line.
    """
    if len(values) == 0:
        raise InvalidParameterError("cannot chart an empty series")
    if approx is not None and len(approx) != len(values):
        raise InvalidParameterError(
            f"approx length {len(approx)} != values length {len(values)}"
        )
    if width < 2 or height < 2:
        raise InvalidParameterError("chart needs width >= 2 and height >= 2")

    lo = min(values)
    hi = max(values)
    if approx is not None:
        lo = min(lo, min(approx))
        hi = max(hi, max(approx))
    span = (hi - lo) or 1.0

    def row_of(value: float) -> int:
        # Row 0 is the top of the chart.
        frac = (value - lo) / span
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    n = len(values)
    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        beg = col * n // width
        end = max(beg + 1, (col + 1) * n // width)
        chunk = values[beg:end]
        top = row_of(max(chunk))
        bottom = row_of(min(chunk))
        for row in range(top, bottom + 1):
            grid[row][col] = "."
        if approx is not None:
            target = approx[beg:end]
            a_top = row_of(max(target))
            a_bottom = row_of(min(target))
            for row in range(a_top, a_bottom + 1):
                grid[row][col] = "@" if grid[row][col] == "." else "#"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:g}"
    bottom_label = f"{lo:g}"
    label_width = max(len(top_label), len(bottom_label))
    for row, cells in enumerate(grid):
        if row == 0:
            label = top_label.rjust(label_width)
        elif row == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(cells)}|")
    axis = " " * label_width + " +" + "-" * width + "+"
    lines.append(axis)
    lines.append(
        " " * label_width + f"  0{'index'.center(width - 8)}{n - 1:>5}"
    )
    if approx is not None:
        lines.append(
            " " * label_width + "  data: .   reconstruction: # (@ overlap)"
        )
    return "\n".join(lines)
