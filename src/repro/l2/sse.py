"""Interval sum-of-squared-errors via prefix sums.

Under the L2 metric a bucket's optimal representative is the *mean* of its
values and its cost is the sum of squared deviations from that mean:

    SSE(i, j) = sum_{k=i..j} x_k^2  -  (sum_{k=i..j} x_k)^2 / (j - i + 1).

With prefix sums of ``x`` and ``x^2`` this is O(1) per interval -- the
classic substrate of Jagadish et al.'s V-optimal dynamic program [17].
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import InvalidParameterError


class PrefixSSE:
    """Prefix-sum structure answering interval SSE queries in O(1).

    Built once over a value sequence; ``sse(i, j)`` returns the optimal
    single-bucket L2 cost of the inclusive index range ``[i, j]`` and
    ``mean(i, j)`` its optimal representative.
    """

    def __init__(self, values: Sequence):
        if len(values) == 0:
            raise InvalidParameterError("cannot index an empty sequence")
        n = len(values)
        self._n = n
        self._sum = [0.0] * (n + 1)
        self._sumsq = [0.0] * (n + 1)
        for i, v in enumerate(values):
            self._sum[i + 1] = self._sum[i] + v
            self._sumsq[i + 1] = self._sumsq[i] + v * v

    def __len__(self) -> int:
        return self._n

    def _check(self, beg: int, end: int) -> None:
        if not 0 <= beg <= end < self._n:
            raise InvalidParameterError(
                f"interval [{beg}, {end}] out of range for length {self._n}"
            )

    def total(self, beg: int, end: int) -> float:
        """Sum of values over ``[beg, end]``."""
        self._check(beg, end)
        return self._sum[end + 1] - self._sum[beg]

    def mean(self, beg: int, end: int) -> float:
        """Optimal L2 representative (the mean) of ``[beg, end]``."""
        self._check(beg, end)
        return self.total(beg, end) / (end - beg + 1)

    def sse(self, beg: int, end: int) -> float:
        """Sum of squared deviations from the interval mean."""
        self._check(beg, end)
        count = end - beg + 1
        total = self._sum[end + 1] - self._sum[beg]
        sumsq = self._sumsq[end + 1] - self._sumsq[beg]
        # Clamp tiny negative residue from floating-point cancellation.
        return max(0.0, sumsq - total * total / count)


def interval_sse(values: Sequence, beg: int, end: int) -> float:
    """One-shot interval SSE (builds no index; O(j - i) time)."""
    if not 0 <= beg <= end < len(values):
        raise InvalidParameterError(
            f"interval [{beg}, {end}] out of range for length {len(values)}"
        )
    window = values[beg:end + 1]
    mean = sum(window) / len(window)
    return sum((v - mean) ** 2 for v in window)
