"""L2 (V-optimal) histograms -- the metric the paper positions against.

The paper's Related Work (Section 1.2) builds on the L2 lineage: Jagadish
et al.'s optimal dynamic program [17] and the merge-based approximations
it inspired.  This subpackage implements that lineage so the library can
*quantify* the introduction's motivation -- L2-optimal summaries minimize
total energy and may flatten exactly the spikes an L-infinity histogram is
obliged to keep visible.

Contents:

* :func:`voptimal_histogram` / :func:`voptimal_error` -- the exact offline
  V-optimal DP over prefix sums (O(n^2 B) time, O(nB) with rolling rows);
* :class:`L2MergeHistogram` -- the streaming merge-based heuristic: the
  MIN-MERGE control flow with sum/sum-of-squares buckets (no worst-case
  guarantee under L2 -- the summed metric defeats the min-merge pigeonhole
  argument -- but the classic practical baseline);
* :func:`interval_sse` -- O(1) interval sum-of-squared-errors via prefix
  sums, the substrate both share.
"""

from repro.l2.sse import PrefixSSE, interval_sse
from repro.l2.voptimal import voptimal_error, voptimal_histogram
from repro.l2.merge import L2MergeHistogram

__all__ = [
    "PrefixSSE",
    "interval_sse",
    "voptimal_error",
    "voptimal_histogram",
    "L2MergeHistogram",
]
