"""Streaming merge-based L2 histogram (the classic practical baseline).

The MIN-MERGE control flow -- give each arrival its own bucket, merge the
adjacent pair that hurts least -- applied to the L2 metric: buckets carry
``(count, sum, sum of squares)``, merge cost is the *increase* in total
SSE, and the representative is the mean.

Unlike the L-infinity case, **no worst-case guarantee holds**: Lemma 1's
pigeonhole argument needs the summary error to be the max over buckets,
whereas L2 error sums across buckets, so one unlucky early merge can be
locked in.  (Jagadish et al. [17] obtain a (3, 3) guarantee only in the
offline setting.)  The class exists as the honest streaming comparator for
the V-optimal DP and for the spike-visibility experiment that motivates
the paper's L-infinity focus.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

from repro.core.histogram import Histogram, Segment
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.structures.heap import AddressableMinHeap
from repro.structures.linked_list import BucketList, BucketNode


class _L2Bucket:
    """Sufficient statistics of one bucket: count, sum, sum of squares."""

    __slots__ = ("beg", "end", "count", "total", "sumsq")

    def __init__(self, index: int, value):
        self.beg = index
        self.end = index
        self.count = 1
        self.total = float(value)
        self.sumsq = float(value) * value

    @property
    def mean(self) -> float:
        """The optimal L2 representative."""
        return self.total / self.count

    @property
    def sse(self) -> float:
        """Sum of squared deviations from the mean."""
        return max(0.0, self.sumsq - self.total * self.total / self.count)

    def merge_cost_with(self, other: "_L2Bucket") -> float:
        """Increase in total SSE if merged with the adjacent bucket."""
        count = self.count + other.count
        total = self.total + other.total
        sumsq = self.sumsq + other.sumsq
        merged_sse = max(0.0, sumsq - total * total / count)
        return merged_sse - self.sse - other.sse

    def absorb(self, other: "_L2Bucket") -> None:
        """Merge the adjacent bucket into this one, in place."""
        if other.beg != self.end + 1:
            raise InvalidParameterError(
                f"buckets [{self.beg},{self.end}] and "
                f"[{other.beg},{other.end}] are not adjacent"
            )
        self.end = other.end
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq


class L2MergeHistogram:
    """Streaming L2 histogram by greedy adjacent merging.

    Parameters
    ----------
    buckets:
        Working bucket budget (kept exactly by default, no doubling --
        there is no (1, 2)-style theorem to buy with the extra space).
    working_buckets:
        Override for the working budget (defaults to ``buckets``),
        mirroring the merge-family keyword of the core summaries.
    memory_model:
        Cost model used by :meth:`memory_bytes`; each bucket is charged
        5 words (beg, end, count, sum, sumsq) plus its heap key.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        buckets: int,
        *,
        working_buckets: Optional[int] = None,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if working_buckets is None:
            working_buckets = buckets
        if working_buckets < 1:
            raise InvalidParameterError(
                f"working_buckets must be >= 1, got {working_buckets}"
            )
        self.target_buckets = buckets
        self.working_buckets = working_buckets
        self._model = memory_model
        self._list = BucketList()
        self._heap = AddressableMinHeap()
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion ---------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value."""
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        node = self._list.append(_L2Bucket(self._n, value))
        if node.prev is not None:
            self._push_pair_key(node.prev)
        if len(self._list) > self.working_buckets:
            self._merge_min_pair()
            if observe:
                self._metrics.on_merge()
        self._n += 1
        if observe:
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order."""
        for value in values:
            self.insert(value)

    # -- queries --------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def bucket_count(self) -> int:
        """Current number of buckets."""
        return len(self._list)

    @property
    def total_sse(self) -> float:
        """Total sum of squared errors of the current summary."""
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        return sum(node.bucket.sse for node in self._list)

    @property
    def error(self) -> float:
        """Alias for :attr:`total_sse` (the summary's L2 objective).

        Exposed so the class satisfies the
        :class:`~repro.core.interface.StreamingSummary` protocol; note the
        metric is the *summed* SSE, not a per-bucket maximum.
        """
        return self.total_sse

    def histogram(self) -> Histogram:
        """The current piecewise-constant approximation.

        The ``error`` field carries the total SSE (the L2 objective).
        """
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        segments = [
            Segment(b.beg, b.end, b.mean, b.mean)
            for b in self._list.buckets()
        ]
        return Histogram(segments, self.total_sse)

    def memory_bytes(self) -> int:
        """Accounted memory: 5-word buckets plus heap entries."""
        return self._model.words(5 * len(self._list)) + self._model.heap_entries(
            len(self._heap)
        )

    # -- internals -----------------------------------------------------------

    def _push_pair_key(self, left: BucketNode) -> None:
        key = left.bucket.merge_cost_with(left.next.bucket)
        left.pair_handle = self._heap.push(key, left)

    def _drop_pair_key(self, left: BucketNode) -> None:
        if left.pair_handle is not None:
            self._heap.remove(left.pair_handle)
            left.pair_handle = None

    def _merge_min_pair(self) -> None:
        _key, left = self._heap.pop_min()
        left.pair_handle = None
        right = left.next
        self._drop_pair_key(right)
        if left.prev is not None:
            self._drop_pair_key(left.prev)
        left.bucket.absorb(right.bucket)
        self._list.remove(right)
        if left.prev is not None:
            self._push_pair_key(left.prev)
        if left.next is not None:
            self._push_pair_key(left)
