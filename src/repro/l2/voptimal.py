"""The exact V-optimal histogram (Jagadish et al. [17]).

Dynamic program over prefixes: ``E[k][j]`` is the minimum total SSE of the
length-``j`` prefix using ``k`` buckets, with the transition splitting off
the last bucket.  Interval costs come from :class:`~repro.l2.sse.PrefixSSE`
in O(1), giving O(n^2 B) time and O(n) rolling space -- exactly the
algorithm the paper cites as the offline gold standard for the L2 metric
(and the reason it does not stream: the transition needs random access to
the whole prefix).

For the moderate ``n`` of the comparison benchmarks this is exact and
fast enough; ``max_points`` guards accidental quadratic blowups.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.histogram import Histogram, Segment
from repro.exceptions import InvalidParameterError
from repro.l2.sse import PrefixSSE

#: Refuse quadratic work beyond this size unless the caller overrides.
DEFAULT_MAX_POINTS = 20_000


def voptimal_error(
    values: Sequence, buckets: int, *, max_points: int = DEFAULT_MAX_POINTS
) -> float:
    """Minimum total SSE of any ``buckets``-bucket histogram of ``values``."""
    table = _dp_table(values, buckets, max_points)
    return table[-1][len(values)]


def voptimal_histogram(
    values: Sequence, buckets: int, *, max_points: int = DEFAULT_MAX_POINTS
) -> Histogram:
    """The exact V-optimal histogram (mean-representative buckets).

    The returned :class:`Histogram`'s ``error`` field carries the **total
    SSE** (the V-optimal objective), not an L-infinity error -- callers
    comparing across metrics should measure both explicitly.
    """
    table = _dp_table(values, buckets, max_points)
    n = len(values)
    buckets = min(buckets, n)
    prefix = PrefixSSE(values)
    # Backtrack the split points.
    bounds = [n]
    j = n
    for k in range(buckets, 1, -1):
        target = table[k][j]
        # Find a split i with table[k-1][i] + sse(i, j-1) == target.
        found = None
        for i in range(k - 1, j):
            candidate = table[k - 1][i] + prefix.sse(i, j - 1)
            if abs(candidate - target) <= 1e-9 * max(1.0, abs(target)):
                found = i
                break
        if found is None:  # numeric fallback: best split
            found = min(
                range(k - 1, j),
                key=lambda i: table[k - 1][i] + prefix.sse(i, j - 1),
            )
        bounds.append(found)
        j = found
    bounds.append(0)
    bounds.reverse()
    segments = []
    total_sse = 0.0
    for beg, end in zip(bounds, bounds[1:]):
        rep = prefix.mean(beg, end - 1)
        segments.append(Segment(beg, end - 1, rep, rep))
        total_sse += prefix.sse(beg, end - 1)
    return Histogram(segments, total_sse)


def _dp_table(values: Sequence, buckets: int, max_points: int) -> list[list[float]]:
    if buckets < 1:
        raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
    if len(values) == 0:
        raise InvalidParameterError("cannot build a histogram of no values")
    n = len(values)
    if n > max_points:
        raise InvalidParameterError(
            f"V-optimal DP is O(n^2 B); refusing n={n} > max_points="
            f"{max_points} (override max_points to force)"
        )
    buckets = min(buckets, n)
    prefix = PrefixSSE(values)
    inf = float("inf")
    # table[k][j]: optimal SSE of prefix length j with k buckets.  Row 0 is
    # the empty-bucket base (only j=0 feasible).  The transition over all
    # split points i is vectorized with numpy (interval SSE from prefix
    # sums), which is what makes the O(n^2 B) table tractable at the
    # benchmark sizes.
    import numpy as np

    cum = np.asarray(prefix._sum)
    cumsq = np.asarray(prefix._sumsq)
    table = [[inf] * (n + 1) for _ in range(buckets + 1)]
    table[0][0] = 0.0
    for j in range(1, n + 1):
        table[1][j] = prefix.sse(0, j - 1)
    prev_row = np.array(table[1])
    for k in range(2, buckets + 1):
        cur_row = np.full(n + 1, inf)
        for j in range(k, n + 1):
            # Last bucket covers values[i .. j-1] for i in [k-1, j-1].
            i = np.arange(k - 1, j)
            counts = j - i
            totals = cum[j] - cum[i]
            sses = cumsq[j] - cumsq[i] - totals * totals / counts
            candidates = prev_row[i] + np.maximum(sses, 0.0)
            cur_row[j] = candidates.min()
        table[k] = cur_row.tolist()
        prev_row = cur_row
    # Splitting a bucket never increases SSE, so the exactly-k optimum at
    # k = min(buckets, n) is also the <=-k optimum; no extra fixup needed.
    return table
