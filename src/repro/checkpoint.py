"""Checkpointing: full state round-trips for long-running summaries.

A sensor node or stream processor that restarts must not lose its summary
of the last million items.  :func:`state_dict` captures the complete
internal state of a summary as plain data (JSON-safe lists, numbers,
strings) and :func:`restore` rebuilds an equivalent summary -- *exactly*
equivalent: every future insert produces the same buckets, errors, and
memory accounting as if the process had never stopped (property-tested in
``tests/test_checkpoint.py``).

Supported summary types: :class:`MinMergeHistogram`,
:class:`MinIncrementHistogram`, and :class:`SlidingWindowMinIncrement` --
the three the paper's deployment scenarios run unattended.

**Instrumentation policy**: metrics (``docs/OBSERVABILITY.md``) are
process-local observability state, not summary state, so they are *not*
serialized -- :func:`restore` always returns an uninstrumented summary
(``summary.metrics is None``), and counters start from zero if the caller
re-enables instrumentation.  This is deliberate: a checkpoint restored on
another machine would otherwise report the dead process's latency
timeline as its own.  Re-enable by constructing with ``metrics=`` and
replaying, or by attaching a fresh registry to a restored summary via its
constructor arguments; algorithm state round-trips exactly either way
(tested in ``tests/test_observability.py``).
"""

from __future__ import annotations

from repro.core.bucket import Bucket
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.sliding_window import (
    SlidingWindowMinIncrement,
    _WindowedGreedySummary,
)
from repro.exceptions import InvalidParameterError


def state_dict(summary) -> dict:
    """Serialize a supported summary's full state to plain data."""
    if isinstance(summary, MinMergeHistogram):
        return _min_merge_state(summary)
    if isinstance(summary, MinIncrementHistogram):
        return _min_increment_state(summary)
    if isinstance(summary, SlidingWindowMinIncrement):
        return _sliding_window_state(summary)
    raise InvalidParameterError(
        f"checkpointing not supported for {type(summary).__name__}"
    )


def restore(state: dict):
    """Rebuild a summary from :func:`state_dict` output."""
    try:
        kind = state["kind"]
    except (KeyError, TypeError) as exc:
        raise InvalidParameterError(f"malformed checkpoint: {exc}") from exc
    builders = {
        "min-merge": _restore_min_merge,
        "min-increment": _restore_min_increment,
        "sliding-window": _restore_sliding_window,
    }
    try:
        builder = builders[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown checkpoint kind {kind!r}"
        ) from None
    try:
        return builder(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed checkpoint: {exc}") from exc


# -- MIN-MERGE ----------------------------------------------------------------


def _bucket_tuple(bucket: Bucket) -> list:
    return [bucket.beg, bucket.end, bucket.min, bucket.max]


def _min_merge_state(summary: MinMergeHistogram) -> dict:
    return {
        "kind": "min-merge",
        "buckets": summary.target_buckets,
        "working_buckets": summary.working_buckets,
        "findmin": summary.findmin,
        "items_seen": summary.items_seen,
        "bucket_list": [_bucket_tuple(b) for b in summary.buckets_snapshot()],
    }


def _restore_min_merge(state: dict) -> MinMergeHistogram:
    summary = MinMergeHistogram(
        buckets=state["buckets"],
        working_buckets=state["working_buckets"],
        findmin=state["findmin"],
    )
    summary._n = state["items_seen"]
    for beg, end, lo, hi in state["bucket_list"]:
        node = summary._list.append(Bucket(beg, end, lo, hi))
        if node.prev is not None and summary.findmin == "heap":
            summary._push_pair_key(node.prev)
    return summary


# -- GREEDY-INSERT / MIN-INCREMENT ------------------------------------------------


def _greedy_state(greedy: GreedyInsertSummary) -> dict:
    return {
        "target_error": greedy.target_error,
        "closed": [_bucket_tuple(b) for b in greedy._closed],
        "open": _bucket_tuple(greedy._open) if greedy._open is not None else None,
        "next_index": greedy._next_index,
    }


def _restore_greedy(data: dict) -> GreedyInsertSummary:
    greedy = GreedyInsertSummary(data["target_error"])
    greedy._closed = [Bucket(*item) for item in data["closed"]]
    greedy._open = Bucket(*data["open"]) if data["open"] is not None else None
    greedy._next_index = data["next_index"]
    return greedy


def _min_increment_state(summary: MinIncrementHistogram) -> dict:
    return {
        "kind": "min-increment",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "include_zero": summary.ladder[0] == 0.0,
        "batch_size": summary._batch_size,
        "items_seen": summary.items_seen,
        "buffer": list(summary._buffer),
        "summaries": [_greedy_state(s) for s in summary._summaries],
    }


def _restore_min_increment(state: dict) -> MinIncrementHistogram:
    summary = MinIncrementHistogram(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        include_zero_level=state["include_zero"],
        batch_size=state["batch_size"],
    )
    summary._n = state["items_seen"]
    summary._buffer = list(state["buffer"])
    summary._summaries = [_restore_greedy(s) for s in state["summaries"]]
    return summary


# -- sliding window -----------------------------------------------------------------


def _windowed_state(level: _WindowedGreedySummary) -> dict:
    return {
        "target_error": level.target_error,
        "closed": [_bucket_tuple(b) for b in level.closed],
        "open": _bucket_tuple(level.open) if level.open is not None else None,
    }


def _sliding_window_state(summary: SlidingWindowMinIncrement) -> dict:
    return {
        "kind": "sliding-window",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "window": summary.window,
        "include_zero": summary.ladder[0] == 0.0,
        "items_seen": summary.items_seen,
        "levels": [_windowed_state(level) for level in summary._summaries],
    }


def _restore_sliding_window(state: dict) -> SlidingWindowMinIncrement:
    summary = SlidingWindowMinIncrement(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        window=state["window"],
        include_zero_level=state["include_zero"],
    )
    summary._n = state["items_seen"]
    levels = []
    for data in state["levels"]:
        level = _WindowedGreedySummary(data["target_error"])
        level.closed.extend(Bucket(*item) for item in data["closed"])
        level.open = Bucket(*data["open"]) if data["open"] is not None else None
        levels.append(level)
    summary._summaries = levels
    return summary


def to_json(summary) -> str:
    """JSON form of :func:`state_dict`."""
    import json

    return json.dumps(state_dict(summary), separators=(",", ":"))


def from_json(payload: str):
    """Inverse of :func:`to_json`."""
    import json

    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"malformed checkpoint JSON: {exc}") from exc
    return restore(state)
