"""Checkpointing: full state round-trips for long-running summaries.

A sensor node or stream processor that restarts must not lose its summary
of the last million items.  :func:`state_dict` captures the complete
internal state of a summary as plain data (JSON-safe lists, numbers,
strings) and :func:`restore` rebuilds an equivalent summary -- *exactly*
equivalent: every future insert produces the same buckets, errors, and
memory accounting as if the process had never stopped (property-tested in
``tests/test_checkpoint.py`` and ``tests/test_resilience.py``).

Every summary in the harness registry is supported (see
:data:`SUPPORTED_KINDS`): the serial pair (MIN-MERGE / MIN-INCREMENT), the
REHIST baseline, both PWL variants, both sliding windows, plus the
building-block :class:`GreedyInsertSummary` and a whole
:class:`~repro.fleet.StreamFleet` (serialized as its per-stream states).
Unsupported objects raise
:class:`~repro.exceptions.UnsupportedCheckpointError` naming the type and
the supported set.

Durable on-disk checkpoints -- atomic rotation, checksums, journal replay
-- live one layer up in :mod:`repro.resilience`; this module only defines
the state payloads.

**Instrumentation policy**: metrics (``docs/OBSERVABILITY.md``) are
process-local observability state, not summary state, so they are *not*
serialized -- :func:`restore` always returns an uninstrumented summary
(``summary.metrics is None``), and counters start from zero if the caller
re-enables instrumentation.  This is deliberate: a checkpoint restored on
another machine would otherwise report the dead process's latency
timeline as its own.  Re-enable by constructing with ``metrics=`` and
replaying, or by attaching a fresh registry to a restored summary via its
constructor arguments; algorithm state round-trips exactly either way
(tested in ``tests/test_observability.py``).
"""

from __future__ import annotations

from repro.baselines.rehist import RehistHistogram, _BreakpointList
from repro.core.bucket import Bucket
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_bucket import ClosedPwlBucket, PwlBucket
from repro.core.pwl_min_increment import (
    PwlGreedyInsertSummary,
    PwlMinIncrementHistogram,
)
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import (
    SlidingWindowMinIncrement,
    _WindowedGreedySummary,
)
from repro.core.sliding_window_pwl import (
    SlidingWindowPwlMinIncrement,
    _WindowedPwlGreedySummary,
)
from repro.exceptions import (
    InvalidParameterError,
    UnsupportedCheckpointError,
)
from repro.fleet import StreamFleet

#: Checkpoint kinds understood by :func:`restore`, i.e. the values the
#: serialized ``state["kind"]`` field may take.
SUPPORTED_KINDS = (
    "min-merge",
    "min-increment",
    "rehist",
    "pwl-min-merge",
    "pwl-min-increment",
    "sliding-window",
    "sliding-window-pwl",
    "greedy-insert",
    "fleet",
)


#: Summary classes :func:`state_dict` accepts (isinstance targets).
CHECKPOINTABLE_CLASSES = (
    MinMergeHistogram,
    MinIncrementHistogram,
    RehistHistogram,
    PwlMinMergeHistogram,
    PwlMinIncrementHistogram,
    SlidingWindowMinIncrement,
    SlidingWindowPwlMinIncrement,
    GreedyInsertSummary,
    StreamFleet,
)


def checkpointable(obj) -> bool:
    """True when :func:`state_dict` supports ``obj`` (class or instance).

    The capability probe behind ``repro.api.methods()`` and the service
    engine's per-tenant checkpoint gating.
    """
    if isinstance(obj, type):
        return issubclass(obj, CHECKPOINTABLE_CLASSES)
    return isinstance(obj, CHECKPOINTABLE_CLASSES)


def state_dict(summary) -> dict:
    """Serialize a supported summary's full state to plain data."""
    # MinIncrement before its PWL sibling only for symmetry with restore;
    # the isinstance chain has no ambiguous pairs.
    if isinstance(summary, MinMergeHistogram):
        return _min_merge_state(summary)
    if isinstance(summary, MinIncrementHistogram):
        return _min_increment_state(summary)
    if isinstance(summary, RehistHistogram):
        return _rehist_state(summary)
    if isinstance(summary, PwlMinMergeHistogram):
        return _pwl_min_merge_state(summary)
    if isinstance(summary, PwlMinIncrementHistogram):
        return _pwl_min_increment_state(summary)
    if isinstance(summary, SlidingWindowMinIncrement):
        return _sliding_window_state(summary)
    if isinstance(summary, SlidingWindowPwlMinIncrement):
        return _sliding_window_pwl_state(summary)
    if isinstance(summary, GreedyInsertSummary):
        return {"kind": "greedy-insert", **_greedy_state(summary)}
    if isinstance(summary, StreamFleet):
        return _fleet_state(summary)
    raise UnsupportedCheckpointError(
        f"checkpointing not supported for {type(summary).__name__}; "
        f"supported kinds: {', '.join(SUPPORTED_KINDS)}"
    )


def restore(state: dict):
    """Rebuild a summary from :func:`state_dict` output."""
    try:
        kind = state["kind"]
    except (KeyError, TypeError) as exc:
        raise InvalidParameterError(f"malformed checkpoint: {exc}") from exc
    builders = {
        "min-merge": _restore_min_merge,
        "min-increment": _restore_min_increment,
        "rehist": _restore_rehist,
        "pwl-min-merge": _restore_pwl_min_merge,
        "pwl-min-increment": _restore_pwl_min_increment,
        "sliding-window": _restore_sliding_window,
        "sliding-window-pwl": _restore_sliding_window_pwl,
        "greedy-insert": _restore_greedy,
        "fleet": _restore_fleet,
    }
    try:
        builder = builders[kind]
    except KeyError:
        raise UnsupportedCheckpointError(
            f"unknown checkpoint kind {kind!r}; "
            f"supported kinds: {', '.join(SUPPORTED_KINDS)}"
        ) from None
    try:
        return builder(state)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, UnsupportedCheckpointError):
            raise
        raise InvalidParameterError(f"malformed checkpoint: {exc}") from exc


# -- MIN-MERGE ----------------------------------------------------------------


def _bucket_tuple(bucket: Bucket) -> list:
    return [bucket.beg, bucket.end, bucket.min, bucket.max]


def _min_merge_state(summary: MinMergeHistogram) -> dict:
    return {
        "kind": "min-merge",
        "buckets": summary.target_buckets,
        "working_buckets": summary.working_buckets,
        "findmin": summary.findmin,
        "backend": summary.backend,
        "items_seen": summary.items_seen,
        "bucket_list": [_bucket_tuple(b) for b in summary.buckets_snapshot()],
    }


def _restore_min_merge(state: dict) -> MinMergeHistogram:
    # The bucket list is the whole algorithmic state, and adopt_buckets
    # rebuilds any backend's internals from it -- so a checkpoint written
    # by one backend restores under the other (flip state["backend"]).
    summary = MinMergeHistogram(
        buckets=state["buckets"],
        working_buckets=state["working_buckets"],
        findmin=state["findmin"],
        backend=state.get("backend", "object"),
    )
    summary.adopt_buckets(
        [Bucket(beg, end, lo, hi) for beg, end, lo, hi in state["bucket_list"]],
        count=0,
    )
    summary._n = state["items_seen"]
    return summary


# -- GREEDY-INSERT / MIN-INCREMENT ------------------------------------------------


def _greedy_state(greedy: GreedyInsertSummary) -> dict:
    return {
        "target_error": greedy.target_error,
        "closed": [_bucket_tuple(b) for b in greedy._closed],
        "open": _bucket_tuple(greedy._open) if greedy._open is not None else None,
        "next_index": greedy._next_index,
    }


def _restore_greedy(data: dict) -> GreedyInsertSummary:
    greedy = GreedyInsertSummary(data["target_error"])
    greedy._closed = [Bucket(*item) for item in data["closed"]]
    greedy._open = Bucket(*data["open"]) if data["open"] is not None else None
    greedy._next_index = data["next_index"]
    return greedy


def _min_increment_state(summary: MinIncrementHistogram) -> dict:
    return {
        "kind": "min-increment",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "include_zero": summary.ladder[0] == 0.0,
        "batch_size": summary._batch_size,
        "items_seen": summary.items_seen,
        "buffer": list(summary._buffer),
        "summaries": [_greedy_state(s) for s in summary._summaries],
    }


def _restore_min_increment(state: dict) -> MinIncrementHistogram:
    summary = MinIncrementHistogram(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        include_zero_level=state["include_zero"],
        batch_size=state["batch_size"],
    )
    summary._n = state["items_seen"]
    summary._buffer = list(state["buffer"])
    summary._summaries = [_restore_greedy(s) for s in state["summaries"]]
    return summary


# -- REHIST -------------------------------------------------------------------


def _stack_state(stack) -> dict:
    return {
        "positions": list(stack._positions),
        "values": list(stack._values),
        "count": stack._count,
    }


def _restore_stack(stack, data: dict) -> None:
    stack._positions = [int(p) for p in data["positions"]]
    stack._values = list(data["values"])
    stack._count = int(data["count"])


def _rehist_state(summary: RehistHistogram) -> dict:
    return {
        "kind": "rehist",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "delta": summary.delta,
        "items_seen": summary.items_seen,
        "current_error": summary._current_error,
        "levels": [
            {
                "positions": list(level.positions),
                "values": list(level.values),
                "anchor": level._anchor,
            }
            for level in summary._levels
        ],
        "maxima": _stack_state(summary._window._maxima),
        "minima": _stack_state(summary._window._minima),
    }


def _restore_rehist(state: dict) -> RehistHistogram:
    summary = RehistHistogram(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        delta=state["delta"],
    )
    summary._n = state["items_seen"]
    summary._current_error = state["current_error"]
    levels = []
    for data in state["levels"]:
        level = _BreakpointList(summary.delta)
        level.positions = [int(p) for p in data["positions"]]
        level.values = list(data["values"])
        level._anchor = data["anchor"]
        levels.append(level)
    if len(levels) != max(0, summary.target_buckets - 1):
        raise InvalidParameterError(
            f"rehist checkpoint has {len(levels)} breakpoint lists, "
            f"expected {max(0, summary.target_buckets - 1)}"
        )
    summary._levels = levels
    _restore_stack(summary._window._maxima, state["maxima"])
    _restore_stack(summary._window._minima, state["minima"])
    return summary


# -- PWL MIN-MERGE / MIN-INCREMENT --------------------------------------------


def _closed_pwl_tuple(bucket: ClosedPwlBucket) -> list:
    return [bucket.beg, bucket.end, bucket.left, bucket.right, bucket.error]


def _closed_pwl_from(item) -> ClosedPwlBucket:
    beg, end, left, right, error = item
    return ClosedPwlBucket(
        beg=int(beg), end=int(end), left=left, right=right, error=error
    )


def _pwl_min_merge_state(summary: PwlMinMergeHistogram) -> dict:
    return {
        "kind": "pwl-min-merge",
        "buckets": summary.target_buckets,
        "working_buckets": summary.working_buckets,
        "hull_epsilon": summary.hull_epsilon,
        "backend": summary.backend,
        "items_seen": summary.items_seen,
        "bucket_list": [b.to_state() for b in summary.buckets_snapshot()],
    }


def _restore_pwl_min_merge(state: dict) -> PwlMinMergeHistogram:
    # Backend-agnostic for the same reason as _restore_min_merge.
    summary = PwlMinMergeHistogram(
        buckets=state["buckets"],
        working_buckets=state["working_buckets"],
        hull_epsilon=state["hull_epsilon"],
        backend=state.get("backend", "object"),
    )
    summary.adopt_buckets(
        [PwlBucket.from_state(item) for item in state["bucket_list"]],
        count=0,
    )
    summary._n = state["items_seen"]
    return summary


def _pwl_greedy_state(level: PwlGreedyInsertSummary) -> dict:
    return {
        "target_error": level.target_error,
        "closed": [_closed_pwl_tuple(b) for b in level.closed],
        "open": level.open.to_state() if level.open is not None else None,
        "next_index": level._next_index,
    }


def _restore_pwl_greedy(
    data: dict, hull_epsilon
) -> PwlGreedyInsertSummary:
    level = PwlGreedyInsertSummary(
        data["target_error"], hull_epsilon=hull_epsilon
    )
    level.closed = [_closed_pwl_from(item) for item in data["closed"]]
    level.open = (
        PwlBucket.from_state(data["open"]) if data["open"] is not None else None
    )
    level._next_index = int(data["next_index"])
    return level


def _pwl_min_increment_state(summary: PwlMinIncrementHistogram) -> dict:
    return {
        "kind": "pwl-min-increment",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "hull_epsilon": summary.hull_epsilon,
        "include_zero": summary.ladder[0] == 0.0,
        "items_seen": summary.items_seen,
        "summaries": [_pwl_greedy_state(s) for s in summary._summaries],
    }


def _restore_pwl_min_increment(state: dict) -> PwlMinIncrementHistogram:
    summary = PwlMinIncrementHistogram(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        hull_epsilon=state["hull_epsilon"],
        include_zero_level=state["include_zero"],
    )
    summary._n = state["items_seen"]
    # Only the surviving ladder levels are serialized; dead levels stay dead.
    summary._summaries = [
        _restore_pwl_greedy(s, summary.hull_epsilon)
        for s in state["summaries"]
    ]
    return summary


# -- sliding window -----------------------------------------------------------------


def _windowed_state(level: _WindowedGreedySummary) -> dict:
    return {
        "target_error": level.target_error,
        "closed": [_bucket_tuple(b) for b in level.closed],
        "open": _bucket_tuple(level.open) if level.open is not None else None,
    }


def _sliding_window_state(summary: SlidingWindowMinIncrement) -> dict:
    return {
        "kind": "sliding-window",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "window": summary.window,
        "include_zero": summary.ladder[0] == 0.0,
        "items_seen": summary.items_seen,
        "levels": [_windowed_state(level) for level in summary._summaries],
    }


def _restore_sliding_window(state: dict) -> SlidingWindowMinIncrement:
    summary = SlidingWindowMinIncrement(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        window=state["window"],
        include_zero_level=state["include_zero"],
    )
    summary._n = state["items_seen"]
    levels = []
    for data in state["levels"]:
        level = _WindowedGreedySummary(data["target_error"])
        level.closed.extend(Bucket(*item) for item in data["closed"])
        level.open = Bucket(*data["open"]) if data["open"] is not None else None
        levels.append(level)
    summary._summaries = levels
    return summary


def _windowed_pwl_state(level: _WindowedPwlGreedySummary) -> dict:
    return {
        "target_error": level.target_error,
        "closed": [_closed_pwl_tuple(b) for b in level.closed],
        "open": level.open.to_state() if level.open is not None else None,
    }


def _sliding_window_pwl_state(summary: SlidingWindowPwlMinIncrement) -> dict:
    return {
        "kind": "sliding-window-pwl",
        "buckets": summary.target_buckets,
        "epsilon": summary.epsilon,
        "universe": summary.universe,
        "window": summary.window,
        "hull_epsilon": summary.hull_epsilon,
        "include_zero": summary.ladder[0] == 0.0,
        "items_seen": summary.items_seen,
        "levels": [_windowed_pwl_state(level) for level in summary._summaries],
    }


def _restore_sliding_window_pwl(state: dict) -> SlidingWindowPwlMinIncrement:
    summary = SlidingWindowPwlMinIncrement(
        buckets=state["buckets"],
        epsilon=state["epsilon"],
        universe=state["universe"],
        window=state["window"],
        hull_epsilon=state["hull_epsilon"],
        include_zero_level=state["include_zero"],
    )
    summary._n = state["items_seen"]
    levels = []
    for data in state["levels"]:
        level = _WindowedPwlGreedySummary(
            data["target_error"], summary.hull_epsilon
        )
        level.closed.extend(_closed_pwl_from(item) for item in data["closed"])
        level.open = (
            PwlBucket.from_state(data["open"])
            if data["open"] is not None
            else None
        )
        levels.append(level)
    summary._summaries = levels
    return summary


# -- fleet --------------------------------------------------------------------


def _fleet_state(fleet: StreamFleet) -> dict:
    # Stream ids must survive a JSON round trip for to_json/from_json;
    # stored as [id, state] pairs to keep non-string ids (ints) intact.
    return {
        "kind": "fleet",
        "algorithm": fleet.algorithm,
        "config": fleet.config,
        "streams": [
            [stream_id, state_dict(fleet.summary(stream_id))]
            for stream_id in fleet.ids
        ],
    }


def _restore_fleet(state: dict) -> StreamFleet:
    config = state["config"]
    fleet = StreamFleet(
        buckets=config["buckets"],
        algorithm=state["algorithm"],
        epsilon=config["epsilon"],
        universe=config["universe"],
        window=config["window"],
    )
    for stream_id, stream_state in state["streams"]:
        fleet.adopt_stream(stream_id, restore(stream_state))
    return fleet


def to_json(summary) -> str:
    """JSON form of :func:`state_dict`."""
    import json

    return json.dumps(state_dict(summary), separators=(",", ":"))


def from_json(payload: str):
    """Inverse of :func:`to_json`."""
    import json

    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"malformed checkpoint JSON: {exc}") from exc
    return restore(state)
