"""Size-capped approximate convex hulls (the paper's use of Chan [3]).

The PWL theorems bound memory by keeping each bucket's hull at
O(eps^{-1/2} log(1/eps)) vertices via Chan's streaming coreset.  This module
substitutes a *directional epsilon-kernel* with the same O(eps^{-1/2}) size
profile (DESIGN.md item 1): whenever the exact hull grows past a threshold,
it is compressed to the subset of vertices extreme along k uniformly spaced
directions, evaluated after an affine normalization (rotate the diameter to
the x-axis, then scale both axes to unit extent) that makes the body fat so
the directional grid guarantees a *relative* width error.

Because the kernel is a subset of the true hull vertices, the approximate
hull is an inner approximation: every directional width -- and therefore
the vertical width used for the Chebyshev line fit -- satisfies

    (1 - eps) * width(hull)  <=  width(kernel)  <=  width(hull),

which is exactly property (3) that the PWL approximation analysis needs.
The test suite validates the lower bound empirically on random and
adversarial buckets.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.point import Point


def kernel_direction_count(epsilon: float) -> int:
    """Number of grid directions for a target relative width error eps."""
    if not 0 < epsilon < 1:
        raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(4, math.ceil(math.pi * math.sqrt(5.0 / epsilon)))


def directional_kernel(vertices: Sequence[Point], directions: int) -> list[Point]:
    """Extreme subset of ``vertices`` along a normalized direction grid.

    ``vertices`` should be convex-position points (hull vertices); the
    result is a subset containing, for each of ``directions`` uniformly
    spaced directions over the half-circle, the points extreme in both
    orientations -- evaluated in the fat-normalized frame described in the
    module docs.  The global x- and y-extreme points are always retained.
    """
    verts = list(vertices)
    if len(verts) <= 2 * directions + 4:
        return sorted(verts, key=lambda p: p[0])
    # Affine normalization: rotate the diameter onto the x-axis, scale to
    # the unit box.  O(h^2) diameter search is fine at these sizes.
    ax, ay, bx, by = _diameter(verts)
    angle = math.atan2(by - ay, bx - ax)
    cos_a, sin_a = math.cos(-angle), math.sin(-angle)
    rotated = [
        (x * cos_a - y * sin_a, x * sin_a + y * cos_a) for x, y in verts
    ]
    xs = [p[0] for p in rotated]
    ys = [p[1] for p in rotated]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    normalized = [
        ((x - x_lo) / x_span, (y - y_lo) / y_span) for x, y in rotated
    ]
    keep: set[int] = set()
    for j in range(directions):
        theta = math.pi * j / directions
        ux, uy = math.cos(theta), math.sin(theta)
        best_hi = best_lo = 0
        hi_val = lo_val = normalized[0][0] * ux + normalized[0][1] * uy
        for i in range(1, len(normalized)):
            val = normalized[i][0] * ux + normalized[i][1] * uy
            if val > hi_val:
                hi_val, best_hi = val, i
            if val < lo_val:
                lo_val, best_lo = val, i
        keep.add(best_hi)
        keep.add(best_lo)
    # Original-frame axis extremes guard degenerate normalizations and keep
    # the bucket's index range intact.
    for axis in (0, 1):
        keep.add(min(range(len(verts)), key=lambda i: verts[i][axis]))
        keep.add(max(range(len(verts)), key=lambda i: verts[i][axis]))
    return sorted((verts[i] for i in keep), key=lambda p: p[0])


class ApproximateHull:
    """A :class:`StreamingHull` kept below a size cap by kernel compression.

    Parameters
    ----------
    epsilon:
        Target relative width error of property (3); smaller values keep
        more vertices.
    compress_factor:
        The exact hull is allowed to grow to ``compress_factor`` times the
        kernel size before a compression pass runs, amortizing its cost.

    Compression never runs implicitly inside :meth:`add` -- callers that
    need :meth:`undo_last_add` (GREEDY-INSERT trials) call
    :meth:`maybe_compress` only after committing an insertion.
    """

    __slots__ = ("epsilon", "_inner", "_directions", "_threshold")

    def __init__(self, epsilon: float = 0.1, *, compress_factor: float = 2.0):
        if compress_factor < 1.0:
            raise InvalidParameterError(
                f"compress_factor must be >= 1, got {compress_factor}"
            )
        self.epsilon = epsilon
        self._directions = kernel_direction_count(epsilon)
        self._threshold = max(
            8, int(compress_factor * (2 * self._directions + 4))
        )
        self._inner = StreamingHull()

    # -- StreamingHull-compatible surface ---------------------------------

    @property
    def lower(self) -> list[Point]:
        """Lower chain of the current (possibly compressed) hull."""
        return self._inner.lower

    @property
    def upper(self) -> list[Point]:
        """Upper chain of the current (possibly compressed) hull."""
        return self._inner.upper

    @property
    def point_count(self) -> int:
        """Number of points ever added (not hull vertices)."""
        return self._inner.point_count

    @property
    def vertex_count(self) -> int:
        """Distinct hull vertices currently stored."""
        return self._inner.vertex_count

    @property
    def stored_entries(self) -> int:
        """Chain entries as stored (endpoints double-counted)."""
        return self._inner.stored_entries

    def __bool__(self) -> bool:
        return bool(self._inner)

    def add(self, x, y) -> None:
        """Insert a point with strictly increasing x (no compression)."""
        self._inner.add(x, y)

    def y_extent(self) -> tuple:
        """``(min_y, max_y)`` over the currently stored points."""
        return self._inner.y_extent()

    def undo_last_add(self) -> None:
        """Roll back the most recent :meth:`add` exactly."""
        self._inner.undo_last_add()

    def vertices(self) -> list[Point]:
        """All hull vertices, counterclockwise."""
        return self._inner.vertices()

    def to_state(self) -> dict:
        """JSON-safe snapshot: epsilon, compression threshold, inner hull."""
        return {
            "epsilon": self.epsilon,
            "threshold": self._threshold,
            "inner": self._inner.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ApproximateHull":
        """Rebuild from :meth:`to_state` output (exact round trip)."""
        hull = cls(float(state["epsilon"]))
        hull._threshold = int(state["threshold"])
        hull._inner = StreamingHull.from_state(state["inner"])
        return hull

    def maybe_compress(self) -> bool:
        """Compress to the directional kernel if over threshold.

        Returns True when a compression pass ran.  Invalidates any pending
        ``undo_last_add``.
        """
        if self._inner.stored_entries <= self._threshold:
            return False
        kept = directional_kernel(self._inner.vertices(), self._directions)
        count = self._inner.point_count
        self._inner = StreamingHull.from_points(kept)
        self._inner._count = count  # preserve the points-seen counter
        return True

    def union(self, other: "ApproximateHull") -> "ApproximateHull":
        """Kernel-compressed hull of the union with an x-disjoint hull."""
        merged = ApproximateHull(self.epsilon)
        merged._threshold = self._threshold
        merged._inner = self._inner.union(_inner_of(other))
        merged.maybe_compress()
        return merged


def _inner_of(hull) -> StreamingHull:
    if isinstance(hull, ApproximateHull):
        return hull._inner
    if isinstance(hull, StreamingHull):
        return hull
    raise InvalidParameterError(f"cannot union with {type(hull).__name__}")


def _diameter(verts: Sequence[Point]) -> tuple[float, float, float, float]:
    """Endpoints of the farthest pair (brute force; hulls are small here)."""
    best = -1.0
    result: Optional[tuple] = None
    for i, (xi, yi) in enumerate(verts):
        for xj, yj in verts[i + 1:]:
            d = (xj - xi) ** 2 + (yj - yi) ** 2
            if d > best:
                best = d
                result = (xi, yi, xj, yj)
    if result is None:  # single vertex
        x, y = verts[0]
        result = (x, y, x, y)
    return result
