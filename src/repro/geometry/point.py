"""Planar point primitives.

Points are plain ``(x, y)`` tuples throughout the geometry subpackage --
bucket hulls are small but manipulated constantly, so avoiding a wrapper
class keeps the constant factors low.  When coordinates are integers (the
stream index and the integer value domain of the paper) the orientation
predicate below is exact.
"""

from __future__ import annotations

Point = tuple  # (x, y)


def cross(o: Point, a: Point, b: Point):
    """Signed cross product of vectors ``o->a`` and ``o->b``.

    Positive for a counterclockwise (left) turn, negative for clockwise,
    zero for collinear points.  Exact for integer inputs.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def orientation(o: Point, a: Point, b: Point) -> int:
    """Sign of :func:`cross`: 1 (left turn), -1 (right turn), 0 (collinear)."""
    c = cross(o, a, b)
    if c > 0:
        return 1
    if c < 0:
        return -1
    return 0
