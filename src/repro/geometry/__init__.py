"""Computational-geometry substrate for the PWL histograms (Section 3)."""

from repro.geometry.point import cross, orientation
from repro.geometry.convex_hull import StreamingHull, convex_hull
from repro.geometry.fit import LineFit, best_line_fit, vertical_width
from repro.geometry.width import (
    euclidean_width,
    thinnest_bounding_rectangle,
)
from repro.geometry.kernel import ApproximateHull, directional_kernel

__all__ = [
    "cross",
    "orientation",
    "StreamingHull",
    "convex_hull",
    "LineFit",
    "best_line_fit",
    "vertical_width",
    "euclidean_width",
    "thinnest_bounding_rectangle",
    "ApproximateHull",
    "directional_kernel",
]
