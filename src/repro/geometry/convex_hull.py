"""Convex hulls of bucket point sets.

A PWL bucket holds the points ``(index, value)`` of its stream range, and
needs their convex hull to evaluate the best L-infinity line fit
(Section 3.1).  Stream indices arrive strictly increasing, so the hull can
be maintained with the incremental half of Andrew's monotone chain at
amortized O(1) per point: each insertion pops already-dominated vertices
from the ends of the upper and lower chains, and every vertex is popped at
most once.

:class:`StreamingHull` also supports

* ``undo_last_add`` -- GREEDY-INSERT must test "would this point push the
  bucket error past e?" and back out when it does; recording the vertices a
  single ``add`` popped makes the rollback exact and O(popped);
* ``union`` with an x-disjoint hull -- MIN-MERGE merges *adjacent* buckets,
  whose hull chains concatenate in O(h) (the paper's "two disjoint convex
  hulls can be merged in linear time").

The module-level :func:`convex_hull` is the classic full monotone chain for
arbitrary point sets, used as the test reference.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point, cross


def convex_hull(points: Iterable[Point]) -> list[Point]:
    """Convex hull of arbitrary points, counterclockwise (Andrew's chain).

    Collinear interior points are dropped.  Returns the single point for a
    singleton input and both endpoints for a degenerate (collinear) set.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts
    lower: list[Point] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


class StreamingHull:
    """Convex hull of points added in strictly increasing x order.

    The hull is stored as two chains, both ordered by increasing x:

    * ``lower`` -- the convex ("cup") chain bounding the set from below;
    * ``upper`` -- the concave ("cap") chain bounding it from above.

    The leftmost and rightmost points appear in both chains.
    """

    __slots__ = ("lower", "upper", "_count", "_last_popped")

    def __init__(self) -> None:
        self.lower: list[Point] = []
        self.upper: list[Point] = []
        self._count = 0
        # (popped_lower, popped_upper) of the latest add; each half is
        # ``None`` when that chain popped nothing (lazy allocation).
        self._last_popped: Optional[tuple] = None

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "StreamingHull":
        """Build a hull from x-increasing points."""
        hull = cls()
        for x, y in points:
            hull.add(x, y)
        return hull

    def to_state(self) -> dict:
        """JSON-safe snapshot: both chains plus the points-seen counter.

        The single-level undo buffer is deliberately not captured; a
        restored hull supports :meth:`undo_last_add` only after its next
        :meth:`add`, which is the only order the summaries use.
        """
        return {
            "lower": [[_plain(x), _plain(y)] for x, y in self.lower],
            "upper": [[_plain(x), _plain(y)] for x, y in self.upper],
            "count": self._count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingHull":
        """Rebuild a hull from :meth:`to_state` output (exact round trip)."""
        hull = cls()
        hull.lower = [(x, y) for x, y in state["lower"]]
        hull.upper = [(x, y) for x, y in state["upper"]]
        hull._count = int(state["count"])
        return hull

    @property
    def point_count(self) -> int:
        """Number of points ever added (not hull vertices)."""
        return self._count

    @property
    def vertex_count(self) -> int:
        """Distinct hull vertices currently stored.

        The two chain endpoints are shared; they are counted once.
        """
        if not self.lower:
            return 0
        shared = 1 if len(self.lower) == 1 else 2
        return len(self.lower) + len(self.upper) - shared

    @property
    def stored_entries(self) -> int:
        """Chain entries as stored (endpoints double-counted); memory model."""
        return len(self.lower) + len(self.upper)

    def __bool__(self) -> bool:
        return bool(self.lower)

    def y_extent(self) -> tuple:
        """``(min_y, max_y)`` over the stored points.

        The vertical extremes are hull vertices (they are extreme in the
        -y / +y directions), so the chain minima are exact.  Used by the
        batch-ingest kernels to bound a PWL bucket's fit error by half its
        vertical range.
        """
        if not self.lower:
            raise InvalidParameterError("y_extent of an empty hull")
        return (
            min(y for _x, y in self.lower),
            max(y for _x, y in self.upper),
        )

    def add(self, x, y) -> None:
        """Insert a point with x strictly greater than all previous points.

        This is the PWL ingest hot spot (one call per certified point in
        the batch kernels), so the turn test inlines :func:`cross` --
        identical operations in identical order, no tuple construction or
        call overhead -- and the undo buffers are allocated lazily: the
        steady-state add pops nothing and allocates nothing.
        """
        lower, upper = self.lower, self.upper
        if lower and x <= lower[-1][0]:
            raise InvalidParameterError(
                f"x must be strictly increasing: got {x} after {lower[-1][0]}"
            )
        popped_lower: Optional[list[Point]] = None
        popped_upper: Optional[list[Point]] = None
        while len(lower) >= 2:
            ox, oy = lower[-2]
            ax, ay = lower[-1]
            if (ax - ox) * (y - oy) - (ay - oy) * (x - ox) > 0:
                break
            if popped_lower is None:
                popped_lower = []
            popped_lower.append(lower.pop())
        while len(upper) >= 2:
            ox, oy = upper[-2]
            ax, ay = upper[-1]
            if (ax - ox) * (y - oy) - (ay - oy) * (x - ox) < 0:
                break
            if popped_upper is None:
                popped_upper = []
            popped_upper.append(upper.pop())
        p = (x, y)
        lower.append(p)
        upper.append(p)
        self._count += 1
        self._last_popped = (popped_lower, popped_upper)

    def undo_last_add(self) -> None:
        """Roll back the most recent :meth:`add` exactly.

        Only a single level of undo is supported; calling twice without an
        intervening ``add`` raises.
        """
        if self._last_popped is None:
            raise InvalidParameterError("no add to undo")
        popped_lower, popped_upper = self._last_popped
        self.lower.pop()
        self.upper.pop()
        # Popped vertices were recorded innermost-last; restore in reverse
        # (``None`` = that chain popped nothing, the steady-state case).
        if popped_lower:
            self.lower.extend(reversed(popped_lower))
        if popped_upper:
            self.upper.extend(reversed(popped_upper))
        self._count -= 1
        self._last_popped = None

    def union(self, other: "StreamingHull") -> "StreamingHull":
        """Hull of the union with an x-disjoint hull strictly to the right.

        Runs in O(h) by re-running the chain construction over the
        concatenated chains (each already x-sorted and convex).
        """
        if self.lower and other.lower and other.lower[0][0] <= self.lower[-1][0]:
            raise InvalidParameterError(
                "union requires the other hull to lie strictly to the right"
            )
        merged = StreamingHull()
        merged._count = self._count + other.point_count
        merged.lower = _rebuild_chain(self.lower, other.lower, upper=False)
        merged.upper = _rebuild_chain(self.upper, other.upper, upper=True)
        return merged

    def vertices(self) -> list[Point]:
        """All hull vertices, counterclockwise starting at the leftmost."""
        if not self.lower:
            return []
        if len(self.lower) == 1:
            return [self.lower[0]]
        # Lower chain left-to-right, then upper chain right-to-left with the
        # shared endpoints dropped.
        return self.lower + self.upper[-2:0:-1]

    def check_invariant(self) -> None:
        """Assert chain convexity and shared endpoints (tests)."""
        for chain, name, sign in ((self.lower, "lower", 1), (self.upper, "upper", -1)):
            for i in range(len(chain) - 1):
                if chain[i + 1][0] <= chain[i][0]:
                    raise AssertionError(f"{name} chain x not increasing")
            for i in range(len(chain) - 2):
                turn = cross(chain[i], chain[i + 1], chain[i + 2])
                if sign * turn <= 0:
                    raise AssertionError(f"{name} chain not strictly convex")
        if self.lower or self.upper:
            if self.lower[0] != self.upper[0] or self.lower[-1] != self.upper[-1]:
                raise AssertionError("chain endpoints differ")


def _plain(value):
    """Coerce numpy scalars to plain Python numbers for JSON payloads."""
    return value.item() if hasattr(value, "item") else value


def _rebuild_chain(
    left: list[Point], right: list[Point], *, upper: bool
) -> list[Point]:
    """Monotone-chain pass over two concatenated convex chains."""
    chain: list[Point] = []
    if upper:
        for p in left:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) >= 0:
                chain.pop()
            chain.append(p)
        for p in right:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) >= 0:
                chain.pop()
            chain.append(p)
    else:
        for p in left:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        for p in right:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
    return chain
