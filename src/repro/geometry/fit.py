"""Best L-infinity line fit of a bucket (Section 3.1).

A PWL bucket approximates its points by the line minimizing the largest
*vertical* deviation -- the Chebyshev best-fit line.  Geometrically, the
optimal error is half the **vertical width** of the point set: the height of
the thinnest *vertical-gap* strip bounded by two parallel lines that
sandwich all points, and the optimal line bisects that strip.

(The paper describes fitting via the thinnest bounding rectangle.  The
Euclidean-width rectangle is only a proxy when slopes are large; the exact
optimum for the vertical L-infinity metric is the vertical width computed
here.  DESIGN.md item 2 discusses the substitution; :mod:`repro.geometry.width`
still provides the Euclidean machinery for fidelity.)

As a function of the candidate slope ``s``, the vertical gap

    g(s) = max_i (y_i - s * x_i)  -  min_i (y_i - s * x_i)

is convex piecewise linear; the max term is governed by the upper hull
chain, the min term by the lower chain, and the minimizing slope is always
the slope of some hull edge.  The sweep below visits the merged, sorted
edge slopes of both chains while tracking the argmax/argmin vertices with
two monotone pointers, which makes the whole fit O(h) after the O(h log h)
slope sort (h = hull vertices; buckets keep h tiny).

:func:`vertical_width_naive` is the quadratic reference used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.point import Point


@dataclass(frozen=True)
class LineFit:
    """A fitted line ``y = slope * x + intercept`` with its L-infinity error."""

    slope: float
    intercept: float
    error: float

    def value_at(self, x) -> float:
        """Fitted value at coordinate ``x``."""
        return self.slope * x + self.intercept


def best_line_fit(hull: StreamingHull) -> LineFit:
    """Optimal (Chebyshev) line fit for the points of ``hull``.

    The returned error is ``vertical_width / 2`` and the line bisects the
    optimal strip.  A hull with a single point fits exactly (error 0).
    """
    if not hull:
        raise InvalidParameterError("cannot fit a line to an empty hull")
    slope, gap, upper_pt, lower_pt = _min_vertical_gap(hull.upper, hull.lower)
    top = upper_pt[1] - slope * upper_pt[0]
    bottom = lower_pt[1] - slope * lower_pt[0]
    return LineFit(slope=slope, intercept=(top + bottom) / 2.0, error=gap / 2.0)


def vertical_width(hull: StreamingHull) -> float:
    """Minimal vertical gap of two parallel lines sandwiching the hull."""
    if not hull:
        raise InvalidParameterError("empty hull has no width")
    return _min_vertical_gap(hull.upper, hull.lower)[1]


def _min_vertical_gap(
    upper: Sequence[Point], lower: Sequence[Point]
) -> tuple[float, float, Point, Point]:
    """Core sweep; returns ``(slope, gap, argmax_point, argmin_point)``.

    ``upper``/``lower`` are the hull chains in increasing x.  For slope
    ``s -> -inf`` the maximizer of ``y - s x`` is the rightmost vertex and
    the minimizer is the leftmost; as ``s`` grows, the maximizer walks left
    along the upper chain and the minimizer walks right along the lower
    chain, each pointer advancing past a vertex exactly when ``s`` passes
    the slope of the incident edge.
    """
    if len(upper) == 1:
        p = upper[0]
        return 0.0, 0.0, p, p
    # Candidate slopes: every edge of either chain.
    slopes = sorted(
        {_slope(chain[i], chain[i + 1]) for chain in (upper, lower)
         for i in range(len(chain) - 1)}
    )
    ui = len(upper) - 1  # argmax pointer, walks left
    li = 0  # argmin pointer, walks right
    best_gap = None
    best = None
    for s in slopes:
        while ui > 0 and _value(upper[ui - 1], s) >= _value(upper[ui], s):
            ui -= 1
        while li + 1 < len(lower) and _value(lower[li + 1], s) <= _value(lower[li], s):
            li += 1
        gap = _value(upper[ui], s) - _value(lower[li], s)
        if best_gap is None or gap < best_gap:
            best_gap = gap
            best = (s, gap, upper[ui], lower[li])
    return best


def vertical_width_naive(points: Sequence[Point]) -> float:
    """O(n^2) reference: evaluate the gap at every pairwise slope.

    Used by the tests to validate the sweep.  Candidate slopes are all
    slopes between distinct-x point pairs (a superset of hull edge slopes),
    plus slope 0 for degenerate inputs.
    """
    if not points:
        raise InvalidParameterError("empty point set has no width")
    slopes = {0.0}
    for i, (xi, yi) in enumerate(points):
        for xj, yj in points[i + 1:]:
            if xj != xi:
                slopes.add((yj - yi) / (xj - xi))
    best = None
    for s in slopes:
        residuals = [y - s * x for x, y in points]
        gap = max(residuals) - min(residuals)
        if best is None or gap < best:
            best = gap
    return best


def _slope(a: Point, b: Point) -> float:
    return (b[1] - a[1]) / (b[0] - a[0])


def _value(p: Point, s: float) -> float:
    return p[1] - s * p[0]
