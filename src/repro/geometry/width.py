"""Euclidean width and the thinnest bounding rectangle ("tbr").

Section 3.1 of the paper fits a PWL bucket via the thinnest bounding
rectangle of the bucket's convex hull.  The library's actual bucket fit
uses the exact vertical width (:mod:`repro.geometry.fit`; DESIGN.md item 2),
but the Euclidean machinery is provided for fidelity with the paper's text
and is useful in its own right.

The *width* of a point set is the smallest distance between two parallel
lines enclosing it; for a convex polygon it is realized by an edge on one
side and a vertex on the other, which the classic rotating-calipers walk
finds in O(h).  The thinnest bounding rectangle is the rectangle flush with
that edge.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull, convex_hull
from repro.geometry.point import Point, cross


def _as_ccw_vertices(shape: Union[StreamingHull, Sequence[Point]]) -> list[Point]:
    if isinstance(shape, StreamingHull):
        return shape.vertices()
    return convex_hull(shape)


def euclidean_width(shape: Union[StreamingHull, Sequence[Point]]) -> float:
    """Minimum distance between two parallel lines enclosing ``shape``.

    Accepts a :class:`StreamingHull` or a raw point sequence.  Degenerate
    inputs (at most two distinct points, or all collinear) have width 0.
    """
    verts = _as_ccw_vertices(shape)
    if not verts:
        raise InvalidParameterError("empty point set has no width")
    if len(verts) < 3:
        return 0.0
    return _calipers(verts)[0]


def thinnest_bounding_rectangle(
    shape: Union[StreamingHull, Sequence[Point]],
) -> tuple[float, list[tuple[float, float]]]:
    """Width and corner points of the minimum-width enclosing rectangle.

    Returns ``(width, corners)`` with corners in counterclockwise order,
    the first edge of the rectangle flush with the hull edge that realizes
    the width.  Degenerate inputs return a zero-width "rectangle" along the
    segment.
    """
    verts = _as_ccw_vertices(shape)
    if not verts:
        raise InvalidParameterError("empty point set has no rectangle")
    if len(verts) == 1:
        p = (float(verts[0][0]), float(verts[0][1]))
        return 0.0, [p, p, p, p]
    if len(verts) == 2:
        a = (float(verts[0][0]), float(verts[0][1]))
        b = (float(verts[1][0]), float(verts[1][1]))
        return 0.0, [a, b, b, a]
    width, edge_index = _calipers(verts)
    a, b = verts[edge_index], verts[(edge_index + 1) % len(verts)]
    ux, uy = b[0] - a[0], b[1] - a[1]
    norm = math.hypot(ux, uy)
    ux, uy = ux / norm, uy / norm
    nx, ny = -uy, ux  # inward normal for a CCW polygon
    along = [(v[0] - a[0]) * ux + (v[1] - a[1]) * uy for v in verts]
    across = [(v[0] - a[0]) * nx + (v[1] - a[1]) * ny for v in verts]
    lo_u, hi_u = min(along), max(along)
    hi_n = max(across)
    corners = [
        (a[0] + lo_u * ux, a[1] + lo_u * uy),
        (a[0] + hi_u * ux, a[1] + hi_u * uy),
        (a[0] + hi_u * ux + hi_n * nx, a[1] + hi_u * uy + hi_n * ny),
        (a[0] + lo_u * ux + hi_n * nx, a[1] + lo_u * uy + hi_n * ny),
    ]
    return width, corners


def _calipers(verts: list[Point]) -> tuple[float, int]:
    """Rotating calipers: ``(width, index_of_flush_edge)`` for a CCW polygon."""
    n = len(verts)
    best_width = math.inf
    best_edge = 0
    j = 1
    for i in range(n):
        a = verts[i]
        b = verts[(i + 1) % n]
        # Advance the antipodal pointer while the triangle area keeps
        # growing; for a convex CCW polygon the farthest vertex from edge
        # (a, b) advances monotonically with i.
        while _area2(a, b, verts[(j + 1) % n]) > _area2(a, b, verts[j]):
            j = (j + 1) % n
        base = math.hypot(b[0] - a[0], b[1] - a[1])
        if base == 0:
            continue
        distance = _area2(a, b, verts[j]) / base
        if distance < best_width:
            best_width = distance
            best_edge = i
    return best_width, best_edge


def _area2(a: Point, b: Point, c: Point) -> float:
    """Twice the (positive) area of triangle abc."""
    return abs(cross(a, b, c))
