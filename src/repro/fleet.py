"""Managing summaries for many concurrent streams (the StatStream scenario).

The paper's second motivation (Section 1): systems like StatStream monitor
thousands of time series at once and answer similarity queries from
compressed representations, so the per-stream summary must be tiny and the
manager must answer "who is closest to X?" without touching raw data.

:class:`StreamFleet` owns one summary per stream (any algorithm from the
harness registry), ingests values per stream or in lockstep rows, and
answers L-infinity similarity queries with *guaranteed bounds* derived
from the summaries alone (:func:`repro.metrics.errors.series_linf_distance`):
for histograms with errors ``e1``/``e2`` and reconstruction gap ``dhat``,
the true distance lies in ``[dhat - e1 - e2, dhat + e1 + e2]``.
:meth:`StreamFleet.nearest` ranks candidates by upper bound and reports
which are *provably* closer than the rest (their upper bound beats every
other lower bound).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence, Union

from repro.core.histogram import Histogram
from repro.exceptions import InvalidParameterError
from repro.harness.runner import make_algorithm
from repro.metrics.errors import series_linf_distance
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.parallel.executor import map_tasks


class FleetStreamHandle:
    """A view onto one stream of a :class:`StreamFleet`.

    Mirrors the service layer's ``StreamHandle`` shape (append /
    histogram / items_seen / error), so code written against
    :class:`repro.service.Session` handles also reads naturally against
    a fleet.  Handles are cheap and stateless; fetch them with
    :meth:`StreamFleet.stream`.
    """

    __slots__ = ("_fleet", "_stream_id")

    def __init__(self, fleet: "StreamFleet", stream_id: Hashable) -> None:
        self._fleet = fleet
        self._stream_id = stream_id

    @property
    def stream_id(self) -> Hashable:
        """The stream's id within its fleet."""
        return self._stream_id

    @property
    def items_seen(self) -> int:
        """Values ingested into this stream so far."""
        return self._fleet.summary(self._stream_id).items_seen

    @property
    def error(self) -> float:
        """The stream summary's current error."""
        return self._fleet.error(self._stream_id)

    def append(self, values: Iterable) -> None:
        """Append a batch (vectorized when values is a list/ndarray)."""
        self._fleet.extend(self._stream_id, values)

    def insert(self, value) -> None:
        """Append one value."""
        self._fleet.insert(self._stream_id, value)

    def histogram(self) -> Histogram:
        """The stream's current histogram."""
        return self._fleet.histogram(self._stream_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetStreamHandle({self._stream_id!r})"


class StreamFleet:
    """One histogram summary per stream, with similarity queries on top.

    Parameters
    ----------
    buckets, epsilon, universe:
        Shared summary configuration (see :func:`make_algorithm`).
    algorithm:
        Registry name of the summary type (default ``"min-merge"``).
    window:
        Window length for the sliding-window algorithms.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`.  Every
        per-stream summary records into the *same* registry, so counters
        aggregate across the fleet; gauges report fleet totals.  Removing
        a stream counts as an eviction.

    Examples
    --------
    >>> fleet = StreamFleet(buckets=8)
    >>> for t in range(100):
    ...     fleet.insert_row({"a": t % 7, "b": t % 7, "c": 3 * (t % 5)})
    >>> low, high = fleet.distance_bounds("a", "b")
    >>> low == 0.0
    True
    """

    def __init__(
        self,
        buckets: int = 32,
        *,
        algorithm: str = "min-merge",
        epsilon: float = 0.2,
        universe: int = 1 << 15,
        window: Optional[int] = None,
        metrics=None,
    ):
        self._config = {
            "buckets": buckets,
            "epsilon": epsilon,
            "universe": universe,
            "window": window,
        }
        self._algorithm = algorithm
        self._metrics = resolve_metrics(metrics)
        # Validate the configuration once, eagerly.
        make_algorithm(algorithm, **self._config)
        self._summaries: dict[Hashable, object] = {}
        if self._metrics is not None:
            self._bind_fleet_gauges()

    def _bind_fleet_gauges(self) -> None:
        """(Re)bind fleet-total gauges; fleet totals win over any
        per-summary bindings made when a stream's summary was built."""
        registry = self._metrics.registry
        prefix = self._metrics.prefix
        registry.gauge(prefix + "memory_bytes", source=self.memory_bytes)
        registry.gauge(prefix + "streams", source=self.__len__)

    # -- stream management -----------------------------------------------

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, stream_id: Hashable) -> bool:
        return stream_id in self._summaries

    @property
    def ids(self) -> list:
        """Registered stream ids, in insertion order."""
        return list(self._summaries)

    def add_stream(self, stream_id: Hashable) -> None:
        """Register a stream explicitly (insert registers implicitly too)."""
        if stream_id in self._summaries:
            raise InvalidParameterError(f"stream {stream_id!r} already exists")
        if self._metrics is None:
            summary = make_algorithm(self._algorithm, **self._config)
        else:
            summary = make_algorithm(
                self._algorithm, metrics=self._metrics, **self._config
            )
        self._summaries[stream_id] = summary
        if self._metrics is not None:
            self._bind_fleet_gauges()

    @property
    def algorithm(self) -> str:
        """Registry name of the per-stream summary type."""
        return self._algorithm

    @property
    def config(self) -> dict:
        """Shared summary configuration (copy; buckets/epsilon/universe/window)."""
        return dict(self._config)

    def adopt_stream(self, stream_id: Hashable, summary) -> None:
        """Install a pre-built summary for a new stream (checkpoint restore).

        The summary must match the fleet's algorithm/configuration -- the
        fleet does not re-validate it -- and the id must be unused.  Used by
        :func:`repro.checkpoint.restore` to rebuild a fleet from per-stream
        checkpoints; fleets restored this way are uninstrumented (see the
        checkpoint instrumentation policy).
        """
        if stream_id in self._summaries:
            raise InvalidParameterError(f"stream {stream_id!r} already exists")
        self._summaries[stream_id] = summary
        if self._metrics is not None:
            self._bind_fleet_gauges()

    def stream(self, stream_id: Hashable) -> FleetStreamHandle:
        """A :class:`FleetStreamHandle` on the named stream.

        Registers the stream if new (same implicit-registration rule as
        :meth:`insert`/:meth:`extend`), then returns a cheap handle
        mirroring the service layer's per-stream API.
        """
        if stream_id not in self._summaries:
            self.add_stream(stream_id)
        return FleetStreamHandle(self, stream_id)

    def remove_stream(self, stream_id: Hashable) -> None:
        """Drop a stream and free its summary."""
        try:
            del self._summaries[stream_id]
        except KeyError:
            raise InvalidParameterError(
                f"unknown stream {stream_id!r}"
            ) from None
        if self._metrics is not None:
            self._metrics.on_evict()

    # -- ingestion ----------------------------------------------------------

    def insert(self, stream_id: Hashable, value) -> None:
        """Append one value to one stream (auto-registering it)."""
        summary = self._summaries.get(stream_id)
        if summary is None:
            self.add_stream(stream_id)
            summary = self._summaries[stream_id]
        summary.insert(value)

    def insert_row(self, row: Mapping) -> None:
        """Append one lockstep tick: ``{stream_id: value}`` for each stream.

        Similarity queries require equal index ranges, so fleets that will
        be queried should ingest in rows.
        """
        for stream_id, value in row.items():
            self.insert(stream_id, value)

    def extend(self, stream_id: Hashable, values: Iterable) -> None:
        """Append many values to one stream (auto-registering it).

        Delegates to the summary's own ``extend``, so lists and numeric
        ndarrays get the vectorized batch-ingest path.
        """
        summary = self._summaries.get(stream_id)
        if summary is None:
            self.add_stream(stream_id)
            summary = self._summaries[stream_id]
        summary.extend(values)

    def extend_rows(
        self,
        rows: Sequence[Mapping],
        *,
        workers: Union[None, int, str] = None,
    ) -> None:
        """Append a batch of lockstep ticks, optionally in parallel.

        ``rows`` is a sequence of ``{stream_id: value}`` mappings in tick
        order (the batched form of :meth:`insert_row`).  The batch is
        transposed into one per-stream column first, so every stream's
        values flow through its summary's vectorized ``extend`` instead of
        one ``insert`` per tick -- and because per-stream summaries are
        independent, the columns can be dispatched across a thread pool:
        ``workers="auto"`` uses one thread per stream up to the CPU count,
        an int pins the pool size, ``None`` (default) stays serial.
        Summary state is identical for every ``workers`` setting (each
        dispatched task touches only its own stream's summary); with a
        *shared* metrics registry the per-column counter bumps may
        interleave, but each column emits a single aggregated event, so
        contention is negligible in practice.
        """
        columns: dict[Hashable, list] = {}
        for row in rows:
            for stream_id, value in row.items():
                columns.setdefault(stream_id, []).append(value)
        # Registration mutates shared dicts; do it serially up front so the
        # dispatched column extends touch only their own summary.
        for stream_id in columns:
            if stream_id not in self._summaries:
                self.add_stream(stream_id)
        summaries = self._summaries
        map_tasks(
            lambda item: summaries[item[0]].extend(item[1]),
            list(columns.items()),
            workers=workers,
        )

    # -- queries -----------------------------------------------------------------

    def _summary(self, stream_id: Hashable):
        try:
            return self._summaries[stream_id]
        except KeyError:
            raise InvalidParameterError(
                f"unknown stream {stream_id!r}"
            ) from None

    def summary(self, stream_id: Hashable):
        """The live summary object of one stream (for checkpointing etc.)."""
        return self._summary(stream_id)

    def histogram(self, stream_id: Hashable) -> Histogram:
        """The current histogram of one stream."""
        return self._summary(stream_id).histogram()

    def error(self, stream_id: Hashable) -> float:
        """The current summary error of one stream."""
        return self._summary(stream_id).error

    @property
    def items_seen(self) -> int:
        """Total values ingested across all streams."""
        return sum(s.items_seen for s in self._summaries.values())

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Fleet-wide instrumentation facade, or ``None`` when off."""
        return self._metrics

    def total_memory_bytes(self) -> int:
        """Accounted memory across all summaries."""
        return sum(s.memory_bytes() for s in self._summaries.values())

    def memory_bytes(self) -> int:
        """Alias for :meth:`total_memory_bytes` (StreamingSummary spelling)."""
        return self.total_memory_bytes()

    def distance_bounds(self, first: Hashable, second: Hashable) -> tuple[float, float]:
        """Guaranteed ``(lower, upper)`` bounds on the L-inf distance."""
        return series_linf_distance(
            self.histogram(first), self.histogram(second)
        )

    def nearest(
        self, query_id: Hashable, *, k: int = 1
    ) -> list[tuple[Hashable, float, float]]:
        """The ``k`` streams with the smallest distance upper bound.

        Returns ``(stream_id, lower, upper)`` triples sorted by upper
        bound.  Any candidate whose upper bound is below every excluded
        candidate's lower bound is *provably* among the true k nearest.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        query_hist = self.histogram(query_id)
        ranked = []
        for stream_id, summary in self._summaries.items():
            if stream_id == query_id:
                continue
            low, high = series_linf_distance(query_hist, summary.histogram())
            ranked.append((high, low, stream_id))
        ranked.sort()
        return [(sid, low, high) for high, low, sid in ranked[:k]]

    def provably_nearest(self, query_id: Hashable) -> Optional[Hashable]:
        """The certified nearest neighbour, or None if summaries can't tell.

        Certified means the best candidate's distance *upper* bound is at
        most every other candidate's *lower* bound, so no refinement with
        raw data could change the answer.
        """
        candidates = self.nearest(query_id, k=len(self._summaries))
        if not candidates:
            return None
        best_id, _low, best_high = candidates[0]
        for other_id, low, _high in candidates[1:]:
            if low < best_high:
                return None
        return best_id
