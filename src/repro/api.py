"""One-shot convenience API.

Most adopters start with "I have a sequence, give me a good histogram".
:func:`summarize` wraps the right algorithm behind a single call::

    from repro import summarize

    hist = summarize(values, buckets=32)                 # streaming (1+eps, 1)
    hist = summarize(values, buckets=32, method="optimal")  # exact offline
    hist = summarize(values, buckets=32, method="pwl")      # piecewise-linear

and returns a :class:`~repro.core.histogram.Histogram`.  For genuinely
streaming use (values that do not fit in memory, sliding windows,
checkpoints) instantiate the summary classes directly.

Dispatch goes through :data:`ALGORITHM_REGISTRY`, a mapping from method
name to builder; ``method`` may also be a summary *class* implementing
the :class:`~repro.core.interface.StreamingSummary` protocol, which is
constructed with whatever subset of ``buckets`` / ``epsilon`` /
``universe`` its ``__init__`` accepts.
"""

from __future__ import annotations

import inspect
from typing import Sequence, Union

import numpy as np

from repro.core.histogram import Histogram
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_histogram
from repro.offline.optimal_pwl import optimal_pwl_histogram


def _build_optimal(values, buckets, epsilon):
    return optimal_histogram(values, buckets)


def _build_optimal_pwl(values, buckets, epsilon):
    return optimal_pwl_histogram(values, buckets)


def _run_summary(summary, values) -> Histogram:
    summary.extend(values)
    return summary.histogram()


def _build_min_merge(values, buckets, epsilon):
    return _run_summary(MinMergeHistogram(buckets=buckets), values)


def _build_min_increment(values, buckets, epsilon):
    return _run_summary(
        MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=_universe_for(values)
        ),
        values,
    )


def _build_pwl(values, buckets, epsilon):
    return _run_summary(
        PwlMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=_universe_for(values)
        ),
        values,
    )


def _build_pwl_min_merge(values, buckets, epsilon):
    return _run_summary(PwlMinMergeHistogram(buckets=buckets), values)


#: Registry mapping :func:`summarize` method names to builders.  Each
#: builder takes ``(values, buckets, epsilon)`` and returns a
#: :class:`~repro.core.histogram.Histogram`.  Extend it to register a new
#: method name; ``SUMMARIZE_METHODS`` is derived from the keys.
ALGORITHM_REGISTRY = {
    "min-increment": _build_min_increment,
    "min-merge": _build_min_merge,
    "pwl": _build_pwl,
    "pwl-min-merge": _build_pwl_min_merge,
    "optimal": _build_optimal,
    "optimal-pwl": _build_optimal_pwl,
}

#: Methods that accept ``workers=`` in :func:`summarize`: exactly the
#: merge-capable families, whose shard summaries combine losslessly (see
#: ``repro.parallel``).  The ladder methods are excluded because
#: MIN-INCREMENT state is not mergeable (each GREEDY-INSERT level depends
#: on its own segment's bucket boundaries).
PARALLEL_METHODS = ("min-merge", "pwl-min-merge")


def __getattr__(name: str):
    # Derived, not stored: reflects later registry additions (PEP 562).
    if name == "SUMMARIZE_METHODS":
        return tuple(ALGORITHM_REGISTRY)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _construct_summary_class(cls: type, values, buckets: int, epsilon: float):
    """Build ``cls`` with whichever of our shared kwargs it accepts."""
    try:
        params = inspect.signature(cls).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        params = {}
    kwargs = {}
    if "buckets" in params:
        kwargs["buckets"] = buckets
    if "epsilon" in params:
        kwargs["epsilon"] = epsilon
    if "universe" in params:
        kwargs["universe"] = _universe_for(values)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise InvalidParameterError(
            f"cannot construct {cls.__name__} from (buckets, epsilon, "
            f"universe): {exc}"
        ) from None


def summarize(
    values: Sequence,
    buckets: int,
    *,
    method: Union[str, type] = "min-increment",
    epsilon: float = 0.1,
    workers: Union[None, int, str] = None,
) -> Histogram:
    """Build a maximum-error histogram of ``values`` in one call.

    Parameters
    ----------
    values:
        The full sequence (non-negative numbers; integer sequences get
        exact guarantees).  Iterators and generators are accepted and
        materialized once.  NumPy arrays are used as-is -- never copied --
        and flow through the vectorized batch-ingest path.
    buckets:
        Bucket budget ``B``.  ``"min-merge"`` returns up to ``2 B``
        buckets (that is its theorem); every other method stays within
        ``B``.
    method:
        A name from :data:`ALGORITHM_REGISTRY`:

        * ``"min-increment"`` (default) -- streaming (1 + eps, 1);
        * ``"min-merge"`` -- streaming (1, 2);
        * ``"pwl"`` -- streaming piecewise-linear (1 + eps, 1);
        * ``"pwl-min-merge"`` -- streaming piecewise-linear (1, 2) with
          exact hulls (up to ``2 B`` buckets, like ``"min-merge"``);
        * ``"optimal"`` -- exact offline optimum (Theorem 6);
        * ``"optimal-pwl"`` -- near-exact offline piecewise-linear;

        or a summary class (e.g. ``MinMergeHistogram``) conforming to the
        :class:`~repro.core.interface.StreamingSummary` protocol.
    epsilon:
        Approximation parameter for the streaming methods.
    workers:
        Multi-core shard ingest for the merge-capable methods
        (:data:`PARALLEL_METHODS`): ``None`` (default) stays serial, a
        positive int pins the worker count, ``"auto"`` sizes to the
        machine with a serial cut-off.  The parallel result keeps the
        method's approximation guarantee and is deterministic for a fixed
        worker count, but its buckets may differ from the serial run's (a
        different, equally valid, merge schedule -- see ``docs/API.md``).
        Other methods raise: MIN-INCREMENT ladder state is not mergeable.
    """
    if not hasattr(values, "__len__"):
        # Generators / iterators: materialize once so len(), min()/max()
        # (universe sizing), and the stream pass all see the same data.
        values = list(values)
    if len(values) == 0:
        raise InvalidParameterError("cannot summarize an empty sequence")
    if workers is not None and workers != 1:
        return _summarize_workers(values, buckets, method, workers)
    if isinstance(method, type):
        summary = _construct_summary_class(method, values, buckets, epsilon)
        return _run_summary(summary, values)
    builder = ALGORITHM_REGISTRY.get(method)
    if builder is None:
        known = ", ".join(ALGORITHM_REGISTRY)
        raise InvalidParameterError(
            f"unknown method {method!r}; known methods: {known}"
        )
    return builder(values, buckets, epsilon)


def _summarize_workers(values, buckets: int, method, workers) -> Histogram:
    """Dispatch ``summarize(..., workers=)`` to the parallel executor."""
    if not isinstance(method, str) or method not in PARALLEL_METHODS:
        label = method.__name__ if isinstance(method, type) else repr(method)
        raise InvalidParameterError(
            f"workers= is only supported for the merge-capable methods "
            f"({', '.join(PARALLEL_METHODS)}), not {label}: MIN-INCREMENT "
            "ladder state is not mergeable, so its shards cannot be "
            "combined without replaying raw values (see docs/API.md, "
            "'Parallel ingest')"
        )
    # Imported lazily: repro.parallel pulls in concurrent.futures and the
    # aggregation layer, which plain serial summarize() never needs.
    from repro.parallel import ParallelSummarizer

    summarizer = ParallelSummarizer(method, buckets=buckets, workers=workers)
    return summarizer.summarize(values).histogram()


def _universe_for(values: Sequence) -> int:
    """Smallest valid universe covering the observed values."""
    if isinstance(values, np.ndarray):
        # Vectorized reduction: iterating an ndarray with builtin max()
        # boxes every element into a NumPy scalar.
        top = values.max()
        low = values.min()
    else:
        top = max(values)
        low = min(values)
    if low < 0:
        raise InvalidParameterError(
            "the ladder-based methods need non-negative values; shift the "
            f"series first (got minimum {low})"
        )
    return max(2, int(top) + 1)
