"""One-shot convenience API.

Most adopters start with "I have a sequence, give me a good histogram".
:func:`summarize` wraps the right algorithm behind a single call::

    from repro import summarize

    hist = summarize(values, buckets=32)                 # streaming (1+eps, 1)
    hist = summarize(values, buckets=32, method="optimal")  # exact offline
    hist = summarize(values, buckets=32, method="pwl")      # piecewise-linear
    hist = summarize(values, buckets=32, window=10_000)     # sliding window

and returns a :class:`~repro.core.histogram.Histogram` carrying a
:class:`~repro.core.histogram.HistogramMeta` (method, buckets used, max
error, items seen) in ``hist.meta``.

Since the service engine landed, :func:`summarize` is a *thin one-shot
wrapper* over the same stateful session path that long-lived deployments
use: it opens an ephemeral :class:`~repro.service.Session`, appends the
values to one stream, and queries the histogram -- so the one-shot call
and a ``StreamEngine`` tenant run the exact same ingest route (see
``docs/SERVICE.md``).  For genuinely streaming use (values that do not
fit in memory, many tenants, checkpoints, concurrent queries) keep the
session open instead of re-summarizing.

Dispatch goes through :data:`ALGORITHM_REGISTRY`, a mapping from method
name to builder; ``method`` may also be a summary *class* implementing
the :class:`~repro.core.interface.StreamingSummary` protocol, which is
constructed with whatever subset of ``buckets`` / ``epsilon`` /
``universe`` its ``__init__`` accepts.  :func:`methods` reports a
capability matrix (streaming/mergeable/checkpointable/windowed/PWL) for
every registered method, derived from the summary classes themselves.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.histogram import Histogram, HistogramMeta
from repro.core.interface import conforms
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_histogram
from repro.offline.optimal_pwl import optimal_pwl_histogram

#: Default integer value domain ``[0, U)`` for the ladder methods when the
#: caller supplies none (matches :class:`~repro.fleet.StreamFleet` and the
#: harness).  One-shot calls size the universe from the data instead.
DEFAULT_UNIVERSE = 1 << 15


# -- method specs -------------------------------------------------------------


@dataclass(frozen=True)
class _MethodSpec:
    """How one registry method maps onto summary classes.

    ``summary_cls`` is ``None`` for offline methods; ``windowed_cls`` is
    the sliding-window variant reachable via ``summarize(window=)``, or
    ``None`` when the method has no windowed form.  ``needs_universe``
    marks the ladder family, whose constructors take the value domain.
    """

    summary_cls: Optional[type] = None
    windowed_cls: Optional[type] = None
    needs_universe: bool = False
    offline_pwl: bool = False


_METHOD_SPECS = {
    "min-increment": _MethodSpec(
        summary_cls=MinIncrementHistogram,
        windowed_cls=SlidingWindowMinIncrement,
        needs_universe=True,
    ),
    "min-merge": _MethodSpec(summary_cls=MinMergeHistogram),
    "pwl": _MethodSpec(
        summary_cls=PwlMinIncrementHistogram,
        windowed_cls=SlidingWindowPwlMinIncrement,
        needs_universe=True,
    ),
    "pwl-min-merge": _MethodSpec(summary_cls=PwlMinMergeHistogram),
    "optimal": _MethodSpec(),
    "optimal-pwl": _MethodSpec(offline_pwl=True),
}

#: Methods whose summaries accept ``backend=`` ("object" | "soa"): the
#: MIN-MERGE family, where the structure-of-arrays kernel
#: (:mod:`repro.core.soa`) provides a bit-identical, several-times-faster
#: maintenance loop.  See ``docs/PERF.md`` for how to choose.
BACKEND_METHODS = ("min-merge", "pwl-min-merge")


def build_summary(
    method: str,
    *,
    buckets: int,
    epsilon: float = 0.1,
    universe: Optional[int] = None,
    window: Optional[int] = None,
    metrics=None,
    backend: str = "object",
):
    """Construct a fresh streaming summary for a registry ``method``.

    The constructor hook shared by :func:`summarize`'s one-shot path and
    the :class:`~repro.service.StreamEngine` tenants, so both build the
    exact same summary object for a given configuration.  ``window``
    selects the sliding-window variant where one exists; offline methods
    (``"optimal"``, ``"optimal-pwl"``) have no streaming summary and
    raise.  ``backend`` selects the maintenance kernel for the methods in
    :data:`BACKEND_METHODS` and must stay ``"object"`` elsewhere.
    """
    if backend != "object" and method not in BACKEND_METHODS:
        raise InvalidParameterError(
            f"method {method!r} does not support backend={backend!r}; "
            f"backend= is supported for: {', '.join(BACKEND_METHODS)}"
        )
    spec = _METHOD_SPECS.get(method)
    if spec is None or spec.summary_cls is None:
        raise InvalidParameterError(
            f"method {method!r} has no streaming summary; streaming "
            f"methods: {', '.join(streaming_methods())}"
            + (" (see repro.api.methods())" if spec is not None else "")
        )
    if universe is None:
        universe = DEFAULT_UNIVERSE
    if window is not None:
        if spec.windowed_cls is None:
            windowed = [
                name
                for name, s in _METHOD_SPECS.items()
                if s.windowed_cls is not None
            ]
            raise InvalidParameterError(
                f"method {method!r} has no sliding-window variant; "
                f"window= is supported for: {', '.join(windowed)}"
            )
        return spec.windowed_cls(
            buckets=buckets,
            epsilon=epsilon,
            universe=universe,
            window=window,
            metrics=metrics,
        )
    if spec.needs_universe:
        return spec.summary_cls(
            buckets=buckets, epsilon=epsilon, universe=universe,
            metrics=metrics,
        )
    if method in BACKEND_METHODS:
        return spec.summary_cls(
            buckets=buckets, metrics=metrics, backend=backend
        )
    return spec.summary_cls(buckets=buckets, metrics=metrics)


def streaming_methods() -> tuple:
    """Registry names with a streaming summary class, in registry order."""
    return tuple(
        name
        for name in ALGORITHM_REGISTRY
        if _METHOD_SPECS.get(name) is not None
        and _METHOD_SPECS[name].summary_cls is not None
    )


def methods() -> dict:
    """Capability matrix for every :data:`ALGORITHM_REGISTRY` method.

    Returns ``{name: capabilities}`` where capabilities is a plain dict
    with boolean flags, derived from the summary classes rather than
    hand-maintained:

    * ``streaming`` -- has a :class:`StreamingSummary`-conformant class
      (usable as a :class:`~repro.service.StreamEngine` tenant method);
    * ``offline`` -- materializes from the full sequence in one shot;
    * ``mergeable`` -- shard summaries combine losslessly, so the method
      is parallel-safe (``summarize(workers=)``) and aggregatable;
    * ``checkpointable`` -- :func:`repro.checkpoint.state_dict` supports
      the summary class;
    * ``windowed`` -- a sliding-window variant exists
      (``summarize(window=)`` / ``StreamEngine`` ``window=`` tenants);
    * ``pwl`` -- answers with piecewise-linear (sloped) buckets;
    * ``summary_class`` -- the class name, or ``None`` for offline
      methods.

    Methods registered directly in :data:`ALGORITHM_REGISTRY` without a
    spec are reported with ``custom: True`` and conservative flags.
    """
    # Imported lazily: repro.checkpoint pulls in the fleet and every
    # summary family, which plain summarize() callers never need.
    from repro.checkpoint import checkpointable

    matrix = {}
    for name in ALGORITHM_REGISTRY:
        spec = _METHOD_SPECS.get(name)
        if spec is None:
            matrix[name] = {
                "streaming": False,
                "offline": True,
                "mergeable": False,
                "checkpointable": False,
                "windowed": False,
                "pwl": False,
                "summary_class": None,
                "custom": True,
            }
            continue
        cls = spec.summary_cls
        pwl = spec.offline_pwl or (cls is not None and "Pwl" in cls.__name__)
        matrix[name] = {
            "streaming": cls is not None and conforms(cls),
            "offline": cls is None,
            "mergeable": name in PARALLEL_METHODS,
            "checkpointable": cls is not None and checkpointable(cls),
            "windowed": spec.windowed_cls is not None,
            "pwl": pwl,
            "summary_class": cls.__name__ if cls is not None else None,
            "custom": False,
        }
    return matrix


def _method_lines() -> str:
    """One capability line per method, for error messages."""
    lines = []
    for name, caps in methods().items():
        flags = [
            flag
            for flag in (
                "streaming", "offline", "mergeable", "checkpointable",
                "windowed", "pwl", "custom",
            )
            if caps[flag]
        ]
        lines.append(f"  {name}: {', '.join(flags) if flags else '-'}")
    return "\n".join(lines)


# -- one-shot builders (the ALGORITHM_REGISTRY contract) ----------------------


def _build_optimal(values, buckets, epsilon):
    return optimal_histogram(values, buckets)


def _build_optimal_pwl(values, buckets, epsilon):
    return optimal_pwl_histogram(values, buckets)


def _oneshot(
    method: str,
    values,
    buckets: int,
    epsilon: float,
    backend: str = "object",
) -> Histogram:
    """Run a streaming method through an ephemeral service session.

    The single code route behind both the registry builders and
    ``summarize``: build the summary via :func:`build_summary`, append
    once through a :class:`~repro.service.Session` stream, query the
    histogram.
    """
    spec = _METHOD_SPECS[method]
    universe = _universe_for(values) if spec.needs_universe else None
    summary = build_summary(
        method,
        buckets=buckets,
        epsilon=epsilon,
        universe=universe,
        backend=backend,
    )
    return _run_attached(method, summary, values, buckets)


def _run_attached(label: str, summary, values, buckets: int) -> Histogram:
    """One-shot session run of a prebuilt summary (shared ingest route)."""
    # Imported lazily to keep the module import graph acyclic: the
    # service engine imports repro.api for build_summary.
    from repro.service import Session

    with Session() as session:
        handle = session.attach("oneshot", summary, method=label)
        handle.append(values)
        return handle.histogram(requested_buckets=buckets)


def _build_min_merge(values, buckets, epsilon):
    return _oneshot("min-merge", values, buckets, epsilon)


def _build_min_increment(values, buckets, epsilon):
    return _oneshot("min-increment", values, buckets, epsilon)


def _build_pwl(values, buckets, epsilon):
    return _oneshot("pwl", values, buckets, epsilon)


def _build_pwl_min_merge(values, buckets, epsilon):
    return _oneshot("pwl-min-merge", values, buckets, epsilon)


#: Registry mapping :func:`summarize` method names to builders.  Each
#: builder takes ``(values, buckets, epsilon)`` and returns a
#: :class:`~repro.core.histogram.Histogram`.  Extend it to register a new
#: method name; ``SUMMARIZE_METHODS`` is derived from the keys and
#: :func:`methods` reports per-method capabilities.
ALGORITHM_REGISTRY = {
    "min-increment": _build_min_increment,
    "min-merge": _build_min_merge,
    "pwl": _build_pwl,
    "pwl-min-merge": _build_pwl_min_merge,
    "optimal": _build_optimal,
    "optimal-pwl": _build_optimal_pwl,
}

#: Methods that accept ``workers=`` in :func:`summarize`: exactly the
#: merge-capable families, whose shard summaries combine losslessly (see
#: ``repro.parallel``).  The ladder methods are excluded because
#: MIN-INCREMENT state is not mergeable (each GREEDY-INSERT level depends
#: on its own segment's bucket boundaries).
PARALLEL_METHODS = ("min-merge", "pwl-min-merge")


def __getattr__(name: str):
    # Derived, not stored: reflects later registry additions (PEP 562).
    if name == "SUMMARIZE_METHODS":
        return tuple(ALGORITHM_REGISTRY)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _construct_summary_class(cls: type, values, buckets: int, epsilon: float):
    """Build ``cls`` with whichever of our shared kwargs it accepts."""
    try:
        params = inspect.signature(cls).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        params = {}
    kwargs = {}
    if "buckets" in params:
        kwargs["buckets"] = buckets
    if "epsilon" in params:
        kwargs["epsilon"] = epsilon
    if "universe" in params:
        kwargs["universe"] = _universe_for(values)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise InvalidParameterError(
            f"cannot construct {cls.__name__} from (buckets, epsilon, "
            f"universe): {exc}"
        ) from None


def summarize(
    values: Sequence,
    buckets: int,
    *,
    method: Union[str, type] = "min-increment",
    epsilon: float = 0.1,
    workers: Union[None, int, str] = None,
    window: Optional[int] = None,
    backend: str = "object",
) -> Histogram:
    """Build a maximum-error histogram of ``values`` in one call.

    Parameters
    ----------
    values:
        The full sequence (non-negative numbers; integer sequences get
        exact guarantees).  Iterators and generators are accepted and
        materialized once.  NumPy arrays are used as-is -- never copied --
        and flow through the vectorized batch-ingest path.
    buckets:
        Bucket budget ``B``.  ``"min-merge"`` returns up to ``2 B``
        buckets (that is its theorem); every other method stays within
        ``B``.
    method:
        A name from :data:`ALGORITHM_REGISTRY`:

        * ``"min-increment"`` (default) -- streaming (1 + eps, 1);
        * ``"min-merge"`` -- streaming (1, 2);
        * ``"pwl"`` -- streaming piecewise-linear (1 + eps, 1);
        * ``"pwl-min-merge"`` -- streaming piecewise-linear (1, 2) with
          exact hulls (up to ``2 B`` buckets, like ``"min-merge"``);
        * ``"optimal"`` -- exact offline optimum (Theorem 6);
        * ``"optimal-pwl"`` -- near-exact offline piecewise-linear;

        or a summary class (e.g. ``MinMergeHistogram``) conforming to the
        :class:`~repro.core.interface.StreamingSummary` protocol.
        :func:`methods` reports each name's capabilities.
    epsilon:
        Approximation parameter for the streaming methods.
    workers:
        Multi-core shard ingest for the merge-capable methods
        (:data:`PARALLEL_METHODS`): ``None`` (default) stays serial, a
        positive int pins the worker count, ``"auto"`` sizes to the
        machine with a serial cut-off.  The parallel result keeps the
        method's approximation guarantee and is deterministic for a fixed
        worker count, but its buckets may differ from the serial run's (a
        different, equally valid, merge schedule -- see ``docs/API.md``).
        Other methods raise: MIN-INCREMENT ladder state is not mergeable.
    window:
        Route to the sliding-window variant covering the last ``window``
        items: ``method="min-increment"`` becomes
        :class:`~repro.core.sliding_window.SlidingWindowMinIncrement` and
        ``method="pwl"`` becomes
        :class:`~repro.core.sliding_window_pwl.SlidingWindowPwlMinIncrement`.
        Methods without a windowed variant raise; ``window`` cannot be
        combined with ``workers`` (windowed ladder state is not
        mergeable).
    backend:
        Maintenance kernel for the MIN-MERGE family
        (:data:`BACKEND_METHODS`): ``"object"`` (default) keeps the
        reference per-bucket implementation, ``"soa"`` selects the
        structure-of-arrays kernel -- bit-identical buckets, several
        times faster per-item ingest (see ``docs/PERF.md``).  Composes
        with ``workers=``; other methods raise for non-default values.

    Returns
    -------
    Histogram
        With :class:`~repro.core.histogram.HistogramMeta` attached
        (``hist.meta``): the method name, buckets used vs requested, the
        reported max error, items seen, and the window/epsilon in effect.
    """
    if not hasattr(values, "__len__"):
        # Generators / iterators: materialize once so len(), min()/max()
        # (universe sizing), and the stream pass all see the same data.
        values = list(values)
    if len(values) == 0:
        raise InvalidParameterError("cannot summarize an empty sequence")
    if window is not None and window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if backend != "object" and (
        not isinstance(method, str) or method not in BACKEND_METHODS
    ):
        label = method.__name__ if isinstance(method, type) else repr(method)
        raise InvalidParameterError(
            f"backend= is only supported for the MIN-MERGE family "
            f"({', '.join(BACKEND_METHODS)}), not {label}"
        )
    if workers is not None and workers != 1:
        if window is not None:
            raise InvalidParameterError(
                "window= cannot be combined with workers=: sliding-window "
                "ladder state is not mergeable across shards"
            )
        hist = _summarize_workers(values, buckets, method, workers, backend)
        return hist.with_meta(
            HistogramMeta(
                method=method if isinstance(method, str) else method.__name__,
                buckets=len(hist),
                requested_buckets=buckets,
                error=hist.error,
                items_seen=len(values),
            )
        )
    if isinstance(method, type):
        if window is not None:
            raise InvalidParameterError(
                "window= is only supported for registry method names, "
                "not summary classes; construct the windowed class "
                "directly instead"
            )
        summary = _construct_summary_class(method, values, buckets, epsilon)
        return _run_attached(method.__name__, summary, values, buckets)
    spec = _METHOD_SPECS.get(method)
    if window is not None:
        if spec is None or spec.windowed_cls is None:
            windowed = [
                name
                for name, s in _METHOD_SPECS.items()
                if s.windowed_cls is not None
            ]
            raise InvalidParameterError(
                f"method {method!r} has no sliding-window variant; "
                f"window= is supported for: {', '.join(windowed)}"
            )
        summary = build_summary(
            method,
            buckets=buckets,
            epsilon=epsilon,
            universe=_universe_for(values),
            window=window,
        )
        hist = _run_attached(method, summary, values, buckets)
        return hist.with_meta(
            HistogramMeta(
                method=method,
                buckets=len(hist),
                requested_buckets=buckets,
                error=hist.error,
                items_seen=len(values),
                window=window,
                epsilon=epsilon,
            )
        )
    builder = ALGORITHM_REGISTRY.get(method)
    if builder is None:
        raise InvalidParameterError(
            f"unknown method {method!r}; known methods "
            f"(see repro.api.methods()):\n{_method_lines()}"
        )
    if backend != "object":
        # Backend-capable methods all route through _oneshot; calling it
        # directly threads the kernel choice without widening the builder
        # signature shared by every registry entry.
        hist = _oneshot(method, values, buckets, epsilon, backend)
    else:
        hist = builder(values, buckets, epsilon)
    if hist.meta is not None:
        return hist
    return hist.with_meta(
        HistogramMeta(
            method=method,
            buckets=len(hist),
            requested_buckets=buckets,
            error=hist.error,
            items_seen=len(values),
            epsilon=(
                epsilon if spec is not None and spec.needs_universe else None
            ),
        )
    )


def _summarize_workers(
    values, buckets: int, method, workers, backend: str = "object"
) -> Histogram:
    """Dispatch ``summarize(..., workers=)`` to the parallel executor."""
    if not isinstance(method, str) or method not in PARALLEL_METHODS:
        label = method.__name__ if isinstance(method, type) else repr(method)
        raise InvalidParameterError(
            f"workers= is only supported for the merge-capable methods "
            f"({', '.join(PARALLEL_METHODS)}), not {label}: MIN-INCREMENT "
            "ladder state is not mergeable, so its shards cannot be "
            "combined without replaying raw values (see docs/API.md, "
            "'Parallel ingest')"
        )
    # Imported lazily: repro.parallel pulls in concurrent.futures and the
    # aggregation layer, which plain serial summarize() never needs.
    from repro.parallel import ParallelSummarizer

    summarizer = ParallelSummarizer(
        method, buckets=buckets, workers=workers, summary_backend=backend
    )
    return summarizer.summarize(values).histogram()


def _universe_for(values: Sequence) -> int:
    """Smallest valid universe covering the observed values.

    Accepts any non-empty iterable.  Iterators are materialized (they
    would otherwise be consumed here and arrive empty at the ingest
    pass); all-equal and zero-only inputs produce the minimum legal
    universe of 2; negative minima raise with a shift hint (the ladder
    domain is ``[0, U)``).
    """
    if not hasattr(values, "__len__"):
        # Defensive: summarize() materializes before calling us, but this
        # helper is also reached via _construct_summary_class with
        # caller-supplied data.  Consuming a one-shot iterator here would
        # silently leave nothing for the ingest pass.
        values = list(values)
    if len(values) == 0:
        raise InvalidParameterError(
            "cannot size a universe from an empty sequence"
        )
    if isinstance(values, np.ndarray):
        # Vectorized reduction: iterating an ndarray with builtin max()
        # boxes every element into a NumPy scalar.
        top = values.max()
        low = values.min()
    else:
        top = max(values)
        low = min(values)
    if low < 0:
        raise InvalidParameterError(
            "the ladder-based methods need non-negative values; shift the "
            f"series first (got minimum {low})"
        )
    return max(2, int(top) + 1)
