"""One-shot convenience API.

Most adopters start with "I have a sequence, give me a good histogram".
:func:`summarize` wraps the right algorithm behind a single call::

    from repro import summarize

    hist = summarize(values, buckets=32)                 # streaming (1+eps, 1)
    hist = summarize(values, buckets=32, method="optimal")  # exact offline
    hist = summarize(values, buckets=32, method="pwl")      # piecewise-linear

and returns a :class:`~repro.core.histogram.Histogram`.  For genuinely
streaming use (values that do not fit in memory, sliding windows,
checkpoints) instantiate the summary classes directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.histogram import Histogram
from repro.core.min_increment import MinIncrementHistogram
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_increment import PwlMinIncrementHistogram
from repro.exceptions import InvalidParameterError
from repro.offline.optimal import optimal_histogram
from repro.offline.optimal_pwl import optimal_pwl_histogram

#: Method names accepted by :func:`summarize`.
SUMMARIZE_METHODS = (
    "min-increment",
    "min-merge",
    "pwl",
    "optimal",
    "optimal-pwl",
)


def summarize(
    values: Sequence,
    buckets: int,
    *,
    method: str = "min-increment",
    epsilon: float = 0.1,
) -> Histogram:
    """Build a maximum-error histogram of ``values`` in one call.

    Parameters
    ----------
    values:
        The full sequence (non-negative numbers; integer sequences get
        exact guarantees).
    buckets:
        Bucket budget ``B``.  ``"min-merge"`` returns up to ``2 B``
        buckets (that is its theorem); every other method stays within
        ``B``.
    method:
        * ``"min-increment"`` (default) -- streaming (1 + eps, 1);
        * ``"min-merge"`` -- streaming (1, 2);
        * ``"pwl"`` -- streaming piecewise-linear (1 + eps, 1);
        * ``"optimal"`` -- exact offline optimum (Theorem 6);
        * ``"optimal-pwl"`` -- near-exact offline piecewise-linear.
    epsilon:
        Approximation parameter for the streaming methods.
    """
    if len(values) == 0:
        raise InvalidParameterError("cannot summarize an empty sequence")
    if method == "optimal":
        return optimal_histogram(values, buckets)
    if method == "optimal-pwl":
        return optimal_pwl_histogram(values, buckets)
    if method == "min-merge":
        summary = MinMergeHistogram(buckets=buckets)
        summary.extend(values)
        return summary.histogram()
    universe = _universe_for(values)
    if method == "min-increment":
        streaming = MinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
        streaming.extend(values)
        return streaming.histogram()
    if method == "pwl":
        pwl = PwlMinIncrementHistogram(
            buckets=buckets, epsilon=epsilon, universe=universe
        )
        pwl.extend(values)
        return pwl.histogram()
    known = ", ".join(SUMMARIZE_METHODS)
    raise InvalidParameterError(
        f"unknown method {method!r}; known methods: {known}"
    )


def _universe_for(values: Sequence) -> int:
    """Smallest valid universe covering the observed values."""
    top = max(values)
    low = min(values)
    if low < 0:
        raise InvalidParameterError(
            "the ladder-based methods need non-negative values; shift the "
            f"series first (got minimum {low})"
        )
    return max(2, int(top) + 1)
