"""Blocking service client: negotiated transports, typed results.

The v2 client API (``docs/WIRE.md``, ``docs/SERVICE.md``)::

    from repro.service import ServiceClient

    with ServiceClient(port=port) as client:          # negotiates binary
        client.info.proto                             # 2 on a v2 server
        result = client.append("sku-42", prices,      # scalars, sequences
                               method="min-merge",    # or ndarrays -- one
                               buckets=32)            # unified signature
        result.accepted
        hist = client.query("sku-42").histogram       # a real Histogram

On connect the client sends a ``hello`` advertising ``proto=[1, 2]``;
the server answers with the highest protocol both sides speak and the
connection switches to binary framing when that is 2.  JSON remains the
default and the fallback: a server without ``hello`` (or started with
binary disabled) keeps the connection on newline-delimited JSON, and
``transport="json"`` forces it.  Either way the client API is identical
-- the transport is an implementation detail selected per connection.

Both transports read with explicit buffering loops (a TCP read may
return any fragment of a response; a write may be short), so the client
is correct over deliberately fragmenting links -- pinned by the
fragmenting-socket regression tests in ``tests/test_wire.py``.

:meth:`ServiceClient.from_url` selects the transport family from a URL
(``tcp://host:port`` for this module's socket transports,
``http://host:port`` for the REST facade of :mod:`repro.service.http`),
so callers stop hand-wiring host/port/prefer.  Error responses raise
the typed exceptions of :mod:`repro.service.errors` -- one taxonomy
across JSON, binary, and HTTP.

``request(payload: dict)`` -- the v1 dict-in/dict-out plumbing -- has
completed its deprecation window (a :class:`DeprecationWarning` shim
since the transport split) and is retired: it raises :class:`TypeError`
naming the typed replacement.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional, Protocol, runtime_checkable
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.core.batch import coerce_batch
from repro.exceptions import InvalidParameterError
from repro.service import wire
from repro.service.errors import (  # noqa: F401  (ServiceError re-exported)
    BadRequestError,
    ServiceError,
    UnknownOperationError,
    raise_for_error,
)
from repro.service.types import (
    AppendResult,
    CheckpointResult,
    QueryResult,
    ServerInfo,
    StatsResult,
)
from repro.core.histogram import Histogram

_RECV_CHUNK = 1 << 16


@runtime_checkable
class Transport(Protocol):
    """One request/response channel to a server (selected by negotiation).

    Implementations are synchronous and connection-oriented; ``call``
    performs one round trip and returns the decoded ``ok`` response
    payload (raising via :func:`raise_for_error` otherwise).  ``append``
    is split out so the binary transport can ship the value batch as a
    raw float64 frame instead of a JSON document.
    """

    proto: int

    def call(self, request: dict) -> dict:
        """Send one request object; return the decoded ``ok`` response."""
        ...

    def append(self, stream: str, values, config: dict) -> dict:
        """Send one append batch; return the decoded ``ok`` response."""
        ...

    def close(self) -> None:
        """Release the underlying connection."""
        ...


class _BufferedSocket:
    """Fragmentation-safe reads over any socket-like object.

    Only ``recv``, ``sendall`` and ``close`` are required of ``sock``,
    so tests can substitute a deliberately fragmenting shim.
    """

    __slots__ = ("sock", "_buf")

    def __init__(self, sock, buffered: bytes = b"") -> None:
        self.sock = sock
        self._buf = bytearray(buffered)

    def send_all(self, *chunks) -> None:
        for chunk in chunks:
            self.sock.sendall(chunk)

    def recv_line(self, limit: int) -> bytes:
        """One ``\\n``-terminated line, however the bytes arrive."""
        buf = self._buf
        while True:
            idx = buf.find(b"\n")
            if idx >= 0:
                line = bytes(buf[: idx + 1])
                del buf[: idx + 1]
                return line
            if len(buf) > limit:
                raise ConnectionError(
                    f"response line exceeds {limit} bytes without a newline"
                )
            chunk = self.sock.recv(_RECV_CHUNK)
            if not chunk:
                raise ConnectionError("server closed the connection")
            buf += chunk

    def recv_exactly(self, n: int) -> bytes:
        """Exactly ``n`` bytes, however the bytes arrive."""
        buf = self._buf
        while len(buf) < n:
            chunk = self.sock.recv(_RECV_CHUNK)
            if not chunk:
                raise ConnectionError(
                    f"server closed the connection mid-frame "
                    f"({len(buf)} of {n} bytes received)"
                )
            buf += chunk
        out = bytes(buf[:n])
        del buf[:n]
        return out

    def leftover(self) -> bytes:
        """Unconsumed bytes (handed to a successor transport)."""
        return bytes(self._buf)

    def close(self) -> None:
        self.sock.close()


class JsonTransport:
    """Protocol 1: newline-delimited JSON, one request line per response."""

    proto = wire.PROTO_JSON

    def __init__(self, sock, *, max_line: int = wire.MAX_PAYLOAD_BYTES) -> None:
        self._io = sock if isinstance(sock, _BufferedSocket) else _BufferedSocket(sock)
        self._max_line = max_line

    def call(self, request: dict) -> dict:
        """One JSON line out, one JSON line back (fragmentation-safe)."""
        self._io.send_all(
            (json.dumps(request, separators=(",", ":")) + "\n").encode("utf-8")
        )
        line = self._io.recv_line(self._max_line)
        return raise_for_error(json.loads(line))

    def append(self, stream: str, values, config: dict) -> dict:
        """Append as a JSON document (values listified once)."""
        if isinstance(values, np.ndarray):
            values = values.tolist()
        elif not isinstance(values, list):
            values = list(values)
        return self.call(
            {"op": "append", "stream": stream, "values": values, **config}
        )

    def close(self) -> None:
        """Close the connection."""
        self._io.close()


class BinaryTransport:
    """Protocol 2: length-prefixed binary frames (``repro.service.wire``).

    Appends travel as ``OP_APPEND`` frames -- a float64 C-contiguous
    ndarray is written straight from its own buffer (no copy); every
    other op rides in an ``OP_JSON`` frame.
    """

    proto = wire.PROTO_BINARY

    def __init__(self, sock) -> None:
        self._io = sock if isinstance(sock, _BufferedSocket) else _BufferedSocket(sock)

    def call(self, request: dict) -> dict:
        """One ``OP_JSON`` frame out, one ``OP_OK``/``OP_ERR`` frame back."""
        self._io.send_all(wire.encode_json_frame(wire.OP_JSON, request))
        return self._read_response()

    def append(self, stream: str, values, config: dict) -> dict:
        """Append as one raw float64 ``OP_APPEND`` frame (zero-copy)."""
        head, value_bytes = wire.encode_append_payload(
            {"stream": stream, **config}, np.asarray(values)
        )
        self._io.send_all(head, value_bytes)
        return self._read_response()

    def _read_response(self) -> dict:
        opcode, length = wire.decode_header(
            self._io.recv_exactly(wire.HEADER_BYTES)
        )
        payload = self._io.recv_exactly(length)
        if opcode not in (wire.OP_OK, wire.OP_ERR):
            raise wire.WireError(
                f"unexpected response opcode 0x{opcode:02x}"
            )
        return raise_for_error(wire.decode_json_payload(payload))

    def close(self) -> None:
        """Close the connection."""
        self._io.close()


def negotiate_transport(
    sock, *, prefer: str = "auto", buffered: bytes = b""
) -> tuple[Transport, ServerInfo]:
    """Run ``hello`` over a fresh connection; return (transport, info).

    ``prefer`` is ``"auto"`` (negotiate the best protocol), ``"json"``
    (skip negotiation entirely -- also the compatibility mode for
    pre-``hello`` servers), or ``"binary"`` (raise unless the server
    speaks protocol 2).  The same socket is reused across the switch;
    any bytes read beyond the hello response are carried over.
    """
    io = sock if isinstance(sock, _BufferedSocket) else _BufferedSocket(sock, buffered)
    json_transport = JsonTransport(io)
    if prefer == "json":
        return json_transport, ServerInfo(
            proto=wire.PROTO_JSON,
            protocols=(wire.PROTO_JSON,),
            negotiated=False,
        )
    if prefer not in ("auto", "binary"):
        raise ValueError(
            f'transport must be "auto", "json", or "binary", got {prefer!r}'
        )
    try:
        response = json_transport.call(
            {"op": "hello", "proto": list(wire.ALL_PROTOCOLS)}
        )
    except UnknownOperationError:
        if prefer == "auto":
            # Pre-negotiation server: stay on JSON lines.
            return json_transport, ServerInfo(
                proto=wire.PROTO_JSON,
                protocols=(wire.PROTO_JSON,),
                negotiated=False,
            )
        raise
    server = response.get("server", {})
    info = ServerInfo(
        proto=int(response.get("proto", wire.PROTO_JSON)),
        protocols=tuple(server.get("protocols", (wire.PROTO_JSON,))),
        server=server.get("name", "repro-histogram"),
        wire_version=server.get("wire_version"),
    )
    if info.proto == wire.PROTO_BINARY:
        return BinaryTransport(io), info
    if prefer == "binary":
        raise BadRequestError(
            f"server only speaks protocol(s) {info.protocols}; "
            "binary transport unavailable"
        )
    return json_transport, info


class ServiceClient:
    """Blocking client for :class:`~repro.service.StreamServer`.

    One TCP connection, synchronous request/response, typed results
    (:mod:`repro.service.types`).  The transport -- JSON lines or binary
    frames -- is negotiated at connect time and visible as
    :attr:`info`; pass ``transport="json"`` / ``"binary"`` to pin it.

    Error responses raise the typed :class:`ServiceError` subclasses of
    :mod:`repro.service.errors` (with
    :class:`~repro.exceptions.BackpressureError` for the
    ``backpressure`` code so engine-side and wire-side callers catch
    the same exception type).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        transport: str = "auto",
    ) -> None:
        self._closed = False
        sock = socket.create_connection((host, port), timeout=timeout)
        # Every request is a small write (or two: header then payload)
        # followed by a blocking read, the exact pattern that trips the
        # Nagle / delayed-ACK interaction (~40 ms stall per round trip).
        # Disable Nagle: this is a request/response protocol, the client
        # always has a reader waiting.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - exotic transports only
            pass
        try:
            self._transport, self._info = negotiate_transport(
                sock, prefer=transport
            )
        except BaseException:
            sock.close()
            raise

    @classmethod
    def _from_transport(
        cls, transport: Transport, info: ServerInfo
    ) -> "ServiceClient":
        """Wrap an already-connected transport (the ``from_url`` plumbing)."""
        client = cls.__new__(cls)
        client._closed = False
        client._transport = transport
        client._info = info
        return client

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 30.0) -> "ServiceClient":
        """Connect to a service URL, choosing the transport family.

        ``tcp://host:port`` (optionally ``?transport=json|binary|auto``)
        uses this module's socket transports with ``hello`` negotiation;
        ``http://host:port`` talks to the REST facade
        (:mod:`repro.service.http`) through the same typed client API.
        A bare ``host:port`` string counts as ``tcp://``.
        """
        parsed = urlsplit(url if "//" in url else f"tcp://{url}")
        scheme = parsed.scheme or "tcp"
        host = parsed.hostname or "127.0.0.1"
        if parsed.port is None:
            raise InvalidParameterError(
                f"service URL {url!r} must carry an explicit port"
            )
        if scheme == "tcp":
            prefer = parse_qs(parsed.query).get("transport", ["auto"])[0]
            return cls(host, parsed.port, timeout=timeout, transport=prefer)
        if scheme == "http":
            # Imported lazily: the REST module is optional at runtime for
            # pure-TCP callers and imports this module's helpers.
            from repro.service.http import connect_http

            return cls._from_transport(*connect_http(host, parsed.port, timeout))
        raise InvalidParameterError(
            f"unsupported service URL scheme {scheme!r} (expected "
            "tcp:// or http://)"
        )

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._transport.close()

    # -- connection introspection -------------------------------------------

    @property
    def info(self) -> ServerInfo:
        """What ``hello`` negotiation learned (protocol, server identity)."""
        return self._info

    @property
    def transport(self) -> Transport:
        """The live transport (a :class:`JsonTransport` or
        :class:`BinaryTransport`)."""
        return self._transport

    # -- typed operations ----------------------------------------------------

    def append(self, stream: str, values, **config) -> AppendResult:
        """Append values to a stream (creating it from ``config``).

        ``values`` may be a scalar, any sequence, or a numpy ndarray --
        one unified signature (``docs/API.md``).  On the binary
        transport an ndarray is shipped as a single raw float64 frame
        with no per-item conversion; a float64 C-contiguous array is
        not even copied.
        """
        response = self._transport.append(stream, coerce_batch(values), config)
        return AppendResult(
            stream=response.get("stream", stream),
            accepted=int(response["accepted"]),
        )

    def query(self, stream: str, *, drain: bool = False) -> QueryResult:
        """The stream's histogram as a :class:`QueryResult` whose
        ``histogram`` is a real :class:`~repro.core.histogram.Histogram`
        (``drain=True`` for a barrier: all queued batches apply before
        the query runs)."""
        response = self._transport.call(
            {"op": "query", "stream": stream, "drain": drain}
        )
        return QueryResult(
            stream=stream,
            histogram=Histogram.from_dict(response["histogram"]),
        )

    def stats(self, stream: Optional[str] = None) -> StatsResult:
        """Engine-wide (or per-stream) statistics."""
        payload: dict[str, Any] = {"op": "stats"}
        if stream is not None:
            payload["stream"] = stream
        response = self._transport.call(payload)
        return StatsResult(stream=stream, data=response["stats"])

    def checkpoint(self, stream: Optional[str] = None) -> CheckpointResult:
        """Force snapshots; returns the generations written per stream."""
        payload: dict[str, Any] = {"op": "checkpoint"}
        if stream is not None:
            payload["stream"] = stream
        response = self._transport.call(payload)
        return CheckpointResult(generations=response["generations"])

    def streams(self) -> tuple[str, ...]:
        """The server's registered stream ids, sorted."""
        return tuple(self._transport.call({"op": "streams"})["streams"])

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self._transport.call({"op": "ping"}).get("pong"))

    # -- retired v1 surface ----------------------------------------------------

    def request(self, payload: object = None) -> dict:
        """Removed.  The v1 dict-in/dict-out shim completed its
        deprecation window (``DeprecationWarning`` since the transport
        split) and now raises :class:`TypeError` unconditionally.

        Use the typed methods instead: :meth:`append`, :meth:`query`,
        :meth:`stats`, :meth:`checkpoint`, :meth:`streams`,
        :meth:`ping`.  Code that genuinely needs to send a raw request
        object (tests exercising malformed payloads) can go through
        ``client.transport.call(payload)`` explicitly.
        """
        raise TypeError(
            "ServiceClient.request(payload) was removed; use the typed "
            "methods (append/query/stats/checkpoint/streams/ping), or "
            "client.transport.call(payload) for raw requests"
        )
