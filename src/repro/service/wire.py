"""Binary wire framing for the streaming service (protocol version 2).

Newline-delimited JSON (protocol 1, :mod:`repro.service.server`) parses
every appended value into a Python object before the batch reaches the
vectorized ingest kernels -- the wire format caps the hot path.  This
module defines the length-prefixed binary framing negotiated per
connection via the ``hello`` op (``docs/WIRE.md``), designed so an
append batch travels socket -> ``ndarray`` with **zero per-item Python
objects**:

Frame layout (all header fields network byte order)::

    +--------+---------+--------+----------------+=================+
    | magic  | version | opcode | payload length |     payload     |
    | u16    | u8      | u8     | u32            |  length bytes   |
    +--------+---------+--------+----------------+=================+

Opcodes:

* ``OP_JSON`` (0x01) -- payload is one UTF-8 JSON request object, the
  exact schema of the JSON line protocol.  The slow-path ops (query,
  stats, checkpoint, ...) ride in these frames.
* ``OP_APPEND`` (0x02) -- the hot path.  Payload is a small JSON meta
  header (stream id + optional creation config) followed by raw IEEE-754
  float64 values, little endian::

      +----------+------------------+========================+
      | meta len | meta JSON        | float64 values (LE)    |
      | u32      | meta-len bytes   | 8 bytes per value      |
      +----------+------------------+========================+

  The receiver maps the value region with ``numpy.frombuffer`` over a
  ``memoryview`` -- no copy, no per-item boxing -- and feeds the ndarray
  straight to the engine's batched ``extend()``.
* ``OP_OK`` (0x81) / ``OP_ERR`` (0x82) -- responses; payload is the JSON
  response object of the line protocol (``{"ok": true, ...}`` /
  ``{"ok": false, "error": ..., "message": ...}``).

Values are always transmitted as float64.  Integer payloads below 2**53
are exact in float64, and every summary computes bucket arithmetic in
float, so histograms built from the binary path are bit-identical to the
JSON path (pinned by ``tests/test_wire.py``).  Non-finite payloads
(NaN/inf) are rejected at the wire with a ``bad-request`` error: the
kernels' comparison semantics are only defined for ordered values.

This module is transport-agnostic: it only encodes/decodes ``bytes``.
The asyncio server and the blocking client each own their I/O loops.
"""

from __future__ import annotations

import json
import struct
from typing import Optional, Union

import numpy as np

#: First two bytes of every binary frame.  0xF5 is not valid ASCII/UTF-8
#: lead byte material for a JSON document, so a binary frame can never be
#: mistaken for a JSON request line (and vice versa).
MAGIC = 0xF548

#: Version of the framing described above (the ``hello`` op negotiates
#: protocol *numbers*; this versions the frame layout within protocol 2).
WIRE_VERSION = 1

#: Protocol numbers exchanged by ``hello``: 1 = JSON lines, 2 = binary.
PROTO_JSON = 1
PROTO_BINARY = 2
ALL_PROTOCOLS = (PROTO_JSON, PROTO_BINARY)

#: Hard cap on a frame payload (matches the JSON line limit): a hostile
#: length prefix must not make the receiver buffer unbounded memory.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

OP_JSON = 0x01
OP_APPEND = 0x02
OP_OK = 0x81
OP_ERR = 0x82

_OPCODES = frozenset({OP_JSON, OP_APPEND, OP_OK, OP_ERR})

HEADER = struct.Struct("!HBBI")
HEADER_BYTES = HEADER.size  # 8

_META_LEN = struct.Struct("!I")

#: Value payload dtype: IEEE-754 binary64, little endian, as documented.
VALUE_DTYPE = np.dtype("<f8")


class WireError(ValueError):
    """A malformed, truncated, or protocol-violating binary frame.

    Maps to the ``bad-request`` error code on the wire.  Subclasses
    ``ValueError`` so generic request-parsing error handling catches it.
    """


def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One complete frame: header + payload."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame cap"
        )
    return HEADER.pack(MAGIC, WIRE_VERSION, opcode, len(payload)) + payload


def encode_json_frame(opcode: int, payload: dict) -> bytes:
    """A frame whose payload is one compact JSON object."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return encode_frame(opcode, body)


def decode_header(header: bytes) -> tuple[int, int]:
    """Validate an 8-byte header; returns ``(opcode, payload_length)``.

    Raises :class:`WireError` on bad magic, an unsupported wire version,
    an unknown opcode, or an oversized length -- the caller should answer
    ``bad-request`` and close, since a framing error desynchronizes the
    byte stream unrecoverably.
    """
    if len(header) != HEADER_BYTES:
        raise WireError(
            f"truncated frame header: {len(header)} of {HEADER_BYTES} bytes"
        )
    magic, version, opcode, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic 0x{magic:04x} (expected 0x{MAGIC:04x})")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this side speaks "
            f"{WIRE_VERSION})"
        )
    if opcode not in _OPCODES:
        raise WireError(f"unknown opcode 0x{opcode:02x}")
    if length > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap"
        )
    return opcode, length


def decode_json_payload(payload: Union[bytes, memoryview]) -> dict:
    """The JSON object inside an ``OP_JSON`` / ``OP_OK`` / ``OP_ERR`` frame."""
    try:
        obj = json.loads(bytes(payload))
    except ValueError as exc:
        raise WireError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError("frame payload must be a JSON object")
    return obj


def encode_append_payload(meta: dict, values: np.ndarray) -> tuple[bytes, memoryview]:
    """Encode an ``OP_APPEND`` frame as ``(head, value_bytes)``.

    ``head`` is the frame header + meta section; ``value_bytes`` is a
    memoryview over the value array's own buffer, so a float64
    C-contiguous input is transmitted **without copying** (the caller
    writes the two parts back to back).  Non-float64 or non-contiguous
    inputs are converted once.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise WireError(f"append payload must be 1-D, got shape {arr.shape}")
    if arr.dtype != VALUE_DTYPE or not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr, dtype=VALUE_DTYPE)
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    length = _META_LEN.size + len(meta_bytes) + arr.nbytes
    if length > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"append frame of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap; split the batch"
        )
    head = (
        HEADER.pack(MAGIC, WIRE_VERSION, OP_APPEND, length)
        + _META_LEN.pack(len(meta_bytes))
        + meta_bytes
    )
    return head, memoryview(arr).cast("B")


def decode_values(buffer: Union[bytes, bytearray, memoryview]) -> np.ndarray:
    """Zero-copy float64 view over a raw little-endian value region.

    The shared tail of every raw-value ingest path: the ``OP_APPEND``
    frame decoder below and the HTTP facade's
    ``application/octet-stream`` append bodies
    (:mod:`repro.service.http`) both map the bytes with
    ``numpy.frombuffer`` -- read-only, no copy, no per-item boxing.
    Raises :class:`WireError` when the region is not a whole number of
    float64s or contains non-finite (NaN/inf) values.
    """
    view = memoryview(buffer)
    if len(view) % VALUE_DTYPE.itemsize:
        raise WireError(
            f"value region of {len(view)} bytes is not a whole number "
            f"of float64 values"
        )
    values = np.frombuffer(view, dtype=VALUE_DTYPE)
    if values.size and not bool(np.isfinite(values).all()):
        raise WireError("append payload contains non-finite (NaN/inf) values")
    return values


def decode_append_payload(
    payload: Union[bytes, bytearray, memoryview],
) -> tuple[dict, np.ndarray]:
    """Decode an ``OP_APPEND`` payload to ``(meta, values)``.

    The returned array is a **zero-copy view** over ``payload`` (via
    ``numpy.frombuffer``); it is read-only, which is exactly what the
    batched ingest path needs.  Raises :class:`WireError` on a truncated
    meta section, a value region that is not a whole number of float64s,
    or non-finite (NaN/inf) values.
    """
    view = memoryview(payload)
    if len(view) < _META_LEN.size:
        raise WireError("append payload truncated before the meta length")
    (meta_len,) = _META_LEN.unpack_from(view, 0)
    value_off = _META_LEN.size + meta_len
    if value_off > len(view):
        raise WireError(
            f"append meta section of {meta_len} bytes overruns the "
            f"{len(view)}-byte payload"
        )
    meta = decode_json_payload(view[_META_LEN.size : value_off])
    if "stream" not in meta:
        raise WireError('append meta must carry a "stream" id')
    return meta, decode_values(view[value_off:])


def negotiate(client_protocols, server_protocols) -> Optional[int]:
    """Highest protocol both sides speak, or ``None`` when disjoint.

    Unknown protocol numbers are ignored (forward compatibility: a v3
    client offering ``[1, 2, 3]`` negotiates 2 with this server).
    """
    try:
        offered = {int(p) for p in client_protocols}
    except (TypeError, ValueError):
        return None
    usable = offered & {int(p) for p in server_protocols}
    return max(usable) if usable else None
