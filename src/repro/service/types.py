"""Typed request/response surface of the service client (PEP 561 friendly).

The v1 client was dict-in/dict-out: every caller indexed raw wire
payloads by string key.  These dataclasses are the v2 surface --
:class:`~repro.service.client.ServiceClient` returns them from its typed
methods, and ``request(payload)`` remains as a deprecated dict shim
(mirroring the shim-then-retire convention of earlier API redesigns).

Everything here is immutable plain data; the histogram inside
:class:`QueryResult` is a real :class:`~repro.core.histogram.Histogram`
(with ``meta``), not its wire dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Tuple

from repro.core.histogram import Histogram


@dataclass(frozen=True)
class ServerInfo:
    """What ``hello`` negotiation learned about the server.

    ``proto`` is the protocol this connection actually speaks (1 = JSON
    lines, 2 = binary frames); ``protocols`` is everything the server
    advertised.  A pre-negotiation server (no ``hello`` op) surfaces as
    ``proto=1`` with ``negotiated=False``.
    """

    proto: int
    protocols: Tuple[int, ...]
    server: str = "repro-histogram"
    wire_version: Optional[int] = None
    negotiated: bool = True


@dataclass(frozen=True)
class AppendResult:
    """Outcome of one accepted append batch."""

    stream: str
    accepted: int

    def __int__(self) -> int:
        return self.accepted


@dataclass(frozen=True)
class QueryResult:
    """A served histogram, decoded to the real object."""

    stream: str
    histogram: Histogram


@dataclass(frozen=True)
class StatsResult:
    """Engine-wide or per-stream statistics.

    The stats payload is an open-ended nested mapping (per-stream
    counters, optional metrics registry snapshot), so the raw dict is
    kept whole under :attr:`data` with mapping-style access sugar.
    """

    stream: Optional[str]
    data: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __contains__(self, key: object) -> bool:
        return key in self.data

    def __iter__(self) -> Iterator[str]:
        return iter(self.data)

    def get(self, key: str, default: Any = None) -> Any:
        """``data.get`` passthrough."""
        return self.data.get(key, default)


@dataclass(frozen=True)
class CheckpointResult:
    """Snapshot generations written by a ``checkpoint`` request."""

    generations: Mapping[str, int] = field(default_factory=dict)

    def __getitem__(self, stream: str) -> int:
        return self.generations[stream]

    def __contains__(self, stream: object) -> bool:
        return stream in self.generations

    def __iter__(self) -> Iterator[str]:
        return iter(self.generations)
