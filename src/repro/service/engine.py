"""Multi-tenant streaming engine: many named streams, one process.

:class:`StreamEngine` is the stateful core of the service layer
(``docs/SERVICE.md``).  It owns any number of named streams ("tenants"),
each a streaming summary built by :func:`repro.api.build_summary`, and
provides:

* **Thread-safe ingest** -- ``append(stream_id, values)`` routes whole
  batches through the summaries' vectorized batch path.  With
  ``workers=0`` (default) batches apply inline under the stream's lock;
  with ``workers > 0`` they queue on a per-stream FIFO and a worker pool
  applies them in arrival order (one worker per stream at a time, so a
  stream's batches never interleave).
* **Bounded queues with admission control** -- each stream holds at most
  ``max_pending`` queued-but-unapplied items; an append that would
  exceed the bound raises :class:`~repro.exceptions.BackpressureError`
  *before* anything is enqueued, so a rejected batch is never partially
  ingested.
* **Snapshot-isolated queries** -- ``histogram(stream_id)`` runs under
  the same per-stream lock as batch application, so a query always sees
  a batch boundary: the summary after some whole prefix of the accepted
  batches, never a half-applied batch.
* **Crash-consistent checkpoints** -- with ``checkpoint_dir`` set, each
  stream gets its own :class:`~repro.resilience.CheckpointStore`
  (journal + atomic snapshot rotation) plus a ``stream.json`` manifest;
  snapshots fire every ``checkpoint_every`` applied items and a new
  engine pointed at the same directory recovers every stream bit for
  bit (snapshot + journal tail replay).
* **Per-tenant metrics** -- pass ``metrics=`` and every stream's summary
  is instrumented into one shared registry under a ``<stream_id>.``
  prefix, exported via ``stats()``.

The engine is synchronous and thread-safe; the asyncio wire front lives
in :mod:`repro.service.server` and calls into it from executor threads.
"""

from __future__ import annotations

import json
import os
import queue
import re
import threading
import time
import zlib
from collections import deque
from typing import Optional, Sequence

from repro.api import DEFAULT_UNIVERSE, build_summary, streaming_methods
from repro.core.batch import coerce_batch
from repro.core.histogram import Histogram, HistogramMeta
from repro.exceptions import (
    BackpressureError,
    EmptySummaryError,
    InvalidParameterError,
    ReproError,
    UnknownStreamError,
)
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.observability.metrics import MetricsRegistry
from repro.resilience.store import CheckpointStore

_MANIFEST = "stream.json"
_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]+")
_SHUTDOWN = object()


def _tenant_dirname(stream_id: str) -> str:
    """Filesystem-safe directory name for a stream id (collision-proof).

    Sanitizes to a readable slug and appends a CRC-32 of the exact id, so
    distinct ids that sanitize identically ("a/b" vs "a_b") still get
    distinct directories.
    """
    slug = _SAFE_ID.sub("_", stream_id)[:48] or "stream"
    return f"{slug}-{zlib.crc32(stream_id.encode('utf-8')):08x}"


class _Tenant:
    """One named stream: summary + lock + write queue + checkpoint store."""

    __slots__ = (
        "stream_id",
        "method",
        "buckets",
        "epsilon",
        "universe",
        "window",
        "backend",
        "summary",
        "lock",
        "qlock",
        "pending",
        "pending_items",
        "scheduled",
        "idle",
        "store",
        "since_snapshot",
        "last_generation",
        "recovered",
        "appends",
        "rejected",
        "queries",
        "checkpoints",
        "last_error",
        "attached",
        "epoch",
        "cached_epoch",
        "cached_hist",
        "cached_items",
    )

    def __init__(self, stream_id: str, method: str, summary) -> None:
        self.stream_id = stream_id
        self.method = method
        self.buckets = getattr(summary, "target_buckets", None)
        self.epsilon = getattr(summary, "epsilon", None)
        self.universe = getattr(summary, "universe", None)
        self.window = getattr(summary, "window", None)
        self.backend = getattr(summary, "backend", "object")
        self.summary = summary
        # ``lock`` guards the summary + store (apply vs query); ``qlock``
        # guards the write queue bookkeeping and is never held across an
        # apply, so admission control stays responsive during long batches.
        self.lock = threading.Lock()
        self.qlock = threading.Lock()
        self.pending = deque()
        self.pending_items = 0
        self.scheduled = False
        self.idle = threading.Condition(self.qlock)
        self.store: Optional[CheckpointStore] = None
        self.since_snapshot = 0
        self.last_generation: Optional[int] = None
        self.recovered = False
        self.appends = 0
        self.rejected = 0
        self.queries = 0
        self.checkpoints = 0
        self.last_error: Optional[str] = None
        self.attached = False
        # Write epoch for query caching: bumped under ``lock`` on every
        # applied batch, so ``(stream, epoch)`` names an exact summary
        # state.  ``cached_epoch == -1`` means nothing cached; recovery,
        # adoption, and handoff all build a fresh _Tenant, which is what
        # invalidates the cache across ownership changes.
        self.epoch = 0
        self.cached_epoch = -1
        self.cached_hist: Optional[Histogram] = None
        self.cached_items = 0

    def manifest(self) -> dict:
        """The ``stream.json`` payload a future engine recovers from."""
        return {
            "stream_id": self.stream_id,
            "method": self.method,
            "buckets": self.buckets,
            "epsilon": self.epsilon,
            "universe": self.universe,
            "window": self.window,
            "backend": self.backend,
        }


class StreamEngine:
    """Long-lived engine owning many named streams (see module docs).

    Parameters
    ----------
    checkpoint_dir:
        Root directory for per-stream checkpoint stores; ``None`` (the
        default) disables durability.  An existing directory is scanned
        on startup and every manifested stream is recovered (snapshot +
        journal tail) before the engine accepts traffic.
    checkpoint_every:
        Snapshot a stream after this many applied items since its last
        snapshot (``None`` = only explicit :meth:`checkpoint` calls).
    keep / journal:
        Passed to each stream's :class:`~repro.resilience.CheckpointStore`
        (generations retained; whether batches are journaled before
        ingestion -- journaling is what makes recovery bit-exact between
        snapshots).
    max_pending:
        Per-stream bound on queued-but-unapplied items; exceeding it
        raises :class:`~repro.exceptions.BackpressureError`.
    workers:
        ``0`` applies batches inline on the appending thread; ``n > 0``
        starts ``n`` daemon worker threads draining the per-stream
        queues (arrival order per stream is always preserved).
    metrics:
        ``None``/``False``/``True``/:class:`MetricsRegistry` -- resolved
        per stream with a ``<stream_id>.`` prefix into one shared
        registry (see :mod:`repro.observability`).
    fault_plan:
        Test-only :class:`~repro.resilience.FaultPlan` forwarded to every
        checkpoint store.
    apply_hook:
        Test seam: called as ``apply_hook(stream_id, n_items)`` just
        before each batch applies (lets tests stall the apply path to
        exercise backpressure and isolation deterministically).
    owns:
        Optional ``stream_id -> bool`` predicate limiting startup
        recovery to the streams this engine is responsible for.  Cluster
        workers share one ``checkpoint_dir`` (``docs/CLUSTER.md``) and
        pass their hash-ring membership test here, so each manifested
        stream is recovered by exactly one worker; streams outside the
        predicate stay on disk for :meth:`adopt`.
    """

    def __init__(
        self,
        *,
        checkpoint_dir=None,
        checkpoint_every: Optional[int] = None,
        keep: int = 2,
        journal: bool = True,
        max_pending: int = 100_000,
        workers: int = 0,
        metrics=None,
        fault_plan=None,
        apply_hook=None,
        owns=None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if workers < 0:
            raise InvalidParameterError(f"workers must be >= 0, got {workers}")
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.journal = journal
        self.max_pending = max_pending
        self.fault_plan = fault_plan
        self.apply_hook = apply_hook
        self.owns = owns
        if metrics is True:
            metrics = MetricsRegistry()
        elif isinstance(metrics, SummaryMetrics):
            metrics = metrics.registry
        self.metrics_registry: Optional[MetricsRegistry] = (
            metrics if isinstance(metrics, MetricsRegistry) else None
        )
        self._tenants: dict[str, _Tenant] = {}
        self._registry_lock = threading.Lock()
        self._closed = False
        self._errors = 0
        self._ready: queue.Queue = queue.Queue()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-engine-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()
        if self.checkpoint_dir is not None:
            self._recover_existing()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Drain every queue, stop the workers, refuse further appends."""
        if self._closed:
            return
        self.drain()
        self._closed = True
        for _ in self._workers:
            self._ready.put(_SHUTDOWN)
        for thread in self._workers:
            thread.join(timeout=5.0)
        for tenant in list(self._tenants.values()):
            if tenant.store is not None:
                with tenant.lock:
                    tenant.store.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until all accepted batches have applied (True on success)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for tenant in list(self._tenants.values()):
            with tenant.idle:
                while tenant.pending_items or tenant.scheduled:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    tenant.idle.wait(remaining)
        return True

    # -- stream management --------------------------------------------------

    def stream(
        self,
        stream_id: str,
        *,
        method: str = "min-increment",
        buckets: int = 32,
        epsilon: float = 0.1,
        universe: Optional[int] = None,
        window: Optional[int] = None,
        backend: str = "object",
    ):
        """Create (or fetch) the named stream; returns a ``StreamHandle``.

        Creation is idempotent: calling again with the same id returns a
        handle on the existing stream, but a conflicting ``method`` (or
        ``window``) raises rather than silently serving different math
        than the caller asked for.  ``backend`` selects the maintenance
        kernel for the MIN-MERGE family (``"object"`` | ``"soa"``, see
        ``docs/PERF.md``); it changes no math, so it is not part of the
        conflict check.
        """
        from repro.service.session import StreamHandle

        tenant = self._tenants.get(stream_id)
        if tenant is None:
            with self._registry_lock:
                tenant = self._tenants.get(stream_id)
                if tenant is None:
                    tenant = self._create_tenant(
                        stream_id,
                        method=method,
                        buckets=buckets,
                        epsilon=epsilon,
                        universe=universe,
                        window=window,
                        backend=backend,
                    )
                    self._tenants[stream_id] = tenant
                    return StreamHandle(self, tenant)
        if tenant.method != method or tenant.window != window:
            raise InvalidParameterError(
                f"stream {stream_id!r} already exists with "
                f"method={tenant.method!r} window={tenant.window}; "
                f"requested method={method!r} window={window}"
            )
        return StreamHandle(self, tenant)

    def attach(self, stream_id: str, summary, *, method: Optional[str] = None):
        """Adopt a prebuilt summary as a new stream; returns a handle.

        The escape hatch behind ``summarize(method=SomeClass)`` and the
        one-shot path: any :class:`~repro.core.interface.StreamingSummary`
        joins the engine's locking/queueing/stats machinery.  Attached
        streams are never checkpointed (the engine cannot manifest a
        factory for an arbitrary object).
        """
        from repro.service.session import StreamHandle

        self._check_open()
        with self._registry_lock:
            if stream_id in self._tenants:
                raise InvalidParameterError(
                    f"stream {stream_id!r} already exists"
                )
            tenant = _Tenant(
                stream_id, method or type(summary).__name__, summary
            )
            tenant.attached = True
            self._tenants[stream_id] = tenant
        return StreamHandle(self, tenant)

    def handle(self, stream_id: str):
        """A handle on an *existing* stream (no config; raises on unknown).

        Unlike :meth:`stream` this never creates and never checks config,
        so it is the right accessor when the caller does not care how the
        stream was configured (e.g. the wire front re-addressing a stream
        created by an earlier request).
        """
        from repro.service.session import StreamHandle

        return StreamHandle(self, self._tenant(stream_id))

    def streams(self) -> tuple:
        """The registered stream ids, sorted."""
        return tuple(sorted(self._tenants))

    def _create_tenant(
        self,
        stream_id,
        *,
        method,
        buckets,
        epsilon,
        universe,
        window,
        backend="object",
    ) -> _Tenant:
        self._check_open()
        if method not in streaming_methods():
            raise InvalidParameterError(
                f"unknown streaming method {method!r}; streaming methods: "
                f"{', '.join(streaming_methods())} (offline methods cannot "
                "back a stream; see repro.api.methods())"
            )
        metrics = None
        if self.metrics_registry is not None:
            metrics = resolve_metrics(
                self.metrics_registry, prefix=f"{stream_id}."
            )
        summary = build_summary(
            method,
            buckets=buckets,
            epsilon=epsilon,
            universe=universe if universe is not None else DEFAULT_UNIVERSE,
            window=window,
            metrics=metrics,
            backend=backend,
        )
        if metrics is not None:
            metrics.bind_gauges(summary)
        tenant = _Tenant(stream_id, method, summary)
        if self.checkpoint_dir is not None:
            tenant.store = self._open_store(tenant, write_manifest=True)
        return tenant

    # -- checkpointing -------------------------------------------------------

    def _open_store(
        self, tenant: _Tenant, *, write_manifest: bool
    ) -> CheckpointStore:
        directory = os.path.join(
            self.checkpoint_dir, _tenant_dirname(tenant.stream_id)
        )
        store = CheckpointStore(
            directory,
            keep=self.keep,
            journal=self.journal,
            fault_plan=self.fault_plan,
        )
        manifest_path = os.path.join(directory, _MANIFEST)
        if write_manifest and not os.path.exists(manifest_path):
            tmp = manifest_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(tenant.manifest(), handle)
            os.replace(tmp, manifest_path)
        return store

    def _recover_existing(self) -> None:
        """Rebuild every manifested stream found under ``checkpoint_dir``.

        With an ``owns`` predicate (cluster workers sharing one
        directory) only the streams it admits are recovered; the rest
        stay on disk for another engine -- or a later :meth:`adopt`.
        """
        if not os.path.isdir(self.checkpoint_dir):
            return
        for name in sorted(os.listdir(self.checkpoint_dir)):
            manifest_path = os.path.join(self.checkpoint_dir, name, _MANIFEST)
            if not os.path.isfile(manifest_path):
                continue
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if self.owns is not None and not self.owns(manifest["stream_id"]):
                continue
            tenant = self._recover_tenant(manifest)
            self._tenants[tenant.stream_id] = tenant

    def _recover_tenant(self, manifest: dict) -> _Tenant:
        """One manifested stream back to life: snapshot + journal tail."""
        stream_id = manifest["stream_id"]
        metrics = None
        if self.metrics_registry is not None:
            metrics = resolve_metrics(
                self.metrics_registry, prefix=f"{stream_id}."
            )

        def factory(m=manifest):
            return build_summary(
                m["method"],
                buckets=m["buckets"],
                epsilon=m["epsilon"],
                universe=m["universe"],
                window=m["window"],
                backend=m.get("backend", "object"),
            )

        tenant = _Tenant(stream_id, manifest["method"], factory())
        tenant.store = self._open_store(tenant, write_manifest=False)
        tenant.summary = tenant.store.recover(factory=factory)
        tenant.buckets = manifest["buckets"]
        tenant.epsilon = manifest["epsilon"]
        tenant.universe = manifest["universe"]
        tenant.window = manifest["window"]
        # The restored checkpoint is authoritative for the kernel (old
        # checkpoints predate the manifest field).
        tenant.backend = getattr(tenant.summary, "backend", "object")
        tenant.recovered = True
        if metrics is not None:
            metrics.bind_gauges(tenant.summary)
        return tenant

    def adopt(self, stream_id: str):
        """Adopt a manifested stream from ``checkpoint_dir`` right now.

        The cluster adoption path (``docs/CLUSTER.md``): when a worker
        dies, the router tells a survivor to ``adopt`` each orphaned
        stream, and this engine recovers it from the shared directory
        (newest good snapshot + journal tail -- bit-identical to the
        uninterrupted run, because acknowledged appends are journaled
        before they are acknowledged).  Idempotent: adopting a stream
        this engine already owns returns the live handle.
        """
        from repro.service.session import StreamHandle

        self._check_open()
        if self.checkpoint_dir is None:
            raise InvalidParameterError(
                "adopt() needs a checkpoint_dir: adoption recovers the "
                "stream from its on-disk manifest"
            )
        with self._registry_lock:
            tenant = self._tenants.get(stream_id)
            if tenant is not None:
                return StreamHandle(self, tenant)
            manifest_path = os.path.join(
                self.checkpoint_dir, _tenant_dirname(stream_id), _MANIFEST
            )
            if not os.path.isfile(manifest_path):
                raise InvalidParameterError(
                    f"no manifest for stream {stream_id!r} under "
                    f"{self.checkpoint_dir}"
                )
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            tenant = self._recover_tenant(manifest)
            self._tenants[stream_id] = tenant
        return StreamHandle(self, tenant)

    def release(self, stream_id: str, *, checkpoint: bool = True) -> Optional[int]:
        """Drop a stream from this engine (the handoff donor side).

        Waits for the stream's queued batches to apply (FIFO drain),
        optionally snapshots, closes its checkpoint store, and removes
        the tenant -- after which another engine may :meth:`adopt` the
        stream from the shared directory.  Returns the final snapshot
        generation (``None`` when not checkpointing or not durable).

        The caller is responsible for fencing new appends first (the
        cluster router gates the stream during handoff); an append that
        races the release either lands before it (drained, checkpointed)
        or fails with *unknown stream* after it -- never silently drops.
        """
        tenant = self._tenant(stream_id)
        with tenant.idle:
            while tenant.pending_items or tenant.scheduled:
                tenant.idle.wait()
        with self._registry_lock:
            self._tenants.pop(stream_id, None)
        generation = None
        with tenant.lock:
            if tenant.store is not None:
                if checkpoint:
                    generation = tenant.store.save(tenant.summary)
                tenant.store.close()
        return generation

    def checkpoint(self, stream_id: Optional[str] = None) -> dict:
        """Snapshot one stream (or every durable stream) right now.

        Returns ``{stream_id: generation}``.  Naming a stream without a
        checkpoint store raises; the all-streams form skips non-durable
        streams silently.
        """
        if stream_id is not None:
            tenant = self._tenant(stream_id)
            if tenant.store is None:
                raise InvalidParameterError(
                    f"stream {stream_id!r} has no checkpoint store "
                    "(engine has no checkpoint_dir, or the stream was "
                    "attached)"
                )
            return {stream_id: self._snapshot(tenant)}
        out = {}
        for tenant in list(self._tenants.values()):
            if tenant.store is not None:
                out[tenant.stream_id] = self._snapshot(tenant)
        return out

    def _snapshot(self, tenant: _Tenant) -> int:
        with tenant.lock:
            generation = tenant.store.save(tenant.summary)
            tenant.since_snapshot = 0
            tenant.last_generation = generation
            tenant.checkpoints += 1
            return generation

    # -- ingest --------------------------------------------------------------

    def append(self, stream_id: str, values) -> int:
        """Append values to the named stream; returns the item count.

        One unified signature (``docs/API.md``): ``values`` may be a
        scalar, any sequence, or a numpy ndarray -- normalized through
        :func:`~repro.core.batch.coerce_batch`, so an ndarray (e.g. the
        zero-copy view over a binary wire frame) reaches the vectorized
        batch kernels without conversion.

        Synchronous engines (``workers=0``) apply inline before
        returning; worker engines enqueue and return immediately (call
        :meth:`drain` for a barrier).  Raises
        :class:`~repro.exceptions.BackpressureError` when the stream's
        queue bound would be exceeded -- nothing is enqueued in that
        case.
        """
        self._check_open()
        tenant = self._tenant(stream_id)
        values = coerce_batch(values)
        n = len(values)
        if n == 0:
            return 0
        if not self._workers:
            with tenant.qlock:
                tenant.appends += 1
            self._apply(tenant, values)
            return n
        with tenant.qlock:
            if tenant.pending_items + n > self.max_pending:
                tenant.rejected += 1
                raise BackpressureError(
                    f"stream {stream_id!r} write queue is full: "
                    f"{tenant.pending_items} item(s) pending + {n} offered "
                    f"> max_pending={self.max_pending}; retry after the "
                    "queue drains"
                )
            tenant.pending.append(values)
            tenant.pending_items += n
            tenant.appends += 1
            if not tenant.scheduled:
                tenant.scheduled = True
                self._ready.put(tenant.stream_id)
        return n

    def _worker_loop(self) -> None:
        while True:
            item = self._ready.get()
            if item is _SHUTDOWN:
                return
            tenant = self._tenants.get(item)
            if tenant is not None:
                self._drain_tenant(tenant)

    def _drain_tenant(self, tenant: _Tenant) -> None:
        """Apply the tenant's queued batches in FIFO order until empty.

        Only the worker that flipped ``scheduled`` runs this, so a
        stream's batches never apply concurrently or out of order.
        """
        while True:
            with tenant.qlock:
                if not tenant.pending:
                    tenant.scheduled = False
                    tenant.idle.notify_all()
                    return
                batch = tenant.pending.popleft()
                more = bool(tenant.pending)
            try:
                # Group commit: while more batches are queued behind this
                # one, defer the journal fsync -- the drain's final batch
                # (or the next snapshot) commits the whole run with one
                # fsync.  Frame/batch boundaries stay the durability
                # boundaries the caller observes via drain().
                self._apply(tenant, batch, sync=not more)
            except ReproError as exc:
                # A worker must survive a poisoned batch (e.g. a value
                # outside the stream's universe): record and move on.
                tenant.last_error = f"{type(exc).__name__}: {exc}"
                self._errors += 1
            finally:
                with tenant.qlock:
                    tenant.pending_items -= len(batch)
                    if not tenant.pending_items:
                        tenant.idle.notify_all()

    def _apply(self, tenant: _Tenant, values, *, sync: bool = True) -> None:
        if self.apply_hook is not None:
            self.apply_hook(tenant.stream_id, len(values))
        with tenant.lock:
            if tenant.store is not None:
                tenant.store.ingest(tenant.summary, values, sync=sync)
            else:
                tenant.summary.extend(values)
            tenant.since_snapshot += len(values)
            # Every applied batch starts a new write epoch; cached query
            # results keyed on the old epoch become unreachable.
            tenant.epoch += 1
        if (
            tenant.store is not None
            and self.checkpoint_every is not None
            and tenant.since_snapshot >= self.checkpoint_every
        ):
            self._snapshot(tenant)

    # -- queries -------------------------------------------------------------

    def histogram(
        self,
        stream_id: str,
        *,
        requested_buckets: Optional[int] = None,
    ) -> Histogram:
        """Snapshot-isolated histogram of the named stream, with meta.

        Runs under the stream's apply lock: the result always reflects a
        whole prefix of the accepted batches.  The returned histogram
        carries :class:`~repro.core.histogram.HistogramMeta`.

        Repeated queries between writes are served from an epoch-keyed
        cache: :meth:`_apply` bumps the stream's write epoch under the
        same lock, so a cached ``(hist, items)`` pair is valid exactly
        while the epoch stands still.  Histograms are immutable and
        ``with_meta`` clones share segment storage, so serving the cached
        object is safe.  Attached streams are never cached: their summary
        object is owned by the caller, who may mutate it without going
        through the engine's write path.
        """
        tenant = self._tenant(stream_id)
        with tenant.lock:
            if not tenant.attached and tenant.cached_epoch == tenant.epoch:
                hist = tenant.cached_hist
                items = tenant.cached_items
                cache_hit = True
            else:
                hist = tenant.summary.histogram()
                items = tenant.summary.items_seen
                cache_hit = False
                if not tenant.attached:
                    tenant.cached_hist = hist
                    tenant.cached_items = items
                    tenant.cached_epoch = tenant.epoch
            metrics = getattr(tenant.summary, "metrics", None)
        tenant.queries += 1
        if metrics is not None:
            metrics.on_query_cache(cache_hit)
        buckets = tenant.buckets if tenant.buckets is not None else len(hist)
        return hist.with_meta(
            HistogramMeta(
                method=tenant.method,
                buckets=len(hist),
                requested_buckets=(
                    requested_buckets
                    if requested_buckets is not None
                    else buckets
                ),
                error=hist.error,
                items_seen=items,
                window=tenant.window,
                epsilon=tenant.epsilon,
            )
        )

    def items_seen(self, stream_id: str) -> int:
        """Items applied to the named stream so far (excludes queued)."""
        tenant = self._tenant(stream_id)
        with tenant.lock:
            return tenant.summary.items_seen

    def stats(self, stream_id: Optional[str] = None) -> dict:
        """Plain-data engine (or single-stream) statistics.

        The engine form nests per-stream stats under ``"streams"`` plus
        engine-level totals; with ``metrics=`` enabled the shared
        registry snapshot rides along under ``"metrics"``.
        """
        if stream_id is not None:
            return self._tenant_stats(self._tenant(stream_id))
        streams = {
            sid: self._tenant_stats(tenant)
            for sid, tenant in sorted(self._tenants.items())
        }
        out = {
            "streams": streams,
            "stream_count": len(streams),
            "items_seen": sum(s["items_seen"] for s in streams.values()),
            "pending_items": sum(
                s["pending_items"] for s in streams.values()
            ),
            "appends": sum(s["appends"] for s in streams.values()),
            "rejected": sum(s["rejected"] for s in streams.values()),
            "queries": sum(s["queries"] for s in streams.values()),
            "checkpoints": sum(s["checkpoints"] for s in streams.values()),
            "errors": self._errors,
            "workers": len(self._workers),
            "max_pending": self.max_pending,
            "durable": self.checkpoint_dir is not None,
        }
        if self.metrics_registry is not None:
            out["metrics"] = self.metrics_registry.snapshot()
        return out

    def _tenant_stats(self, tenant: _Tenant) -> dict:
        with tenant.lock:
            items = tenant.summary.items_seen
            memory = tenant.summary.memory_bytes()
            try:
                error = tenant.summary.error
            except (EmptySummaryError, ReproError):
                error = None
        with tenant.qlock:
            pending = tenant.pending_items
        return {
            "method": tenant.method,
            "buckets": tenant.buckets,
            "epsilon": tenant.epsilon,
            "universe": tenant.universe,
            "window": tenant.window,
            "backend": tenant.backend,
            "items_seen": items,
            "pending_items": pending,
            "memory_bytes": memory,
            "error": error,
            "appends": tenant.appends,
            "rejected": tenant.rejected,
            "queries": tenant.queries,
            "checkpoints": tenant.checkpoints,
            "last_generation": tenant.last_generation,
            "recovered": tenant.recovered,
            "attached": tenant.attached,
            "last_error": tenant.last_error,
        }

    # -- internals -----------------------------------------------------------

    def _tenant(self, stream_id: str) -> _Tenant:
        tenant = self._tenants.get(stream_id)
        if tenant is None:
            raise UnknownStreamError(
                f"unknown stream {stream_id!r}; known streams: "
                f"{', '.join(self.streams()) or '(none)'}"
            )
        return tenant

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("engine is closed")
