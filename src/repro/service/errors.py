"""Unified service error taxonomy shared by every wire surface.

One :class:`ErrorCode` enum names every error the service can answer,
whatever the transport -- JSON lines, binary frames, or the HTTP/REST
facade (``docs/REST.md``) -- and :data:`HTTP_STATUS` pins each code to
exactly one HTTP status, so a REST client and a TCP client observing
the same failure see the same code:

===================  ===========  =========================================
code                 HTTP status  meaning
===================  ===========  =========================================
``backpressure``     429          stream queue bound hit; retry with
                                  backoff (``Retry-After`` is sent)
``invalid``          400          bad parameters on a well-formed request
``bad-request``      400          malformed request (JSON, framing, fields)
``unknown-stream``   404          the stream id is not registered
``unknown-op``       404          the operation / route does not exist
``empty``            409          query before any data arrived
``unavailable``      503          a cluster worker failed mid-request; the
                                  outcome of an append is ambiguous
``internal``         500          unexpected server-side failure
===================  ===========  =========================================

Retry semantics (``docs/REST.md``): ``backpressure`` rejected the batch
*before* enqueueing anything, so the identical request is safe to
retry.  ``unavailable`` is the one genuinely ambiguous answer -- an
append may be fully applied or fully absent (batch atomicity), so the
service **never auto-retries appends**; idempotent reads are retried
across worker adoption by the cluster router.

Client-side, error responses raise the matching :class:`ServiceError`
subclass (:class:`~repro.exceptions.BackpressureError` for
``backpressure``), so callers branch on exception types instead of
string-matching codes.  :class:`UnknownStreamError` and
:class:`EmptyStreamError` also subclass their engine-side counterparts
(:class:`repro.exceptions.UnknownStreamError`,
:class:`~repro.exceptions.EmptySummaryError`): code that catches the
engine exception works unchanged against a remote service.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Union

from repro import exceptions as _exc
from repro.exceptions import BackpressureError, ReproError


class ErrorCode(str, Enum):
    """Every error code the service answers, on any transport."""

    BACKPRESSURE = "backpressure"
    INVALID = "invalid"
    BAD_REQUEST = "bad-request"
    UNKNOWN_STREAM = "unknown-stream"
    UNKNOWN_OP = "unknown-op"
    EMPTY = "empty"
    UNAVAILABLE = "unavailable"
    INTERNAL = "internal"

    def __str__(self) -> str:  # the wire form, not "ErrorCode.X"
        return self.value


#: The fixed HTTP status of each error code (``docs/REST.md``).  The
#: HTTP facade additionally sends ``Retry-After`` with 429.
HTTP_STATUS = {
    ErrorCode.BACKPRESSURE: 429,
    ErrorCode.INVALID: 400,
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNKNOWN_STREAM: 404,
    ErrorCode.UNKNOWN_OP: 404,
    ErrorCode.EMPTY: 409,
    ErrorCode.UNAVAILABLE: 503,
    ErrorCode.INTERNAL: 500,
}


def http_status(code: Union[str, ErrorCode]) -> int:
    """The HTTP status for a wire error code (500 for unknown codes)."""
    try:
        return HTTP_STATUS[ErrorCode(str(code))]
    except ValueError:
        return 500


class ServiceError(ReproError):
    """A server-side error response, surfaced client-side.

    Carries the wire error :attr:`code` so callers can branch without
    string-matching the message; prefer catching the typed subclasses.
    The two-argument form ``ServiceError(code, message)`` is the generic
    constructor (kept for forward compatibility with codes this client
    predates); subclasses fix their code and take only a message.
    """

    code: str = ErrorCode.INTERNAL

    def __init__(
        self, code_or_message: str, message: Optional[str] = None
    ) -> None:
        if message is None:
            message = str(code_or_message)
        else:
            self.code = str(code_or_message)
        self.message = message
        super().__init__(f"[{self.code}] {message}")


class BadRequestError(ServiceError):
    """The request was malformed (JSON, framing, or required fields)."""

    code = ErrorCode.BAD_REQUEST


class InvalidRequestError(ServiceError, _exc.InvalidParameterError):
    """A well-formed request carried parameters outside their range."""

    code = ErrorCode.INVALID


class UnknownStreamError(ServiceError, _exc.UnknownStreamError):
    """The addressed stream id is not registered on the server."""

    code = ErrorCode.UNKNOWN_STREAM


class UnknownOperationError(ServiceError):
    """The requested operation (or HTTP route) does not exist."""

    code = ErrorCode.UNKNOWN_OP


class EmptyStreamError(ServiceError, _exc.EmptySummaryError):
    """The stream was queried before any value arrived."""

    code = ErrorCode.EMPTY


class UnavailableError(ServiceError):
    """A worker failed mid-request; an append's outcome is ambiguous.

    The one error the service never auto-retries for appends: the batch
    may be fully applied or fully absent (never torn), so retrying could
    double-apply.  Idempotent reads are safe to retry.
    """

    code = ErrorCode.UNAVAILABLE


class InternalError(ServiceError):
    """An unexpected server-side failure (a bug, not a client error)."""

    code = ErrorCode.INTERNAL


_CODE_TO_CLASS = {
    ErrorCode.BAD_REQUEST: BadRequestError,
    ErrorCode.INVALID: InvalidRequestError,
    ErrorCode.UNKNOWN_STREAM: UnknownStreamError,
    ErrorCode.UNKNOWN_OP: UnknownOperationError,
    ErrorCode.EMPTY: EmptyStreamError,
    ErrorCode.UNAVAILABLE: UnavailableError,
    ErrorCode.INTERNAL: InternalError,
}


def error_for_code(code: str, message: str) -> ReproError:
    """The typed exception for one wire error code.

    ``backpressure`` maps to :class:`~repro.exceptions.BackpressureError`
    so engine-side and wire-side callers catch the same type; codes this
    client predates fall back to a generic :class:`ServiceError` that
    still carries the raw code.
    """
    if code == ErrorCode.BACKPRESSURE:
        return BackpressureError(message)
    cls = _CODE_TO_CLASS.get(code)
    if cls is not None:
        return cls(message)
    return ServiceError(str(code), message)


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map one caught exception to its ``(code, message)`` wire form.

    The single exception -> code mapping shared by the TCP server and
    the HTTP facade, so every transport classifies the same failure the
    same way.  Wire-side :class:`ServiceError` instances (a proxied
    backend already classified the failure) forward their code
    untouched instead of being flattened to ``internal``.
    """
    if isinstance(exc, BackpressureError):
        return ErrorCode.BACKPRESSURE, str(exc)
    if isinstance(exc, _exc.EmptySummaryError):
        return ErrorCode.EMPTY, str(exc)
    if isinstance(exc, ServiceError):
        return str(exc.code), exc.message
    if isinstance(exc, _exc.UnknownStreamError):
        return ErrorCode.UNKNOWN_STREAM, str(exc)
    if isinstance(exc, (_exc.InvalidParameterError, KeyError, TypeError)):
        return ErrorCode.INVALID, f"{type(exc).__name__}: {exc}"
    return ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"


def raise_for_error(response: dict) -> dict:
    """Return an ``ok`` response payload; raise the typed error otherwise."""
    if response.get("ok"):
        return response
    raise error_for_code(
        response.get("error", ErrorCode.INTERNAL), response.get("message", "")
    )
