"""Session facade: the redesigned stateful public API.

The entry point adopters use directly::

    from repro.service import Session

    with Session() as session:
        sku = session.stream("sku-42", method="min-merge", buckets=32)
        sku.append(prices)
        hist = sku.histogram()          # carries hist.meta

:class:`Session` wraps a :class:`~repro.service.StreamEngine` (creating
a private one when none is passed) and hands out
:class:`StreamHandle` objects -- thin, cheap views onto one named
stream.  ``repro.summarize`` is a one-shot wrapper over exactly this
path, so graduating from one-shot calls to a long-lived multi-tenant
session changes no math, only lifetimes (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.histogram import Histogram
from repro.service.engine import StreamEngine


class StreamHandle:
    """A view onto one named stream of a :class:`StreamEngine`.

    Handles are cheap and stateless (all state lives in the engine), so
    they may be created freely, shared across threads, and re-fetched by
    name at any time via ``session.stream(stream_id)``.

    Handles are also context managers::

        with session.stream("sku-42", method="min-merge") as sku:
            sku.append(prices)

    Exiting calls :meth:`close`, which checkpoints the stream when its
    engine is durable and is idempotent -- a closed handle may be closed
    again freely (the stream itself stays registered; handles are views,
    not owners).
    """

    __slots__ = ("_engine", "_tenant", "_closed")

    def __init__(self, engine: StreamEngine, tenant) -> None:
        self._engine = engine
        self._tenant = tenant
        self._closed = False

    @property
    def stream_id(self) -> str:
        """The stream's name within its engine."""
        return self._tenant.stream_id

    @property
    def method(self) -> str:
        """The registry method (or class name) backing this stream."""
        return self._tenant.method

    @property
    def items_seen(self) -> int:
        """Items applied so far (queued-but-unapplied items excluded)."""
        return self._engine.items_seen(self._tenant.stream_id)

    def append(self, values) -> int:
        """Append values; returns the accepted item count.

        One unified signature (``docs/API.md``): a scalar, any sequence,
        or a numpy ndarray -- an ndarray goes straight to the vectorized
        batch kernels with no per-item conversion.  May raise
        :class:`~repro.exceptions.BackpressureError` on a worker engine
        whose queue bound is hit -- nothing is ingested in that case, so
        the same batch is safe to retry.
        """
        return self._engine.append(self._tenant.stream_id, values)

    def histogram(
        self, *, requested_buckets: Optional[int] = None
    ) -> Histogram:
        """Snapshot-isolated histogram with provenance (``hist.meta``)."""
        return self._engine.histogram(
            self._tenant.stream_id, requested_buckets=requested_buckets
        )

    def stats(self) -> dict:
        """This stream's counters/config as plain data."""
        return self._engine.stats(self._tenant.stream_id)

    def checkpoint(self) -> int:
        """Force a snapshot now; returns the generation written."""
        result = self._engine.checkpoint(self._tenant.stream_id)
        return result[self._tenant.stream_id]

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "StreamHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Checkpoint a durable stream and mark the handle closed.

        Idempotent: only the first call snapshots; later calls (and
        closing a non-durable stream) are no-ops.  The stream itself
        stays registered -- handles are views, not owners -- so a fresh
        handle may be fetched by name at any time.
        """
        if self._closed:
            return
        self._closed = True
        if getattr(self._tenant, "store", None) is not None:
            self._engine.checkpoint(self._tenant.stream_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamHandle({self.stream_id!r}, method={self.method!r}, "
            f"items_seen={self.items_seen})"
        )


class Session:
    """Scoped access to a :class:`StreamEngine` (the public facade).

    Parameters
    ----------
    engine:
        An existing engine to join (the session then does *not* close it
        on exit); omit to create a private engine from the remaining
        keyword arguments, closed when the session closes.
    **engine_kwargs:
        Forwarded to :class:`StreamEngine` when creating a private one
        (``checkpoint_dir=``, ``workers=``, ``metrics=`` ...).
    """

    def __init__(
        self, engine: Optional[StreamEngine] = None, **engine_kwargs
    ) -> None:
        if engine is not None and engine_kwargs:
            raise TypeError(
                "pass either an existing engine or engine kwargs, not both"
            )
        self._owned = engine is None
        self._closed = False
        self.engine = engine if engine is not None else StreamEngine(
            **engine_kwargs
        )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the session (and its engine, when privately owned).

        Idempotent: closing an already-closed session is a no-op, so
        ``with`` blocks compose with explicit ``close()`` calls.
        """
        if self._closed:
            return
        self._closed = True
        if self._owned:
            self.engine.close()

    def stream(self, stream_id: str, **config) -> StreamHandle:
        """Create or fetch a named stream (see ``StreamEngine.stream``)."""
        return self.engine.stream(stream_id, **config)

    def attach(
        self, stream_id: str, summary, *, method: Optional[str] = None
    ) -> StreamHandle:
        """Adopt a prebuilt summary (see ``StreamEngine.attach``)."""
        return self.engine.attach(stream_id, summary, method=method)

    def streams(self) -> tuple:
        """The engine's registered stream ids, sorted."""
        return self.engine.streams()

    def stats(self) -> dict:
        """Engine-wide statistics as plain data."""
        return self.engine.stats()
