"""Cluster worker process: one ``StreamEngine`` shard behind the wire.

Spawned by the router (or ``repro-histogram serve --workers N``) as::

    python -m repro.service.cluster.worker \
        --cluster-dir state/ --name w0 --ring w0,w1,w2

Each worker is a full single-process service -- the same
:class:`~repro.service.StreamEngine` + :class:`~repro.service.StreamServer`
stack, speaking the same JSON/binary wire protocol -- pointed at the
cluster's **shared** checkpoint root (``<cluster-dir>/tenants``).  On
startup it recovers only the manifested streams the hash ring assigns to
it (the ``owns`` predicate), binds an ephemeral port, and publishes
``{"port": ..., "pid": ...}`` to ``<cluster-dir>/workers/<name>.json``
for the router to discover.

Workers run their engine with ``workers=0`` (inline apply): an append is
journaled, fsynced, and applied **before** it is acknowledged, which is
the invariant the cluster's zero-loss adoption guarantee rests on
(``docs/CLUSTER.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Optional, Sequence

from repro.service.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.service.engine import StreamEngine
from repro.service.server import StreamServer
from repro.service import wire

#: Subdirectory of the cluster dir holding every stream's checkpoint
#: store (shared by all workers; each stream dir is written by its owner).
TENANTS_DIR = "tenants"

#: Subdirectory where each worker publishes its bound port and pid.
WORKERS_DIR = "workers"


def tenants_dir(cluster_dir: str) -> str:
    """The shared per-stream checkpoint root of a cluster directory."""
    return os.path.join(os.fspath(cluster_dir), TENANTS_DIR)


def port_file(cluster_dir: str, name: str) -> str:
    """Where worker ``name`` publishes its ``{"port", "pid"}`` record."""
    return os.path.join(os.fspath(cluster_dir), WORKERS_DIR, f"{name}.json")


def build_worker(
    cluster_dir: str,
    name: str,
    ring_nodes: Sequence[str],
    *,
    host: str = "127.0.0.1",
    checkpoint_every: Optional[int] = None,
    replicas: int = DEFAULT_REPLICAS,
    max_pending: int = 1_000_000,
    recover: bool = True,
) -> tuple[StreamEngine, StreamServer]:
    """Engine + (unstarted) server for one shard; shared by CLI and tests.

    ``recover=False`` (the router's ``--no-recover``) starts the engine
    empty even when the ring would assign it manifested streams: a
    restarted or newly-grown worker must receive state only through
    explicit ``adopt`` requests (handoff), never by racing the current
    live owners for the shared checkpoint directories at startup.
    """
    ring = HashRing(ring_nodes, replicas=replicas)
    if name not in ring:
        raise SystemExit(f"worker name {name!r} is not on the ring {ring.nodes}")
    owns = (
        (lambda stream_id: ring.node_for(stream_id) == name)
        if recover
        else (lambda stream_id: False)
    )
    engine = StreamEngine(
        checkpoint_dir=tenants_dir(cluster_dir),
        checkpoint_every=checkpoint_every,
        workers=0,  # inline apply: acknowledged => journaled (zero-loss)
        max_pending=max_pending,
        owns=owns,
    )
    server = StreamServer(engine, host=host, port=0, protocols=wire.ALL_PROTOCOLS)
    return engine, server


def publish(cluster_dir: str, name: str, port: int) -> None:
    """Atomically publish this worker's endpoint for the router."""
    path = port_file(cluster_dir, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "port": port, "pid": os.getpid()}, handle)
    os.replace(tmp, path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker process entry point; serves until SIGTERM/SIGINT."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cluster-dir", required=True)
    parser.add_argument("--name", required=True, help="this worker's ring name")
    parser.add_argument(
        "--ring",
        required=True,
        help="comma-separated names of every worker on the ring",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--checkpoint-every", type=int, default=None)
    parser.add_argument("--replicas", type=int, default=DEFAULT_REPLICAS)
    parser.add_argument("--max-pending", type=int, default=1_000_000)
    parser.add_argument(
        "--no-recover",
        action="store_true",
        help="start empty; state arrives only via adopt (restart/grow)",
    )
    args = parser.parse_args(argv)

    engine, server = build_worker(
        args.cluster_dir,
        args.name,
        [n for n in args.ring.split(",") if n],
        host=args.host,
        checkpoint_every=args.checkpoint_every,
        replicas=args.replicas,
        max_pending=args.max_pending,
        recover=not args.no_recover,
    )

    def _terminate(signum, frame):  # noqa: ANN001 - signal signature
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    server.start_in_background()
    publish(args.cluster_dir, args.name, server.port)
    try:
        server._thread.join()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.stop()
        engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
