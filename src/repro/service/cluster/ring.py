"""Consistent-hash ring: stable `(tenant, stream) -> worker` placement.

The cluster router (``docs/CLUSTER.md``) places every stream on exactly
one worker by hashing the stream key onto a ring of virtual nodes.  The
two properties the sharded service is built on:

* **No split** -- a key maps to exactly one node, deterministically, in
  every process that builds the same ring (the hash is keyed on the
  bytes of the name, never on Python's randomized ``hash()``), so the
  router and every worker agree on ownership without coordination.
* **Minimal movement** -- removing a node only reassigns the keys that
  lived on it (they move to their successors on the ring); the keys of
  surviving nodes do not move.  Adding a node steals ~``1/N`` of the
  keyspace.  This is what makes worker death (adoption) and rebalance
  cheap: only the dead or moved node's streams change owner.

The ring is immutable: :meth:`HashRing.without` / :meth:`HashRing.extend`
return new rings, so a router can swap its topology atomically under one
lock.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence, Tuple

from repro.exceptions import InvalidParameterError

#: Virtual nodes per worker.  More replicas smooth the keyspace split
#: (the max/mean load ratio shrinks like 1/sqrt(replicas)) at a small
#: memory and build-time cost.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """64-bit position of ``key`` on the ring.

    blake2b keyed on the raw bytes: identical across processes, Python
    versions, and ``PYTHONHASHSEED`` -- the property ``hash()`` lacks.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over named nodes."""

    __slots__ = ("nodes", "replicas", "_points", "_owners")

    def __init__(
        self, nodes: Iterable[str], *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        names = tuple(dict.fromkeys(str(n) for n in nodes))
        if not names:
            raise InvalidParameterError("a hash ring needs at least one node")
        if replicas < 1:
            raise InvalidParameterError(
                f"replicas must be >= 1, got {replicas}"
            )
        self.nodes: Tuple[str, ...] = names
        self.replicas = replicas
        points = []
        for name in names:
            for i in range(replicas):
                points.append((stable_hash(f"{name}#{i}"), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first virtual node clockwise)."""
        idx = bisect.bisect_right(self._points, stable_hash(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def without(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed (its keys move to successors)."""
        remaining = [n for n in self.nodes if n != node]
        if len(remaining) == len(self.nodes):
            raise InvalidParameterError(
                f"node {node!r} is not on the ring ({self.nodes})"
            )
        return HashRing(remaining, replicas=self.replicas)

    def extend(self, node: str) -> "HashRing":
        """A new ring with ``node`` added (steals ~1/N of the keyspace)."""
        if node in self.nodes:
            raise InvalidParameterError(
                f"node {node!r} is already on the ring ({self.nodes})"
            )
        return HashRing((*self.nodes, node), replicas=self.replicas)

    def spread(self, keys: Sequence[str]) -> dict:
        """``{node: key_count}`` for a sample of keys (balance checks)."""
        out = {name: 0 for name in self.nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({list(self.nodes)}, replicas={self.replicas})"
