"""Load-driven auto-rebalancing for a live cluster (``docs/CLUSTER.md``).

A consistent-hash ring spreads stream *keys* evenly, but real load is
skewed: one hot stream can put its worker far above the others.  The
:class:`Rebalancer` closes that gap with the primitives the router
already has -- it reads per-worker load from a ``stats`` fan-out and
moves streams between live workers via the FIFO-drained
:meth:`~repro.service.cluster.ClusterRouter.handoff` (no value lost, no
value double-applied, bit-identical state on the new owner).

The plan is deliberately conservative:

* load = ``items_seen + pending_items`` per worker (applied work plus
  queue depth), each stream weighted the same way;
* one pass moves at most ``max_moves`` streams, always from the hottest
  worker to the coldest;
* a stream moves only when doing so *strictly* shrinks the hot/cold gap
  (``0 < weight < gap``), so the loop converges instead of oscillating
  -- a perfectly balanced (or one-stream) cluster plans zero moves.

Run one pass by hand (:meth:`Rebalancer.rebalance_once`, also the
``POST /v1/cluster/rebalance`` route of the REST facade), or start the
daemon loop (:meth:`Rebalancer.start` / ``serve --workers N
--rebalance``) to keep a long-lived cluster level as load drifts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Move:
    """One planned (or executed) stream migration."""

    stream: str
    source: str
    target: str
    weight: int

    def to_dict(self) -> dict:
        """Plain-data form (the REST response body)."""
        return {
            "stream": self.stream,
            "source": self.source,
            "target": self.target,
            "weight": self.weight,
        }


class Rebalancer:
    """Plan and execute load-evening stream migrations on a router.

    Parameters
    ----------
    router:
        The live :class:`~repro.service.cluster.ClusterRouter`.
    interval:
        Seconds between passes when run as a daemon loop.
    max_moves:
        Upper bound on migrations per pass (handoff drains the stream's
        queue FIFO, so each move is a small availability blip for that
        one stream -- keep passes incremental).
    min_gap:
        Hot/cold load gap (in items) below which the cluster counts as
        balanced and no move is planned.
    """

    def __init__(
        self,
        router,
        *,
        interval: float = 2.0,
        max_moves: int = 1,
        min_gap: float = 1.0,
    ) -> None:
        self.router = router
        self.interval = interval
        self.max_moves = max_moves
        self.min_gap = min_gap
        self.moves_done = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- planning -------------------------------------------------------------

    def load_snapshot(self) -> tuple:
        """``(worker_load, stream_weight, stream_owner)`` from live stats.

        One ``stats`` fan-out; every weight is ``items_seen +
        pending_items`` so a stream with a deep unapplied queue counts
        as the load it is about to become.
        """
        worker_load: Dict[str, float] = {}
        stream_weight: Dict[str, float] = {}
        stream_owner: Dict[str, str] = {}
        for name, response in self.router.fan_out({"op": "stats"}).items():
            stats = response["stats"]
            worker_load[name] = stats.get("items_seen", 0) + stats.get(
                "pending_items", 0
            )
            for sid, row in stats.get("streams", {}).items():
                stream_weight[sid] = row.get("items_seen", 0) + row.get(
                    "pending_items", 0
                )
                stream_owner[sid] = name
        return worker_load, stream_weight, stream_owner

    def plan(self) -> List[Move]:
        """Up to ``max_moves`` migrations, hottest worker to coldest.

        Each move takes the heaviest stream on the hottest worker whose
        weight is strictly smaller than the hot/cold gap (so the gap
        strictly shrinks -- the no-oscillation invariant); loads are
        updated in-plan so successive moves stay consistent.
        """
        worker_load, stream_weight, stream_owner = self.load_snapshot()
        if len(worker_load) < 2:
            return []
        moves: List[Move] = []
        for _ in range(self.max_moves):
            hottest = max(worker_load, key=lambda w: (worker_load[w], w))
            coldest = min(worker_load, key=lambda w: (worker_load[w], w))
            gap = worker_load[hottest] - worker_load[coldest]
            if gap <= self.min_gap:
                break
            candidates = [
                (weight, sid)
                for sid, weight in stream_weight.items()
                if stream_owner[sid] == hottest and 0 < weight < gap
            ]
            if not candidates:
                break
            weight, sid = max(candidates)
            moves.append(
                Move(
                    stream=sid,
                    source=hottest,
                    target=coldest,
                    weight=int(weight),
                )
            )
            worker_load[hottest] -= weight
            worker_load[coldest] += weight
            stream_owner[sid] = coldest
        return moves

    # -- execution ------------------------------------------------------------

    def rebalance_once(self) -> List[Move]:
        """Plan one pass and execute it via :meth:`ClusterRouter.handoff`."""
        moves = self.plan()
        for move in moves:
            self.router.handoff(move.stream, move.target)
            self.moves_done += 1
        return moves

    # -- daemon loop ----------------------------------------------------------

    def start(self) -> "Rebalancer":
        """Run :meth:`rebalance_once` every ``interval`` seconds."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-rebalancer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop (idempotent; joins the thread)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.rebalance_once()
            except Exception:  # noqa: BLE001 - topology may be mid-change
                # A pass raced a kill/restart/grow; the next pass reads
                # fresh stats and plans from the new topology.
                continue

    def __enter__(self) -> "Rebalancer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
