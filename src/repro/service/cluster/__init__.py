"""Sharded multi-process service: consistent-hash router + engine workers.

The horizontal scale-out layer (``docs/CLUSTER.md``)::

    from repro.service.cluster import ClusterRouter

    with ClusterRouter("state/", workers=3) as router:
        # router.port serves the same wire protocol as a single server
        with ServiceClient(port=router.port) as client:
            client.append("sku-42", prices, method="min-merge", buckets=32)

* :class:`HashRing` -- stable ``stream -> worker`` placement with
  minimal movement on topology change.
* :mod:`~repro.service.cluster.worker` -- the shard process: a full
  ``StreamEngine`` + ``StreamServer`` over the cluster's shared
  checkpoint root, recovering only the streams the ring assigns it.
* :class:`ClusterRouter` -- spawns and supervises the workers, fronts
  them behind one listener, adopts a dead worker's streams onto
  survivors (zero acknowledged appends lost), hands streams off live
  between workers, and self-heals: ``restart_worker`` re-spawns a dead
  worker and hands its streams back, ``grow`` extends the ring with
  fresh workers live.
* :class:`Rebalancer` -- drives handoff continuously from per-worker
  load statistics, moving hot streams off the most-loaded worker.

The mergeable-summary guarantees of the paper's MIN-MERGE family are
what make this safe: a stream's summary is fully described by its
checkpoint state, so any node can adopt it and continue bit-identically.
"""

from repro.service.cluster.rebalance import Move, Rebalancer
from repro.service.cluster.ring import DEFAULT_REPLICAS, HashRing, stable_hash
from repro.service.cluster.router import ClusterRouter
from repro.service.cluster.worker import build_worker, tenants_dir

__all__ = [
    "ClusterRouter",
    "DEFAULT_REPLICAS",
    "HashRing",
    "Move",
    "Rebalancer",
    "build_worker",
    "stable_hash",
    "tenants_dir",
]
