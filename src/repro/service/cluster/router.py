"""Cluster router: one front listener, N engine-worker processes.

:class:`ClusterRouter` is the scale-out front of the service layer
(``docs/CLUSTER.md``).  It spawns ``workers`` single-shard service
processes (:mod:`repro.service.cluster.worker`), places every stream on
exactly one of them with a consistent-hash ring
(:class:`~repro.service.cluster.ring.HashRing`), and serves the same
JSON/binary wire protocol clients already speak -- a client cannot tell
a router from a single-process server.

The router reuses :class:`~repro.service.StreamServer` unchanged: its
"engine" is a :class:`_ProxyEngine` that implements the engine surface
by forwarding each operation to the owning worker over pooled
:class:`~repro.service.ServiceClient` connections (binary-negotiated, so
zero-copy append frames stay zero-copy end to end).

**Worker death and adoption.**  Every stream is durable: workers share
one checkpoint root (``<cluster-dir>/tenants``) and acknowledge an
append only after it is journaled and fsynced.  When a backend call
fails and the worker process is confirmed dead, the router removes the
node from the ring (surviving keys do not move -- the consistent-hash
property), then tells each orphaned stream's new owner to ``adopt`` it:
the survivor recovers snapshot + journal tail from the shared directory,
bit-identical to the uninterrupted run.  Acknowledged appends are never
lost; the one batch that was in flight on the dying connection is
reported ``unavailable`` to its client, which may observe it as either
fully applied or fully absent (batch atomicity), never torn.

**Live handoff.**  :meth:`handoff` moves one stream between live
workers: new requests for the stream gate on a router-side lock,
in-flight appends drain FIFO on the donor (``release`` = drain +
snapshot + close), the target adopts from shared disk, and an override
pins the stream to its new home until the ring changes again.

**Self-healing.**  :meth:`restart_worker` is the inverse of a kill: it
re-spawns a dead (or drains a live) worker under the same name, extends
the ring, and hands the worker's natural streams back one at a time via
the same FIFO-drained handoff.  :meth:`grow` adds fresh workers to a
running cluster and migrates only the minimally-moved keys (the
consistent-hash property).  Both spawn the new process with
``--no-recover`` so it starts empty and receives state exclusively
through handoff -- never by racing the live owners for shared
checkpoints.  A :class:`~repro.service.cluster.rebalance.Rebalancer`
can drive :meth:`handoff` continuously from per-worker load statistics.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional, Sequence

from repro.core.histogram import Histogram
from repro.exceptions import InvalidParameterError
from repro.service import wire
from repro.service.client import ServiceClient
from repro.service.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.service.cluster.worker import TENANTS_DIR, port_file, tenants_dir
from repro.service.errors import UnavailableError
from repro.service.server import StreamServer

_MANIFEST = "stream.json"

#: Exceptions that mean "the connection to the worker broke", as opposed
#: to a well-formed error response (ServiceError) from a live worker.
_LINK_ERRORS = (ConnectionError, OSError, wire.WireError)


class _WorkerLink:
    """Router-side view of one worker: process, endpoint, connection pool."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        process: Optional[subprocess.Popen],
        *,
        pool_size: int = 4,
        timeout: float = 30.0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.process = process
        self.pool_size = pool_size
        self.timeout = timeout
        self.dead = False
        self._pool: queue.SimpleQueue = queue.SimpleQueue()

    @contextmanager
    def lease(self):
        """Borrow a pooled connection (created on demand, returned clean).

        A connection that saw any exception is closed rather than
        pooled: after a transport error its stream position is unknown.
        """
        try:
            client = self._pool.get_nowait()
        except queue.Empty:
            client = ServiceClient(self.host, self.port, timeout=self.timeout)
        clean = False
        try:
            yield client
            clean = True
        finally:
            if clean and not self.dead and self._pool.qsize() < self.pool_size:
                self._pool.put(client)
            else:
                client.close()

    def call(self, payload: dict) -> dict:
        """One raw request/response round trip on a pooled connection."""
        with self.lease() as client:
            return client.transport.call(payload)

    def close_pool(self) -> None:
        while True:
            try:
                self._pool.get_nowait().close()
            except queue.Empty:
                return
            except _LINK_ERRORS:  # pragma: no cover - close is best-effort
                pass

    def alive(self) -> bool:
        return self.process is None or self.process.poll() is None


class ClusterRouter:
    """Spawn, front, and supervise a sharded service cluster.

    Parameters
    ----------
    cluster_dir:
        Shared state root.  ``<cluster_dir>/tenants`` holds every
        stream's checkpoint store (all workers write their own streams
        there; adoption reads a dead worker's); ``<cluster_dir>/workers``
        holds endpoint files and per-worker logs.
    workers:
        Worker process count (>= 1).  Restarting a router over an
        existing ``cluster_dir`` with the same worker names recovers
        every manifested stream.
    checkpoint_every:
        Forwarded to each worker engine (periodic snapshots; the journal
        makes recovery exact regardless).
    executor_workers:
        Front-side thread pool: the cap on concurrently in-flight
        backend requests (default 32).
    pool_size:
        Pooled backend connections kept per worker (more are created
        under burst and discarded back down to this size).
    http_port:
        Mount the HTTP/REST facade (:mod:`repro.service.http`) on this
        port beside the TCP front (``0`` picks a free port, read back
        from :attr:`http_port`); ``None`` (the default) serves TCP only.
    """

    def __init__(
        self,
        cluster_dir,
        *,
        workers: int = 3,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_every: Optional[int] = None,
        replicas: int = DEFAULT_REPLICAS,
        protocols: Sequence[int] = wire.ALL_PROTOCOLS,
        executor_workers: int = 32,
        pool_size: int = 4,
        worker_timeout: float = 30.0,
        http_port: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.cluster_dir = os.fspath(cluster_dir)
        self.worker_count = workers
        self.host = host
        self._requested_port = port
        self._requested_http_port = http_port
        self.checkpoint_every = checkpoint_every
        self.replicas = replicas
        self.protocols = protocols
        self.executor_workers = executor_workers
        self.pool_size = pool_size
        self.worker_timeout = worker_timeout
        self.server: Optional[StreamServer] = None
        self.http = None  # Optional[repro.service.http.HttpFrontend]
        self.deaths = 0
        self.adoptions: Dict[str, str] = {}
        self.handoffs = 0
        self.restarts = 0
        self.grown = 0
        self._workers: Dict[str, _WorkerLink] = {}
        self._ring: Optional[HashRing] = None
        self._overrides: Dict[str, str] = {}
        self._topology_lock = threading.RLock()
        self._gates: Dict[str, threading.Lock] = {}
        self._gates_lock = threading.Lock()
        self._logs: list = []

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The front listener's bound port (after :meth:`start`)."""
        if self.server is None:
            raise InvalidParameterError("router is not started")
        return self.server.port

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> "ClusterRouter":
        """Spawn the workers, wait for their endpoints, bind the front."""
        names = [f"w{i}" for i in range(self.worker_count)]
        os.makedirs(tenants_dir(self.cluster_dir), exist_ok=True)
        workers_dir = os.path.join(self.cluster_dir, "workers")
        os.makedirs(workers_dir, exist_ok=True)
        for name in names:
            try:
                os.unlink(port_file(self.cluster_dir, name))
            except FileNotFoundError:
                pass
        processes = {name: self._spawn(name, names) for name in names}
        try:
            for name in names:
                port = self._await_endpoint(name, processes[name])
                self._workers[name] = _WorkerLink(
                    name,
                    self.host,
                    port,
                    processes[name],
                    pool_size=self.pool_size,
                    timeout=self.worker_timeout,
                )
        except BaseException:
            for process in processes.values():
                process.kill()
            raise
        self._ring = HashRing(names, replicas=self.replicas)
        self.server = StreamServer(
            _ProxyEngine(self),
            host=self.host,
            port=self._requested_port,
            protocols=self.protocols,
            executor_workers=self.executor_workers,
        )
        self.server.start_in_background()
        if self._requested_http_port is not None:
            from repro.service.http import HttpFrontend

            self.http = HttpFrontend(
                _ProxyEngine(self),
                host=self.host,
                port=self._requested_http_port,
                cluster=self,
                executor_workers=self.executor_workers,
            )
            self.http.start_in_background()
        return self

    @property
    def http_port(self) -> int:
        """The REST facade's bound port (requires ``http_port=`` at init)."""
        if self.http is None:
            raise InvalidParameterError(
                "router has no HTTP frontend (pass http_port= to enable it)"
            )
        return self.http.port

    def stop(self) -> None:
        """Stop the front, then terminate the workers (SIGTERM, then kill)."""
        if self.http is not None:
            self.http.stop()
            self.http = None
        if self.server is not None:
            self.server.stop()
            self.server = None
        for link in self._workers.values():
            link.close_pool()
            process = link.process
            if process is not None and process.poll() is None:
                process.terminate()
        for link in self._workers.values():
            process = link.process
            if process is not None:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait(timeout=5.0)
        for log in self._logs:
            log.close()
        self._logs.clear()

    def _spawn(
        self, name: str, ring_names: Sequence[str], *, recover: bool = True
    ) -> subprocess.Popen:
        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        cmd = [
            sys.executable,
            "-m",
            "repro.service.cluster.worker",
            "--cluster-dir",
            self.cluster_dir,
            "--name",
            name,
            "--ring",
            ",".join(ring_names),
            "--host",
            self.host,
            "--replicas",
            str(self.replicas),
        ]
        if self.checkpoint_every is not None:
            cmd += ["--checkpoint-every", str(self.checkpoint_every)]
        if not recover:
            # Restarted/grown workers start empty: their streams arrive
            # exclusively via handoff, never by racing the live owners
            # for the shared checkpoint directories at startup.
            cmd += ["--no-recover"]
        log = open(
            os.path.join(self.cluster_dir, "workers", f"{name}.log"), "ab"
        )
        self._logs.append(log)
        return subprocess.Popen(cmd, env=env, stdout=log, stderr=log)

    def _await_endpoint(self, name: str, process: subprocess.Popen) -> int:
        path = port_file(self.cluster_dir, name)
        deadline = time.monotonic() + self.worker_timeout
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise RuntimeError(
                    f"worker {name} exited with code {process.returncode} "
                    f"before publishing its port (see "
                    f"{self.cluster_dir}/workers/{name}.log)"
                )
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                if record.get("pid") == process.pid:
                    return int(record["port"])
            except (FileNotFoundError, ValueError):
                pass
            time.sleep(0.02)
        raise RuntimeError(
            f"worker {name} did not publish a port within "
            f"{self.worker_timeout:g}s"
        )

    # -- topology ------------------------------------------------------------

    def workers(self) -> tuple:
        """Names of the live workers (sorted)."""
        with self._topology_lock:
            return tuple(sorted(self._ring.nodes)) if self._ring else ()

    def owner_of(self, stream_id: str) -> str:
        """The worker currently responsible for a stream key."""
        with self._topology_lock:
            override = self._overrides.get(stream_id)
            if override is not None:
                return override
            return self._ring.node_for(stream_id)

    def _link_for(self, stream_id: str) -> _WorkerLink:
        with self._topology_lock:
            return self._workers[self.owner_of(stream_id)]

    def _live_links(self) -> list:
        with self._topology_lock:
            return [
                self._workers[name] for name in self._ring.nodes
            ]

    def kill_worker(self, name: str) -> None:
        """SIGKILL one worker process (the chaos hook for tests/benchmarks).

        Detection and adoption happen on the next request that touches
        the dead worker -- exactly as a real crash would play out.
        """
        with self._topology_lock:
            link = self._workers[name]
        if link.process is None:
            raise InvalidParameterError(f"worker {name} has no process")
        link.process.kill()
        link.process.wait(timeout=10.0)

    def _note_failure(self, link: _WorkerLink) -> bool:
        """Classify a backend link failure; adopt if the worker is dead.

        Returns ``True`` when the worker is (now) confirmed dead and its
        streams have been adopted -- the caller may re-route and retry
        idempotent operations.  ``False`` means the process still lives
        (a transient connection problem): nothing is reassigned.
        """
        with self._topology_lock:
            if link.dead:
                return True
            process = link.process
            if process is not None and process.poll() is None:
                try:
                    # A SIGKILL'd process needs a beat to be reapable;
                    # distinguish "dying" from "alive but unreachable".
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    return False
            self._adopt_from(link)
            return True

    def _adopt_from(self, dead: _WorkerLink, *, count_death: bool = True) -> None:
        """Reassign every stream of a dead worker to the survivors."""
        dead.dead = True
        dead.close_pool()
        if len(self._ring) <= 1:
            raise UnavailableError(
                f"worker {dead.name} died and no workers remain"
            )
        orphans = [
            sid
            for sid in self._manifested_streams()
            if self.owner_of(sid) == dead.name
        ]
        self._ring = self._ring.without(dead.name)
        for sid, target in list(self._overrides.items()):
            if target == dead.name:
                del self._overrides[sid]
        if count_death:
            self.deaths += 1
        for sid in orphans:
            new_owner = self.owner_of(sid)
            self._workers[new_owner].call({"op": "adopt", "stream": sid})
            self.adoptions[sid] = new_owner

    def _manifested_streams(self) -> list:
        """Every stream with a manifest under the shared tenants root."""
        root = os.path.join(self.cluster_dir, TENANTS_DIR)
        out = []
        if not os.path.isdir(root):
            return out
        for name in sorted(os.listdir(root)):
            manifest = os.path.join(root, name, _MANIFEST)
            if not os.path.isfile(manifest):
                continue
            with open(manifest, "r", encoding="utf-8") as handle:
                out.append(json.load(handle)["stream_id"])
        return out

    # -- handoff -------------------------------------------------------------

    @contextmanager
    def _gate(self, stream_id: str):
        """Per-stream mutual exclusion between requests and handoff."""
        with self._gates_lock:
            lock = self._gates.get(stream_id)
            if lock is None:
                lock = self._gates[stream_id] = threading.Lock()
        with lock:
            yield

    def handoff(self, stream_id: str, target: str) -> str:
        """Move one live stream to ``target`` without losing a value.

        New requests for the stream block on its gate; the donor drains
        its in-flight appends FIFO, snapshots, and releases; the target
        adopts from the shared directory; an override pins the stream.
        Returns the previous owner's name.
        """
        with self._gate(stream_id):
            with self._topology_lock:
                if target not in self._ring.nodes:
                    raise InvalidParameterError(
                        f"handoff target {target!r} is not a live worker "
                        f"({self._ring.nodes})"
                    )
                source = self.owner_of(stream_id)
                if source == target:
                    return source
                source_link = self._workers[source]
                target_link = self._workers[target]
            source_link.call({"op": "release", "stream": stream_id})
            target_link.call({"op": "adopt", "stream": stream_id})
            with self._topology_lock:
                if self._ring.node_for(stream_id) == target:
                    # The ring already places the stream here (a handback
                    # after restart/grow): no pin needed, and dropping a
                    # stale one lets future ring changes move the key.
                    self._overrides.pop(stream_id, None)
                else:
                    self._overrides[stream_id] = target
                self.handoffs += 1
            return source

    # -- self-healing (restart, growth) ---------------------------------------

    def _pin_then_extend(self, new_ring: HashRing, joining: set) -> list:
        """Swap in an extended ring without moving any key implicitly.

        Every manifested stream whose owner *would* change is first
        pinned (override) to its current owner, so requests keep routing
        to the live state while the caller hands each moved stream off
        one at a time.  Returns ``[(stream_id, new_owner), ...]`` for the
        caller to drive through :meth:`handoff`.  Caller must hold the
        topology lock.
        """
        moved = []
        for sid in self._manifested_streams():
            current = self.owner_of(sid)
            target = new_ring.node_for(sid)
            if target != current and target in joining:
                self._overrides[sid] = current
                moved.append((sid, target))
        self._ring = new_ring
        return moved

    def restart_worker(self, name: str) -> dict:
        """Re-spawn a dead (or drain and recycle a live) worker.

        The inverse of :meth:`kill_worker` + adoption: the worker comes
        back under its old name with an empty engine (``--no-recover``),
        rejoins the ring, and every stream the extended ring assigns to
        it is handed back via the FIFO-drained :meth:`handoff` -- so at
        no point do two processes own one checkpoint directory.  If the
        process is still alive it is drained first (SIGTERM, survivors
        adopt) -- a rolling-restart primitive.  Returns ``{"worker":
        name, "moved": [stream, ...]}``.
        """
        with self._topology_lock:
            link = self._workers.get(name)
            if link is None:
                raise InvalidParameterError(
                    f"unknown worker {name!r}; known: "
                    f"{sorted(self._workers)}"
                )
            if not link.dead:
                process = link.process
                was_alive = process is not None and process.poll() is None
                if was_alive:
                    process.terminate()
                    try:
                        process.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        process.kill()
                        process.wait(timeout=10.0)
                # A graceful drain is not a death; an undetected crash is.
                self._adopt_from(link, count_death=not was_alive)
            ring_names = tuple(sorted(set(self._ring.nodes) | {name}))
        # Spawn outside the topology lock: waiting for the endpoint can
        # take seconds, and other streams' traffic must keep flowing.
        try:
            os.unlink(port_file(self.cluster_dir, name))
        except FileNotFoundError:
            pass
        process = self._spawn(name, ring_names, recover=False)
        port = self._await_endpoint(name, process)
        with self._topology_lock:
            self._workers[name] = _WorkerLink(
                name,
                self.host,
                port,
                process,
                pool_size=self.pool_size,
                timeout=self.worker_timeout,
            )
            moved = self._pin_then_extend(self._ring.extend(name), {name})
            self.restarts += 1
        for sid, target in moved:
            self.handoff(sid, target)
        return {"worker": name, "moved": [sid for sid, _ in moved]}

    def grow(self, count: int = 1) -> dict:
        """Add ``count`` fresh workers to the live ring.

        Only the minimally-moved keys migrate (the consistent-hash
        property: a key moves only if its new natural owner is one of
        the joining nodes), each via the FIFO-drained :meth:`handoff`.
        Returns ``{"workers": [names...], "moved": [stream, ...]}``.
        """
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        with self._topology_lock:
            taken = set(self._workers) | set(self._ring.nodes)
            names = []
            i = 0
            while len(names) < count:
                candidate = f"w{i}"
                i += 1
                if candidate not in taken:
                    names.append(candidate)
                    taken.add(candidate)
            ring_names = tuple(sorted(set(self._ring.nodes) | set(names)))
        spawned: Dict[str, subprocess.Popen] = {}
        try:
            for name in names:
                try:
                    os.unlink(port_file(self.cluster_dir, name))
                except FileNotFoundError:
                    pass
                spawned[name] = self._spawn(name, ring_names, recover=False)
            ports = {
                name: self._await_endpoint(name, process)
                for name, process in spawned.items()
            }
        except BaseException:
            for process in spawned.values():
                process.kill()
            raise
        with self._topology_lock:
            new_ring = self._ring
            for name in names:
                self._workers[name] = _WorkerLink(
                    name,
                    self.host,
                    ports[name],
                    spawned[name],
                    pool_size=self.pool_size,
                    timeout=self.worker_timeout,
                )
                new_ring = new_ring.extend(name)
            moved = self._pin_then_extend(new_ring, set(names))
            self.grown += count
        for sid, target in moved:
            self.handoff(sid, target)
        return {"workers": names, "moved": [sid for sid, _ in moved]}

    def cluster_view(self) -> dict:
        """Ring topology + per-worker load (the ``GET /v1/cluster`` body).

        Per-worker load is taken from a live ``stats`` fan-out:
        ``streams`` (owned stream count), ``items_seen`` and
        ``pending_items`` (queue depth) -- the same signals the
        :class:`~repro.service.cluster.rebalance.Rebalancer` plans from.
        """
        per_worker: Dict[str, dict] = {}
        for name, response in sorted(self.fan_out({"op": "stats"}).items()):
            stats = response["stats"]
            streams = stats.get("streams", {})
            per_worker[name] = {
                "streams": len(streams),
                "items_seen": stats.get("items_seen", 0),
                "pending_items": stats.get("pending_items", 0),
                "appends": stats.get("appends", 0),
                "queries": stats.get("queries", 0),
            }
        with self._topology_lock:
            return {
                "workers": per_worker,
                "ring": list(self.workers()),
                "overrides": dict(self._overrides),
                "deaths": self.deaths,
                "restarts": self.restarts,
                "grown": self.grown,
                "handoffs": self.handoffs,
                "adoptions": dict(self.adoptions),
            }

    # -- request routing (called from the front's executor threads) ----------

    def append(self, stream_id: str, values, config: dict) -> int:
        """Forward one append to the owner; never auto-retried.

        A broken link mid-append is ambiguous (the batch may or may not
        have been journaled before the crash), so the router triggers
        adoption and surfaces ``unavailable`` instead of guessing --
        retrying could double-apply.  The client decides; the batch is
        atomic either way.
        """
        with self._gate(stream_id):
            link = self._link_for(stream_id)
            try:
                with link.lease() as client:
                    return client.append(stream_id, values, **config).accepted
            except _LINK_ERRORS as exc:
                self._note_failure(link)
                raise UnavailableError(
                    f"worker {link.name} failed mid-append on stream "
                    f"{stream_id!r} ({type(exc).__name__}: {exc}); the "
                    "batch is either fully applied or fully absent; the "
                    "stream has a new owner -- continue appending"
                ) from exc

    def call_stream(self, stream_id: str, payload: dict, *, gate: bool = True):
        """Route an idempotent per-stream op, retrying across adoption."""
        if gate:
            with self._gate(stream_id):
                return self._call_retry(stream_id, payload)
        return self._call_retry(stream_id, payload)

    def _call_retry(self, stream_id: str, payload: dict) -> dict:
        last: Optional[BaseException] = None
        for _ in range(self.worker_count + 1):
            link = self._link_for(stream_id)
            try:
                return link.call(payload)
            except _LINK_ERRORS as exc:
                last = exc
                if not self._note_failure(link):
                    break
        raise UnavailableError(
            f"no worker could serve {payload.get('op')!r} for stream "
            f"{stream_id!r} ({type(last).__name__}: {last})"
        ) from last

    def fan_out(self, payload: dict) -> Dict[str, dict]:
        """Run one op on every live worker; ``{worker: response}``."""
        out = {}
        for link in self._live_links():
            try:
                out[link.name] = link.call(payload)
            except _LINK_ERRORS as exc:
                if not self._note_failure(link):
                    raise UnavailableError(
                        f"worker {link.name} unreachable during "
                        f"{payload.get('op')!r} ({exc})"
                    ) from exc
        return out


class _ProxyHandle:
    """The stream-handle shape :class:`StreamServer` expects, proxied."""

    __slots__ = ("_router", "stream_id", "_config")

    def __init__(self, router: ClusterRouter, stream_id: str, config: dict):
        self._router = router
        self.stream_id = stream_id
        self._config = config

    def append(self, values) -> int:
        return self._router.append(self.stream_id, values, self._config)


class _ProxyEngine:
    """Implements the engine surface of :class:`StreamServer` by
    forwarding every operation to the owning worker.

    Because the front server and the workers speak the same protocol,
    histogram payloads pass through byte-identically: what a client of
    the router decodes is exactly what the owning worker served.
    """

    def __init__(self, router: ClusterRouter) -> None:
        self._router = router

    # -- stream access (server._stream_for) ----------------------------------

    def streams(self) -> tuple:
        merged = set()
        for response in self._router.fan_out({"op": "streams"}).values():
            merged.update(response["streams"])
        return tuple(sorted(merged))

    def handle(self, stream_id: str) -> _ProxyHandle:
        return _ProxyHandle(self._router, stream_id, {})

    def stream(self, stream_id: str, **config) -> _ProxyHandle:
        return _ProxyHandle(
            self._router,
            stream_id,
            {k: v for k, v in config.items() if v is not None},
        )

    # -- queries --------------------------------------------------------------

    def histogram(
        self, stream_id: str, *, requested_buckets: Optional[int] = None
    ) -> Histogram:
        response = self._router.call_stream(
            stream_id, {"op": "query", "stream": stream_id}
        )
        return Histogram.from_dict(response["histogram"])

    def drain(self, timeout: Optional[float] = None) -> bool:
        self._router.fan_out({"op": "drain"})
        return True

    def stats(self, stream_id: Optional[str] = None) -> dict:
        router = self._router
        if stream_id is not None:
            response = router.call_stream(
                stream_id, {"op": "stats", "stream": stream_id}, gate=False
            )
            stats = response["stats"]
            stats["worker"] = router.owner_of(stream_id)
            return stats
        merged: dict = {"streams": {}, "workers": {}}
        totals = (
            "items_seen",
            "pending_items",
            "appends",
            "rejected",
            "queries",
            "checkpoints",
            "errors",
        )
        for key in totals:
            merged[key] = 0
        for name, response in sorted(router.fan_out({"op": "stats"}).items()):
            stats = response["stats"]
            for sid, row in stats.get("streams", {}).items():
                row["worker"] = name
                merged["streams"][sid] = row
            merged["workers"][name] = {
                key: stats.get(key, 0) for key in totals
            }
            for key in totals:
                merged[key] += stats.get(key, 0)
        merged["stream_count"] = len(merged["streams"])
        merged["cluster"] = {
            "workers": list(router.workers()),
            "deaths": router.deaths,
            "restarts": router.restarts,
            "grown": router.grown,
            "adoptions": dict(router.adoptions),
            "handoffs": router.handoffs,
            "overrides": dict(router._overrides),
        }
        merged["durable"] = True
        return merged

    def checkpoint(self, stream_id: Optional[str] = None) -> dict:
        router = self._router
        if stream_id is not None:
            response = router.call_stream(
                stream_id, {"op": "checkpoint", "stream": stream_id}
            )
            return response["generations"]
        generations: dict = {}
        for response in router.fan_out({"op": "checkpoint"}).values():
            generations.update(response["generations"])
        return generations
